# Developer convenience targets for the repro library.

PYTHON ?= python

.PHONY: install native test verify bench bench-report serve-bench cluster-smoke strategy-smoke figures quick-figures report report-render claims clean

install:
	pip install -e . || $(PYTHON) setup.py develop

# Build the compiled kernel tier in place (requires cffi + a C
# compiler).  Not required: kernels also JIT-build into the user cache
# on first use, and fall back to the NumPy tier without either.
native:
	$(PYTHON) src/repro/native/_build.py
	PYTHONPATH=src $(PYTHON) -m repro.cli kernels --require native

test:
	$(PYTHON) -m pytest tests/

# Full gate: unit suite plus a parallel-execution smoke run, without
# needing an editable install (PYTHONPATH=src).
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m repro.cli fig2 --quick --jobs 2
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable before/after kernel timings (BENCH_PR2.json),
# streaming throughput/memory figures (BENCH_PR3.json), the fused
# sweep / cache / shared-memory report (BENCH_PR4.json), the cluster
# scaling/overhead report (BENCH_PR9.json), and the adaptive
# strategies report (BENCH_PR10.json).
# BENCH_ARGS=--quick shrinks problem sizes for CI.
bench-report:
	PYTHONPATH=src $(PYTHON) tools/bench_report.py $(BENCH_ARGS)

# End-to-end cluster fault drill: three loopback `repro worker`
# subprocesses, the quick report DAG over them, one worker SIGKILLed
# mid-run — must re-dispatch and stay byte-identical to serial.
cluster-smoke:
	PYTHONPATH=src $(PYTHON) tools/cluster_smoke.py

# Adaptive-strategy drill: fig2 with the adaptive + selective arms
# serial vs a 2-worker LocalCluster (byte-compared), then the operator
# `--strategy` flag path through the real CLI.
strategy-smoke:
	PYTHONPATH=src $(PYTHON) tools/strategy_smoke.py

# Serve load harness: concurrent-stream throughput/latency plus the
# chaos-kill/drain/restart churn phase (BENCH_PR6.json).  The committed
# report is full-size (500 streams); BENCH_ARGS=--quick for CI.
serve-bench:
	PYTHONPATH=src $(PYTHON) tools/load_serve.py $(BENCH_ARGS)

figures:
	$(PYTHON) -m repro.cli all --json results_full.json | tee results_full.txt

quick-figures:
	$(PYTHON) -m repro.cli all --quick

# One resumable DAG run over every experiment (docs/ORCHESTRATION.md);
# kill it anywhere and rerun with the same flags to pick up the frontier.
report:
	PYTHONPATH=src $(PYTHON) -m repro.cli report --resume --progress \
		--json results_full.json --out RESULTS.md

# Render an existing panels dump without recomputing anything.
report-render: results_full.json
	$(PYTHON) -m repro.cli report --from-json results_full.json --out RESULTS.md

claims: results_full.json
	$(PYTHON) -m repro.cli claims --json results_full.json

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
