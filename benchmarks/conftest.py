"""Shared fixtures for the benchmark suite.

Every figure bench regenerates its (reduced-scale) data panel and writes
the ASCII table to ``benchmarks/results/<id>.txt`` so a benchmark run
leaves the regenerated figures on disk next to the timings.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_panels(results_dir):
    """Writer: persist a list of ExperimentResult panels for one bench."""

    def _write(results) -> None:
        for result in results:
            path = results_dir / f"{result.experiment_id}.txt"
            path.write_text(result.to_table() + "\n")

    return _write


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20030622)
