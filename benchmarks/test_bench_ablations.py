"""Benches for the design-choice ablations DESIGN.md calls out."""

from repro.experiments.registry import run_experiment


def test_bench_ablate_layout(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "ablate-layout",
            gamma_ini_grid=(0.02, 0.05, 0.1),
            burst_rate_grid=(2e-5, 1e-4),
            lambdas=(30.0, 60.0, 90.0),
            shape=(12, 12),
            n_repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    memory = next(r for r in results if r.experiment_id == "ablate-layout")
    raw_rm = memory.series_by_label("row-major raw")
    raw_il = memory.series_by_label("interleaved raw")
    # Raw damage is layout-independent (the same flip process runs);
    # only the *placement* relative to redundancy changes.
    for a, b in zip(raw_rm.y, raw_il.y):
        assert abs(a - b) < max(a, b) * 0.5
    # The transit panel is where §8's recommendation shows its teeth:
    # pixel-major placement defeats preprocessing; interleaving restores
    # near-full recovery.
    transit = next(
        r for r in results if r.experiment_id == "ablate-layout-transit"
    )
    pixel = transit.series_by_label("pixel-major + Algo_NGST")
    inter = transit.series_by_label("interleaved + Algo_NGST")
    raw = transit.series_by_label("raw (any layout)")
    for i in range(len(raw.x)):
        assert inter.y[i] < pixel.y[i] / 3
        assert pixel.y[i] > raw.y[i] * 0.5  # barely recoverable


def test_bench_ablate_windows(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "ablate-windows",
            gamma0_grid=(0.001, 0.005, 0.01, 0.025),
            shape=(12, 12),
            n_repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    full = panel.series_by_label("full")
    raw = panel.series_by_label("no-preprocessing")
    # The published combination must beat no preprocessing everywhere.
    assert all(f < r for f, r in zip(full.y, raw.y))


def test_bench_ablate_storage(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "ablate-storage",
            gamma0_grid=(0.005, 0.01, 0.05),
            rows=32,
            cols=32,
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    f32_raw = panel.series_by_label("float32 raw")
    dn_raw = panel.series_by_label("DN raw")
    assert all(f > 100 * d for f, d in zip(f32_raw.y, dn_raw.y))
