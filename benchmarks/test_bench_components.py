"""Micro-benchmarks of the individual components.

Not tied to a single figure; these quantify the throughput of each
stage of the data path (useful when sizing the onboard system).
"""

import numpy as np
import pytest

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.config import (
    CorrelatedFaultConfig,
    NGSTDatasetConfig,
    OTISConfig,
)
from repro.core.algo_otis import AlgoOTIS
from repro.data.ngst import generate_walk
from repro.data.otis import blob
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline
from repro.ngst.cosmic_rays import reject_cosmic_rays
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_decode, rice_encode
from repro.otis.quantize import encode_dn


@pytest.fixture(scope="module")
def walk_64x64():
    rng = np.random.default_rng(7)
    return generate_walk(NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, (64, 64))


def test_bench_median_baseline(benchmark, walk_64x64):
    benchmark(median_smooth_temporal, walk_64x64)


def test_bench_majority_baseline(benchmark, walk_64x64):
    benchmark(majority_vote_temporal, walk_64x64)


def test_bench_algo_otis_dn(benchmark):
    dn = encode_dn(blob(64, 64))
    corrupted, _ = UncorrelatedFaultModel(0.02).corrupt(
        dn, np.random.default_rng(1)
    )
    algo = AlgoOTIS(OTISConfig())
    benchmark(algo, corrupted)


def test_bench_uncorrelated_injection(benchmark, walk_64x64, rng):
    model = UncorrelatedFaultModel(0.01)
    benchmark(model.corrupt, walk_64x64, rng)


def test_bench_correlated_injection(benchmark, rng):
    data = np.zeros((16, 16, 16), dtype=np.uint16)
    model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=0.05))
    benchmark(model.corrupt, data, rng)


def test_bench_rice_encode(benchmark, walk_64x64):
    frame = walk_64x64[0]
    benchmark(rice_encode, frame)


def test_bench_rice_decode(benchmark, walk_64x64):
    blob_bytes = rice_encode(walk_64x64[0])
    benchmark(rice_decode, blob_bytes)


def test_bench_cr_rejection(benchmark, rng):
    model = RampModel(n_readouts=32)
    stack = model.generate(rng.uniform(1, 10, size=(64, 64)), rng)
    benchmark(reject_cosmic_rays, stack, model)


def test_bench_cluster_pipeline(benchmark, rng):
    model = RampModel(n_readouts=16)
    stack = model.generate(rng.uniform(1, 10, size=(64, 64)), rng)
    pipeline = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32))
    benchmark.pedantic(pipeline.run, args=(stack,), rounds=3, iterations=1)
