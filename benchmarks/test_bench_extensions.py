"""Benches for the extension experiments (motivation, compression,
locality) and the transit fault model."""

import numpy as np

from repro.config import NGSTDatasetConfig
from repro.data.ngst import generate_walk
from repro.experiments.registry import run_experiment
from repro.faults.transit import GilbertElliottConfig, TransitFaultModel


def test_bench_motivation(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "motivation", gamma0_grid=(0.001, 0.01, 0.05), side=12, n_repeats=2
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    raw = panel.series_by_label("ABFT (raw input)")
    pre = panel.series_by_label("ABFT (preprocessed)")
    # §1 claim: certified output error tracks the input error unless the
    # input is preprocessed.
    assert all(p < r for p, r in zip(pre.y, raw.y))
    assert any("100%" in note for note in panel.notes)


def test_bench_compression(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "compression", gamma0_grid=(0.0, 0.005, 0.01), side=32, n_repeats=2
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    clean = panel.series_by_label("clean reference")
    corrupted = panel.series_by_label("corrupted")
    preprocessed = panel.series_by_label("preprocessed")
    # §2 shape: faults cost compression ratio; preprocessing recovers it.
    assert corrupted.y[-1] < clean.y[-1] * 0.95
    assert preprocessed.y[-1] > corrupted.y[-1]


def test_bench_locality(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "ablate-locality",
            gamma0_grid=(0.01, 0.025),
            lambdas=(60.0, 100.0),
            n_bands=8,
            side=24,
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    spatial = panel.series_by_label("spatial (Algo_OTIS)")
    spectral = panel.series_by_label("spectral (band-axis voting)")
    # §7.1 claim: the spatial locality model wins.
    assert all(sp < sc for sp, sc in zip(spatial.y, spectral.y))


def test_bench_transit_model(benchmark):
    rng = np.random.default_rng(3)
    stack = generate_walk(NGSTDatasetConfig(n_variants=32), rng, (32, 32))
    model = TransitFaultModel(GilbertElliottConfig())
    benchmark(model.corrupt, stack, rng)
