"""Benches for Figures 1 (architecture) and 8 (dataset morphologies)."""

from repro.experiments.registry import run_experiment


def test_bench_figure1(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig1",
            n_slaves_grid=(1, 2, 4, 8, 15),
            frame_side=128,
            tile=32,
            n_readouts=8,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    plain = panel.series_by_label("no preprocessing")
    # Scaling: adding workers shortens the simulated makespan.
    assert plain.y[-1] < plain.y[0]


def test_bench_figure8(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment("fig8", rows=64, cols=64, n_repeats=5),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    std = panel.series_by_label("std")
    # §7.3: Spots most turbulent overall, Blob calmest.
    assert std.y[2] > std.y[1] > std.y[0]
