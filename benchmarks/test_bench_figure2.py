"""Bench for Figure 2 — Ψ vs Γ₀ at varying sensitivities (uncorrelated).

Times the full (reduced-scale) regeneration and writes the panel to
``benchmarks/results/fig2.txt``.
"""

from repro.experiments.registry import run_experiment


def test_bench_figure2(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig2",
            gamma0_grid=(0.001, 0.005, 0.01, 0.05),
            lambdas=(20.0, 50.0, 80.0, 95.0),
            shape=(12, 12),
            n_repeats=2,
        ),
        rounds=2,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    raw = panel.series_by_label("no-preprocessing")
    best_algo = [
        min(s.y[i] for s in panel.series if s.label.startswith("Algo_NGST"))
        for i in range(len(raw.x))
    ]
    # Paper shape: order-of-magnitude improvement in the practical range.
    assert best_algo[0] < raw.y[0] / 10
    assert best_algo[2] < raw.y[2] / 10
