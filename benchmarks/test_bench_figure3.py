"""Bench for Figure 3 — preprocessing overhead vs sensitivity Λ.

pytest-benchmark times Algo_NGST at each Λ directly (the figure's
subject *is* execution time), and the regenerated overhead panel is
written to ``benchmarks/results/fig3.txt``.
"""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.preprocessor import NGSTPreprocessor
from repro.data.ngst import generate_walk
from repro.experiments.registry import run_experiment
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel


@pytest.fixture(scope="module")
def corrupted_stack():
    rng = np.random.default_rng(2003)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, (64, 64)
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=1).inject(
        pristine
    )
    return corrupted


def test_bench_lambda0_header_only(benchmark, corrupted_stack):
    pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
    benchmark(pre.process_stack, corrupted_stack)


@pytest.mark.parametrize("lam", [10, 25, 50, 75, 100])
def test_bench_algo_ngst_sensitivity(benchmark, corrupted_stack, lam):
    algo = AlgoNGST(NGSTConfig(sensitivity=float(lam)))
    benchmark(algo, corrupted_stack)


def test_bench_figure3_panel(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment("fig3", shape=(48, 48), repeats=2),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    algo = results[0].series_by_label("Algo_NGST")
    # Paper shape: negligible at Λ=0, growing with Λ.
    assert algo.y[0] < algo.y[-1] / 10
    assert algo.y[-1] > algo.y[1]
