"""Bench for Figure 4 — NGST under the correlated fault model."""

from repro.experiments.registry import run_experiment


def test_bench_figure4(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig4",
            gamma_ini_grid=(0.005, 0.01, 0.02, 0.03),
            lambdas=(30.0, 60.0, 90.0),
            shape=(12, 12),
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    algo = panel.series_by_label("Algo_NGST (opt L)")
    median = panel.series_by_label("median-w3")
    majority = panel.series_by_label("majority-w3")
    # Paper shape: Algo_NGST does much better than both smoothers under
    # correlated bit-locality failures.
    wins = sum(
        1
        for i in range(len(algo.x))
        if algo.y[i] < median.y[i] and algo.y[i] < majority.y[i]
    )
    assert wins >= len(algo.x) - 1
