"""Bench for Figure 5 — performance across the mean-intensity gamut."""

from repro.experiments.registry import run_experiment


def test_bench_figure5(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig5",
            means=[64, 8192, 27000, 49152, 65535],
            lambdas=(30.0, 60.0, 90.0),
            n_datasets=8,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    panel = results[0]
    raw = panel.series_by_label("no-preprocessing")
    algo = panel.series_by_label("Algo_NGST (opt L)")
    # Paper shape: preprocessing wins across the entire gamut, and the
    # raw relative error falls as the mean intensity grows.
    assert all(a < r for a, r in zip(algo.y, raw.y))
    assert raw.y[-1] < raw.y[0]
