"""Bench for Figure 6 — quasi-NGST σ sweep with Υ ∈ {2, 4, 6}."""

from repro.experiments.registry import run_experiment


def test_bench_figure6(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig6",
            sigmas=(0.0, 250.0, 8000.0),
            upsilons=(2, 4, 6),
            gamma0_grid=(0.0025, 0.01, 0.04),
            lambdas=(30.0, 60.0, 90.0),
            shape=(10, 10),
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    by_id = {r.experiment_id: r for r in results}
    calm = by_id["fig6-sigma0"]
    # σ = 0: consulting more neighbours helps (Υ=4/6 beat Υ=2 at high Γ₀).
    u2 = calm.series_by_label("upsilon=2")
    u4 = calm.series_by_label("upsilon=4")
    assert u4.y[-1] <= u2.y[-1]
    # Every panel: preprocessing beats no-preprocessing at optimum.
    for panel in results:
        raw = panel.series_by_label("no-preprocessing")
        best = [
            min(
                panel.series_by_label(f"upsilon={u}").y[i] for u in (2, 4, 6)
            )
            for i in range(len(raw.x))
        ]
        assert all(b <= r for b, r in zip(best, raw.y))
