"""Bench for Figures 7/8 — OTIS datasets under uncorrelated faults."""

from repro.experiments.registry import run_experiment


def test_bench_figure7(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig7",
            gamma0_grid=(0.005, 0.025, 0.05),
            lambdas=(40.0, 60.0, 80.0, 100.0),
            rows=48,
            cols=48,
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    by_id = {r.experiment_id: r for r in results}
    assert set(by_id) == {"fig7-blob", "fig7-stripe", "fig7-spots"}
    for panel in results:
        raw = panel.series_by_label("no-preprocessing")
        algo = panel.series_by_label("Algo_OTIS (opt L)")
        median = panel.series_by_label("median-3x3")
        majority = panel.series_by_label("majority-3")
        # §8 shape: ~12% raw error at Γ₀ = 0.05...
        assert 0.05 < raw.y[-1] < 0.25
        # ...and Algo_OTIS beats both adapted baselines at Γ₀ = 0.025
        # (the paper's "far better ... in regions of Γ₀ >= 0.025").
        i = raw.x.index(0.025)
        assert algo.y[i] < median.y[i], panel.experiment_id
        assert algo.y[i] < majority.y[i], panel.experiment_id
        # At Γ₀ = 0.05 it still beats majority voting everywhere and
        # stays within striking distance of the median on the densest
        # morphologies (see EXPERIMENTS.md for the recorded deviation).
        j = raw.x.index(0.05)
        assert algo.y[j] < majority.y[j], panel.experiment_id
        assert algo.y[j] < 1.5 * median.y[j], panel.experiment_id
    # Blob (the representative dataset) lands below 1% after preprocessing.
    assert by_id["fig7-blob"].series_by_label("Algo_OTIS (opt L)").y[-1] < 0.01
