"""Bench for Figure 9 — OTIS under correlated faults; breakdown regime."""

from repro.experiments.registry import run_experiment


def test_bench_figure9(benchmark, write_panels):
    results = benchmark.pedantic(
        lambda: run_experiment(
            "fig9",
            gamma_ini_grid=(0.05, 0.1, 0.2, 0.3, 0.4),
            lambdas=(40.0, 60.0, 80.0),
            rows=32,
            cols=32,
            n_repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    write_panels(results)
    for panel in results:
        pseudo = panel.series_by_label("Algo_OTIS pseudo-corr fraction")
        # Paper mechanism: pseudo-corrections take over past Γ_ini ≈ 0.2.
        # Genuine corrections dominate below it, and the weighted share
        # of harm climbs steeply between 0.1 and 0.4.
        i_low = pseudo.x.index(0.1)
        i_high = pseudo.x.index(0.4)
        assert pseudo.y[i_low] < 0.5
        assert pseudo.y[i_high] > 0.3
        assert pseudo.y[i_high] > 1.5 * pseudo.y[i_low]
        # All three preprocessors still help below the breakdown point.
        raw = panel.series_by_label("no-preprocessing")
        algo = panel.series_by_label("Algo_OTIS (opt L)")
        assert algo.y[0] < raw.y[0]
