"""Benches for the supporting infrastructure: downlink ARQ, campaign
statistics, diagnostics and spectra, failure-handling cluster runs."""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.diagnostics import sensitivity_profile
from repro.data.ngst import generate_walk
from repro.faults.campaign import Campaign
from repro.faults.transit import GilbertElliottConfig
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.metrics.spectrum import residual_attribution
from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline
from repro.ngst.downlink import ARQDownlink, DownlinkConfig
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_encode


@pytest.fixture(scope="module")
def corrupted_world():
    rng = np.random.default_rng(77)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, (32, 32)
    )
    from repro.faults.injector import FaultInjector

    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=1).inject(
        pristine
    )
    return pristine, corrupted


def test_bench_downlink_arq(benchmark, rng):
    frame = (27000 + np.cumsum(rng.normal(0, 10, 65536))).astype(np.uint16)
    blob = rice_encode(frame)
    config = DownlinkConfig(
        payload_bytes=1024,
        max_retransmits=50,
        channel=GilbertElliottConfig(
            p_good_to_bad=1e-5, p_bad_to_good=0.02, flip_prob_bad=0.3
        ),
    )
    report = benchmark(lambda: ARQDownlink(config, seed=5).transmit(blob))
    assert report.delivered == blob


def test_bench_campaign_statistics(benchmark):
    campaign = Campaign(
        generate=lambda rng: generate_walk(
            NGSTDatasetConfig(n_variants=32), rng, (8, 8)
        ),
        fault_model=UncorrelatedFaultModel(0.01),
        metric=psi,
    )
    summary = benchmark.pedantic(
        lambda: campaign.run(n_trials=10, seed=3), rounds=2, iterations=1
    )
    assert summary.n_trials == 10


def test_bench_sensitivity_profile(benchmark, corrupted_world):
    _, corrupted = corrupted_world
    profile = benchmark.pedantic(
        lambda: sensitivity_profile(corrupted, lambdas=(10.0, 50.0, 90.0)),
        rounds=2,
        iterations=1,
    )
    assert len(profile) == 3


def test_bench_residual_attribution(benchmark, corrupted_world):
    pristine, corrupted = corrupted_world
    from repro.core.algo_ngst import AlgoNGST

    processed = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted).corrected
    spectra = benchmark(residual_attribution, pristine, corrupted, processed)
    assert spectra["injected"].total_flips > 0


def test_bench_cluster_with_failures(benchmark, rng):
    model = RampModel(n_readouts=16)
    stack = model.generate(rng.uniform(1, 10, size=(64, 64)), rng)
    cfg = ClusterConfig(
        n_slaves=4,
        tile=32,
        slave_failure_probability=0.2,
        retry_timeout_s=0.05,
        failure_seed=1,
    )
    report = benchmark.pedantic(
        lambda: CRRejectionPipeline(model, cfg).run(stack),
        rounds=3,
        iterations=1,
    )
    assert report.n_fragments == 4
