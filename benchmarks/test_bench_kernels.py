"""Micro-benchmarks of the vectorized hot-path kernels.

Each pair times a vectorized kernel next to the ``_reference_*`` oracle
it replaced, so ``pytest benchmarks/ --benchmark-only`` shows the
before/after trajectory alongside the component benches.  The same
pairs feed ``tools/bench_report.py`` / ``BENCH_PR2.json``.
"""

import numpy as np
import pytest

from repro.baselines.majority import (
    _reference_majority_vote_window,
    majority_vote_window,
)
from repro.baselines.median import (
    _reference_median_smooth_temporal,
    median_smooth_temporal,
)
from repro.core import bitops
from repro.core.voter import VoterMatrix, _reference_grt
from repro.faults.correlated import (
    _reference_correlated_flip_grid,
    correlated_flip_grid,
)
from repro.otis.scan import (
    ScanConfig,
    _reference_cross_frame_preprocess,
    cross_frame_preprocess,
    mosaic,
    scan_scene,
)


@pytest.fixture(scope="module")
def stack_u16():
    rng = np.random.default_rng(11)
    return rng.integers(0, 2**16, size=(32, 128, 128), dtype=np.uint16)


@pytest.fixture(scope="module")
def grt_voters(stack_u16):
    matrix = VoterMatrix(stack_u16, 8)
    return matrix.pruned(matrix.thresholds(0.75))


@pytest.fixture(scope="module")
def swath():
    rng = np.random.default_rng(12)
    config = ScanConfig(frame_rows=32, frame_cols=128, step_rows=8)
    scene = rng.integers(0, 2**16, size=(512, 128), dtype=np.uint16)
    return scan_scene(scene, config), config


def test_bench_correlated_grid(benchmark):
    benchmark(correlated_flip_grid, (256, 256), 0.3, np.random.default_rng(0))


def test_bench_correlated_grid_reference(benchmark):
    benchmark(
        _reference_correlated_flip_grid, (256, 256), 0.3, np.random.default_rng(0)
    )


def test_bench_grt(benchmark, grt_voters):
    benchmark(VoterMatrix.grt, grt_voters)


def test_bench_grt_reference(benchmark, grt_voters):
    benchmark(_reference_grt, grt_voters)


def test_bench_to_bit_planes(benchmark, stack_u16):
    benchmark(bitops.to_bit_planes, stack_u16)


def test_bench_to_bit_planes_reference(benchmark, stack_u16):
    benchmark(bitops._reference_to_bit_planes, stack_u16)


def test_bench_median_temporal(benchmark, stack_u16):
    benchmark(median_smooth_temporal, stack_u16)


def test_bench_median_temporal_reference(benchmark, stack_u16):
    benchmark(_reference_median_smooth_temporal, stack_u16)


def test_bench_majority_window(benchmark, stack_u16):
    benchmark(majority_vote_window, stack_u16, 5)


def test_bench_majority_window_reference(benchmark, stack_u16):
    benchmark(_reference_majority_vote_window, stack_u16, 5)


def test_bench_cross_frame(benchmark, swath):
    frames, config = swath
    benchmark(cross_frame_preprocess, frames, config)


def test_bench_cross_frame_reference(benchmark, swath):
    frames, config = swath
    benchmark(_reference_cross_frame_preprocess, frames, config)


def test_bench_mosaic(benchmark, swath):
    frames, config = swath
    benchmark(mosaic, frames, config)
