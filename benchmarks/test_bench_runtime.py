"""Benches for the trial runtime: backend dispatch, sharding overhead,
checkpoint I/O.

The container may expose a single CPU, so these benches measure and
record throughput without asserting a parallel speedup; what they do
assert is the runtime's determinism contract (parallel == serial) on
top of the timings.
"""

import numpy as np
import pytest

from repro.config import NGSTDatasetConfig
from repro.data.ngst import generate_walk
from repro.faults.campaign import Campaign
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import (
    CheckpointStore,
    ProcessPoolBackend,
    SerialBackend,
    TrialRuntime,
)

N_TRIALS = 24


def _trial(rng):
    data = rng.normal(size=(64, 64))
    return float(np.linalg.norm(np.fft.rfft2(data)))


@pytest.fixture(scope="module")
def reference_values():
    return TrialRuntime(shard_size=4).run(_trial, N_TRIALS, seed=11)


def test_bench_runtime_serial(benchmark, reference_values):
    runtime = TrialRuntime(SerialBackend(), shard_size=4)
    values = benchmark.pedantic(
        lambda: runtime.run(_trial, N_TRIALS, seed=11), rounds=3, iterations=1
    )
    assert values == reference_values


def test_bench_runtime_process_pool(benchmark, reference_values):
    values = benchmark.pedantic(
        lambda: TrialRuntime(ProcessPoolBackend(2), shard_size=4).run(
            _trial, N_TRIALS, seed=11
        ),
        rounds=3,
        iterations=1,
    )
    assert values == reference_values


def test_bench_sharding_overhead(benchmark, reference_values):
    """Per-trial shards are the worst case for dispatch bookkeeping."""
    runtime = TrialRuntime(SerialBackend(), shard_size=1)
    values = benchmark.pedantic(
        lambda: runtime.run(_trial, N_TRIALS, seed=11), rounds=3, iterations=1
    )
    assert values == reference_values


def test_bench_checkpoint_roundtrip(benchmark, tmp_path, reference_values):
    """Cost of recording every shard plus a fully-restored re-run."""
    store = CheckpointStore(tmp_path / "bench.jsonl")
    TrialRuntime(checkpoint=store, shard_size=4).run(_trial, N_TRIALS, seed=11)

    def restored_run():
        return TrialRuntime(checkpoint=store, shard_size=4).run(
            _trial, N_TRIALS, seed=11
        )

    assert benchmark(restored_run) == reference_values


def test_bench_parallel_campaign(benchmark):
    campaign = Campaign(
        generate=lambda rng: generate_walk(
            NGSTDatasetConfig(n_variants=32), rng, (8, 8)
        ),
        fault_model=UncorrelatedFaultModel(0.01),
        metric=psi,
    )
    runtime = TrialRuntime(ProcessPoolBackend(2), shard_size=2)
    summary = benchmark.pedantic(
        lambda: campaign.run(n_trials=8, seed=3, runtime=runtime),
        rounds=2,
        iterations=1,
    )
    assert summary.n_trials == 8
    assert summary.values == campaign.run(n_trials=8, seed=3).values
