#!/usr/bin/env python3
"""Statistical fault-injection campaign across all three fault models.

The paper's evaluation averages every data point over many datasets
(Figure 5 uses 100).  The :class:`~repro.faults.campaign.Campaign` API
makes that workflow a one-liner per arm; this example compares raw vs
preprocessed Ψ — with confidence intervals — under the three fault
loci §2.2.2 names: at source/in memory (uncorrelated), in memory under
radiation bursts (correlated, Eq. 2), and during transit (Gilbert–
Elliott bursts on the serial stream).

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro import (
    AlgoNGST,
    CorrelatedFaultModel,
    NGSTConfig,
    NGSTDatasetConfig,
    UncorrelatedFaultModel,
    generate_walk,
    psi,
)
from repro.faults import Campaign, GilbertElliottConfig, TransitFaultModel

N_TRIALS = 25


def generate(rng: np.random.Generator) -> np.ndarray:
    return generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, shape=(16, 16)
    )


def main() -> None:
    algo = AlgoNGST(NGSTConfig(upsilon=4, sensitivity=80))
    models = (
        ("uncorrelated  G0=1%", UncorrelatedFaultModel(0.01)),
        ("correlated    Gi=2%", CorrelatedFaultModel(0.02)),
        (
            "transit burst p=2e-4",
            TransitFaultModel(
                GilbertElliottConfig(
                    p_good_to_bad=2e-4, p_bad_to_good=0.04, flip_prob_bad=0.4
                )
            ),
        ),
    )

    print(f"{N_TRIALS} trials per arm, 95% confidence intervals\n")
    print(f"{'fault model':<22} {'Psi raw':>20} {'Psi preprocessed':>22} {'gain':>7}")
    for label, model in models:
        raw = Campaign(generate, model, psi)
        pre = Campaign(
            generate, model, psi, preprocess=lambda d: algo(d).corrected
        )
        raw_summary, pre_summary, ratio = raw.compare(pre, N_TRIALS, seed=11)
        print(
            f"{label:<22} "
            f"{raw_summary.mean:>11.5f} ±{raw_summary.ci_half_width:.5f} "
            f"{pre_summary.mean:>13.6f} ±{pre_summary.ci_half_width:.6f} "
            f"{ratio:>6.1f}x"
        )

    print(
        "\nThe same preprocessing configuration recovers all three fault "
        "loci; burst-type faults\n(correlated/transit) are harder than "
        "i.i.d. flips at equal marginal rates, since whole\nneighbour "
        "groups get damaged together."
    )


if __name__ == "__main__":
    main()
