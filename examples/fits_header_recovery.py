#!/usr/bin/env python3
"""FITS header sanity analysis — the Λ = 0 preprocessing path.

§2.2.1: "a data-fault caused by a bitflip occurring in the header
region of a FITS file has the potential to cause catastrophic failures"
— a misread NAXIS or BITPIX corrupts the whole data unit.  This example
builds a FITS file from an NGST readout stack, flips bits inside the
header bytes (BITPIX value, keyword characters), and shows the sanity
analyzer detecting and repairing the damage so the data unit still
decodes bit-exactly.

Run:  python examples/fits_header_recovery.py
"""

import numpy as np

from repro import NGSTConfig, NGSTDatasetConfig, generate_walk
from repro.core.preprocessor import NGSTPreprocessor
from repro.exceptions import HeaderSanityError
from repro.fits import HeaderSanityAnalyzer, read_fits
from repro.fits.file import write_hdu
import io


def flip_header_bits(raw: bytes, positions: list[tuple[int, int]]) -> bytes:
    """Flip bit *b* of byte *i* for each (i, b) pair inside the header."""
    damaged = bytearray(raw)
    for index, bit in positions:
        damaged[index] ^= 1 << bit
    return bytes(damaged)


def main() -> None:
    rng = np.random.default_rng(5)
    stack = generate_walk(NGSTDatasetConfig(n_variants=16), rng, shape=(32, 32))
    raw = write_hdu(stack)
    print(f"FITS stream: {len(raw):,} bytes "
          f"({len(raw) - stack.nbytes:,} header+padding)")

    # Locate the BITPIX value field and a keyword character to damage.
    header_text = raw[:2880].decode("ascii")
    bitpix_card = header_text.index("BITPIX")
    damaged = flip_header_bits(
        raw,
        [
            (bitpix_card + 29, 0),   # last digit of the BITPIX value
            (bitpix_card + 2, 7),    # high bit of 'T' in "BITPIX" -> non-ASCII
        ],
    )

    # A naive reader chokes (or silently mis-sizes the data unit).
    try:
        read_fits(io.BytesIO(damaged))
        print("naive read: (unexpectedly) succeeded")
    except Exception as exc:
        print(f"naive read: FAILED — {type(exc).__name__}: {exc}")

    # The sanity analyzer (what Algo_NGST does even at null sensitivity).
    report = HeaderSanityAnalyzer(repair=True).analyze(damaged[:2880])
    print(f"\nsanity analysis: ok={report.ok}, {report.n_repairs} repair(s)")
    for issue in report.issues:
        print(f"  [{issue.severity.value:>8}] {issue.keyword or '(bytes)'}: "
              f"{issue.message}")

    # Λ = 0 preprocessing: header-only recovery, data untouched.
    preprocessor = NGSTPreprocessor(NGSTConfig(sensitivity=0))
    try:
        repaired, outcome = preprocessor.process_fits(damaged)
    except HeaderSanityError as exc:
        print(f"unrecoverable: {exc}")
        return
    recovered = read_fits(io.BytesIO(repaired))[0].physical_data()
    print(f"\nrecovered data unit bit-exact: "
          f"{bool(np.array_equal(recovered, stack))}")


if __name__ == "__main__":
    main()
