#!/usr/bin/env python3
"""End-to-end NGST baseline: the Figure 1 architecture, simulated.

A faint deep-sky scene (NGST's actual science regime: fluxes of a few
counts/second) is read out 32 times through an accumulating ramp,
cosmic rays strike ~10 % of the pixels, and memory bit-flips corrupt
the stored readouts.  The master/worker pipeline fragments the stack,
(optionally) preprocesses each fragment on the slaves, rejects cosmic
rays by ramp fitting, reassembles, and Rice-compresses the frame for
downlink.

Reported per configuration: the input-level error Ψ of the readouts
the application actually consumed, the science-output flux error, and
the simulated execution time (preprocessing runs in the slaves' slack
CPU time at a sensitivity-dependent cost — the Figure 3 trade-off).

Run:  python examples/ngst_pipeline.py
"""

import numpy as np

from repro import FaultInjector, NGSTConfig, UncorrelatedFaultModel, psi
from repro.core.preprocessor import NGSTPreprocessor
from repro.ngst import (
    ClusterConfig,
    CosmicRayModel,
    CRRejectionPipeline,
    RampModel,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # Faint 256x256 scene sensed through an accumulating 32-readout ramp.
    flux = rng.uniform(0.2, 3.0, size=(256, 256))
    ramp = RampModel(n_readouts=32, baseline_s=1000.0, read_noise=8.0)
    stack = ramp.generate(flux, rng)

    # ~10% of pixels take a cosmic-ray hit during the baseline (§2).
    cr_model = CosmicRayModel(
        hit_probability=0.10, min_amplitude=500.0, max_amplitude=5000.0
    )
    cr_stack, hit_map = cr_model.inject(stack, rng)
    print(f"cosmic rays struck {np.count_nonzero(hit_map >= 0)} pixels")

    # Memory bit-flips corrupt the stored readouts before processing.
    corrupted, report = FaultInjector(
        UncorrelatedFaultModel(0.01), seed=11
    ).inject(cr_stack)
    print(f"bit-flips hit {report.n_words_hit} readout words "
          f"({report.flip_rate:.4%} of bits)\n")

    cluster = ClusterConfig(n_slaves=15, tile=64)

    # Reference: the pipeline on the CR-struck but flip-free stack.
    reference = CRRejectionPipeline(ramp, cluster).run(cr_stack)
    ref_err = float(np.abs(reference.image - flux).mean())

    print(f"{'pipeline':<28} {'input Psi':>10} {'flux MAE':>10} {'makespan':>10}")
    print(f"{'flip-free reference':<28} {0.0:>10.4f} {ref_err:>10.4f} "
          f"{reference.makespan_s:>9.4f}s")
    for label, preprocessor in (
        ("without preprocessing", None),
        ("with Algo_NGST (L=90)", NGSTPreprocessor(NGSTConfig(sensitivity=90))),
    ):
        pipeline = CRRejectionPipeline(ramp, cluster, preprocessor)
        result = pipeline.run(corrupted)
        consumed = (
            preprocessor.process_stack(corrupted).data if preprocessor else corrupted
        )
        input_psi = psi(consumed, cr_stack)
        err = float(np.abs(result.image - flux).mean())
        print(f"{label:<28} {input_psi:>10.4f} {err:>10.4f} "
              f"{result.makespan_s:>9.4f}s")
        ratio = corrupted.nbytes / len(result.compressed)
        print(f"{'':<28} downlink {len(result.compressed):,} bytes "
              f"(rice, {ratio:.1f}x vs raw readouts), "
              f"slave utilisation {result.slave_utilisation:.2f}")

    print("\nPreprocessing repairs the readouts the application consumes "
          "(input Psi drops ~20x)\nand buys back science accuracy at a "
          "bounded, sensitivity-tunable time cost.")


if __name__ == "__main__":
    main()
