#!/usr/bin/env python3
"""OTIS thermal mapping with ALFT and input preprocessing.

A surface-temperature scene with a hyper-thermal anomaly (a "geyser")
is sensed into a multi-band radiance cube, stored as 16-bit DN words,
and corrupted by memory bit-flips (Γ₀ = 5 %).  The OTIS application
retrieves the temperature map under an ALFT scheme: a primary task, a
scaled-down secondary (half the bands) on another node, an acceptance
filter over the output, and a logic grid choosing between them.

The point of the example is §7's argument: when the *input* is corrupt,
primary and secondary both produce spurious output — the catastrophic
case ALFT cannot handle — whereas input preprocessing repairs the data
before retrieval and eliminates the catastrophe, while the §7.2 trend
exemption preserves the genuine natural anomaly.

Run:  python examples/otis_thermal_mapping.py
"""

import numpy as np

from repro import FaultInjector, OTISConfig, UncorrelatedFaultModel
from repro.config import OTISBounds
from repro.core.algo_otis import AlgoOTIS
from repro.exceptions import ALFTError
from repro.otis import (
    ALFTExecutor,
    Spectrometer,
    decode_dn,
    default_bands,
)
from repro.otis.planck import brightness_temperature

EMISSIVITY = 0.97


def build_scene(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """A 290 K scene with smooth structure and a hot geyser spot."""
    ys, xs = np.mgrid[0:rows, 0:cols]
    scene = 290.0 + 4.0 * np.sin(ys / 11.0) * np.cos(xs / 13.0)
    scene += rng.normal(0.0, 0.3, size=(rows, cols))
    cy, cx = rows // 3, 2 * cols // 3
    geyser = ((ys - cy) ** 2 + (xs - cx) ** 2) <= 3.0**2
    scene[geyser] += 45.0  # hyper-thermal natural phenomenon
    return scene


def retrieve(cube_dn: np.ndarray, bands, dn_scale: float) -> np.ndarray:
    """Per-band brightness temperatures averaged across bands."""
    cube = decode_dn(cube_dn, dn_scale)
    temps = np.stack(
        [
            brightness_temperature(band.wavelength_um, cube[z] / EMISSIVITY)
            for z, band in enumerate(bands)
        ]
    )
    return temps.mean(axis=0)


def roughness(temps: np.ndarray) -> float:
    """Mean deviation from the local 3x3 median — spikes mean damage."""
    from repro.core.algo_otis import spatial_median

    return float(np.abs(temps - spatial_median(temps)).mean())


def acceptance(temps: np.ndarray) -> bool:
    """Sanity filter: physical range and thermal-scene smoothness."""
    if not np.isfinite(temps).all():
        return False
    out_of_range = float(np.mean((temps < 150.0) | (temps > 400.0)))
    return out_of_range < 0.005 and roughness(temps) < 2.0


def main() -> None:
    rng = np.random.default_rng(17)
    rows = cols = 96
    scene = build_scene(rows, cols, rng)
    bands = default_bands(6)
    instrument = Spectrometer(bands)
    dn_cube = instrument.sense_dn(scene, emissivity=EMISSIVITY, rng=rng)

    corrupted, report = FaultInjector(
        UncorrelatedFaultModel(0.05), seed=3
    ).inject(dn_cube)
    print(f"bit-flips: {report.n_bits_flipped} "
          f"({report.flip_rate:.4%} of stored bits)\n")

    # Radiance-domain bounds for the preprocessing: 8-12 um radiance of
    # terrestrial scenes lives well inside [0, 25] W/m^2/sr/um.
    preprocessor = AlgoOTIS(
        OTISConfig(
            sensitivity=60,
            bounds=OTISBounds(lower=0.0, upper=25.0),
            dn_scale=instrument.dn_scale,
        )
    )

    def primary(cube_dn: np.ndarray) -> np.ndarray:
        return retrieve(cube_dn, bands, instrument.dn_scale)

    def secondary(cube_dn: np.ndarray) -> np.ndarray:
        # Scaled-down backup on another node: half the bands.
        return retrieve(cube_dn[::2], bands[::2], instrument.dn_scale)

    geyser_mask = scene > 320.0
    print(f"{'configuration':<26} {'temp MAE (K)':>13} {'ALFT outcome':>14} "
          f"{'geyser kept':>12}")
    for label, cube in (
        ("ALFT alone", corrupted),
        ("ALFT + Algo_OTIS", preprocessor(corrupted).corrected),
    ):
        executor = ALFTExecutor(primary, secondary, acceptance)
        try:
            outcome = executor.run(cube)
            temps = outcome.output
            status = outcome.source.value
        except ALFTError:
            temps = primary(cube)  # the frame is shipped anyway, spurious
            status = "CATASTROPHE"
        mae = float(np.abs(temps - scene).mean())
        geyser_kept = bool(np.median(temps[geyser_mask]) > 315.0)
        print(f"{label:<26} {mae:>13.3f} {status:>14} {str(geyser_kept):>12}")

    print("\nBoth ALFT outputs are spurious under input corruption (the "
          "catastrophic case);\ninput preprocessing repairs the data before "
          "retrieval and keeps the genuine anomaly.")


if __name__ == "__main__":
    main()
