#!/usr/bin/env python3
"""Quickstart: repair bit-flipped NGST detector data with Algo_NGST.

Generates a pristine temporal stack per the paper's Eq. (1) model,
injects uncorrelated bit-flips (Γ₀ = 1 %), preprocesses with the
dynamic bit-window algorithm, and reports the average relative error
before/after alongside the two standard baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AlgoNGST,
    FaultInjector,
    NGSTConfig,
    NGSTDatasetConfig,
    UncorrelatedFaultModel,
    bit_confusion,
    generate_walk,
    improvement_factor,
    psi,
)
from repro.baselines import majority_vote_temporal, median_smooth_temporal


def main() -> None:
    rng = np.random.default_rng(2003)

    # 64 temporal variants of a 64x64 detector region (Eq. 1 model).
    dataset = NGSTDatasetConfig(n_variants=64, sigma=25.0)
    pristine = generate_walk(dataset, rng, shape=(64, 64))

    # Corrupt the stored data: every bit flips with probability 1%.
    injector = FaultInjector(UncorrelatedFaultModel(0.01), seed=42)
    corrupted, report = injector.inject(pristine)
    print(f"injected {report.n_bits_flipped} bit-flips "
          f"({report.flip_rate:.4%} of all bits)")

    psi_no = psi(corrupted, pristine)
    print(f"\n{'method':<24} {'Psi':>12} {'gain':>10}")
    print(f"{'no preprocessing':<24} {psi_no:>12.6f} {'1.0x':>10}")

    # The paper's algorithm at a few sensitivities.
    for sensitivity in (20, 50, 80, 100):
        algo = AlgoNGST(NGSTConfig(upsilon=4, sensitivity=sensitivity))
        result = algo(corrupted)
        value = psi(result.corrected, pristine)
        gain = improvement_factor(psi_no, value)
        print(f"{f'Algo_NGST (L={sensitivity})':<24} {value:>12.6f} {gain:>9.1f}x")

    for label, smoother in (
        ("median smoothing w3", median_smooth_temporal),
        ("bitwise majority w3", majority_vote_temporal),
    ):
        value = psi(smoother(corrupted), pristine)
        print(f"{label:<24} {value:>12.6f} "
              f"{improvement_factor(psi_no, value):>9.1f}x")

    # Bit-level accounting for the best run.
    best = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
    conf = bit_confusion(pristine, corrupted, best.corrected)
    print(f"\nAlgo_NGST (L=80) bit accounting: "
          f"{conf.true_corrections} repaired, {conf.false_alarms} false alarms, "
          f"{conf.missed} missed  (precision {conf.precision:.3f}, "
          f"recall {conf.recall:.3f})")


if __name__ == "__main__":
    main()
