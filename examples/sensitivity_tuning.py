#!/usr/bin/env python3
"""Tuning Υ and Λ for an environment — the §3.2/§6 design trade-off.

"A good fault tolerance scheme needs to be scalable depending on the
susceptibility to faults and the trade-off with overhead in execution
time and associated power consumption."  This example sweeps the two
designer-facing knobs over a grid of fault probabilities and prints,
for each environment, the accuracy/overhead frontier — including the
paper's headline effect that pushing Λ beyond the per-environment
optimum *degrades* accuracy through false alarms while still costing
more time.

Run:  python examples/sensitivity_tuning.py
"""

import time

import numpy as np

from repro import (
    AlgoNGST,
    FaultInjector,
    NGSTConfig,
    NGSTDatasetConfig,
    UncorrelatedFaultModel,
    bit_confusion,
    generate_walk,
    psi,
)


def main() -> None:
    rng = np.random.default_rng(29)
    dataset = NGSTDatasetConfig(n_variants=64, sigma=25.0)
    pristine = generate_walk(dataset, rng, shape=(48, 48))
    lambdas = (10, 30, 50, 70, 90, 100)

    for gamma0 in (0.001, 0.01, 0.05):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(gamma0), seed=13
        ).inject(pristine)
        psi_no = psi(corrupted, pristine)
        print(f"\n=== environment: Gamma0 = {gamma0}  "
              f"(raw Psi = {psi_no:.5f}) ===")
        print(f"{'L':>5} {'Psi':>12} {'gain':>8} {'false alarms':>13} "
              f"{'ms':>8}")
        best = (None, None)
        for lam in lambdas:
            algo = AlgoNGST(NGSTConfig(upsilon=4, sensitivity=lam))
            algo(corrupted)  # warm-up
            start = time.perf_counter()
            result = algo(corrupted)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            value = psi(result.corrected, pristine)
            conf = bit_confusion(pristine, corrupted, result.corrected)
            marker = ""
            if best[1] is None or value < best[1]:
                best = (lam, value)
            print(f"{lam:>5} {value:>12.6f} {psi_no / value:>7.1f}x "
                  f"{conf.false_alarms:>13} {elapsed_ms:>8.2f}")
        print(f"  -> optimum L for this environment: {best[0]}")

    print("\nHigher fault rates push the optimum Lambda upward; past the "
          "optimum, false alarms\ngrow faster than corrections while "
          "execution overhead keeps rising (Figs. 2-3).")


if __name__ == "__main__":
    main()
