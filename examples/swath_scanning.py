#!/usr/bin/env python3
"""Inter-frame redundancy: preprocessing an orbital scanning swath.

§9 notes that a wide range of applications expose "temporal, spatial,
spectral, and other forms of inherent redundancy".  An orbiting imager
contributes one more: consecutive frames of a scanning swath overlap,
so most ground pixels are observed several times.  This example scans
a ground scene with 4× overlap, corrupts each stored frame
independently, repairs by cross-frame consensus, and compares the
composited swath against per-frame spatial preprocessing (Algo_OTIS).

Run:  python examples/swath_scanning.py
"""

import numpy as np

from repro import FaultInjector, OTISConfig, UncorrelatedFaultModel, psi
from repro.core.algo_otis import AlgoOTIS
from repro.data.otis import blob
from repro.otis import (
    ScanConfig,
    cross_frame_preprocess,
    decode_dn,
    encode_dn,
    mosaic,
    scan_scene,
)
from repro.otis.scan import Frame


def main() -> None:
    rng = np.random.default_rng(23)
    scene = encode_dn(blob(128, 96, rng))
    config = ScanConfig(frame_rows=32, frame_cols=96, step_rows=8)  # 4 revisits
    frames = scan_scene(scene, config)
    print(f"swath: {len(frames)} frames, {config.revisits} revisits per "
          f"interior ground row\n")

    pristine = decode_dn(mosaic(frames, config))
    injector = FaultInjector(UncorrelatedFaultModel(0.02), seed=4)
    damaged = [Frame(f.origin_row, injector.inject(f.dn)[0]) for f in frames]

    def frame_psi(candidates):
        return float(
            np.mean(
                [
                    psi(decode_dn(c.dn), decode_dn(f.dn))
                    for f, c in zip(frames, candidates)
                ]
            )
        )

    # Arm 1: per-frame spatial preprocessing (no cross-frame knowledge).
    spatial_algo = AlgoOTIS(OTISConfig(sensitivity=60))
    spatial = [
        Frame(f.origin_row, spatial_algo(f.dn).corrected) for f in damaged
    ]

    # Arm 2: cross-frame consensus over each ground pixel's revisits.
    consensus = cross_frame_preprocess(damaged, config)

    # Arm 3: both — consensus first, spatial voting on the residue.
    both = [
        Frame(f.origin_row, spatial_algo(f.dn).corrected) for f in consensus
    ]

    print(f"{'preprocessing':<32} {'per-frame Psi':>14} {'mosaic Psi':>12}")
    for label, candidates in (
        ("none", damaged),
        ("cross-frame consensus", consensus),
        ("per-frame spatial (Algo_OTIS)", spatial),
        ("consensus + spatial", both),
    ):
        per_frame = frame_psi(candidates)
        composite = psi(decode_dn(mosaic(candidates, config)), pristine)
        print(f"{label:<32} {per_frame:>14.6f} {composite:>12.6f}")

    print(
        "\nTwo redundancy scales at work: the median *composite* is already "
        "protected by the\nrevisits, but any product computed from an "
        "individual frame is not — cross-frame\nconsensus repairs the frames "
        "themselves, and spatial voting cleans what remains."
    )


if __name__ == "__main__":
    main()
