#!/usr/bin/env python3
"""Auditing a preprocessing configuration: windows, voters, spectra.

Before committing Υ and Λ for a mission, a designer wants to see what
the algorithm will actually do on representative data: where the A/B/C
bit-window boundaries land, how many voters survive the pruning, and —
after a trial injection — which bit positions get repaired, missed, or
falsely flipped.  This example runs that audit end to end.

Run:  python examples/window_diagnostics.py
"""

import numpy as np

from repro import (
    AlgoNGST,
    FaultInjector,
    NGSTConfig,
    NGSTDatasetConfig,
    UncorrelatedFaultModel,
    generate_walk,
)
from repro.core.diagnostics import render_profile, sensitivity_profile
from repro.metrics.spectrum import render_spectrum, residual_attribution


def main() -> None:
    rng = np.random.default_rng(3)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, shape=(32, 32)
    )
    corrupted, report = FaultInjector(
        UncorrelatedFaultModel(0.01), seed=9
    ).inject(pristine)
    print(f"trial injection: {report.n_bits_flipped} flips "
          f"({report.flip_rate:.3%} of bits)\n")

    print("— sensitivity profile (dry run on the corrupted data) —")
    profile = sensitivity_profile(corrupted, lambdas=(10, 30, 50, 70, 90, 100))
    print(render_profile(profile))

    print("\n— bit-position attribution at L = 80 —")
    result = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
    spectra = residual_attribution(pristine, corrupted, result.corrected)
    print(render_spectrum(spectra))

    dominant = spectra["missed"].dominant_positions(0.9)
    print(f"\n90% of the missed-damage weight sits in bit positions "
          f"{sorted(dominant, reverse=True)}: repairs are essentially "
          f"perfect through window A and\ndegrade across the B/C boundary "
          f"(bits ~7-9 here), below which flips are indistinguishable\n"
          f"from natural variation — exactly the §3.1 window structure.")


if __name__ == "__main__":
    main()
