"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for the
PEP 660 editable path; this shim lets pip fall back to the legacy
``setup.py develop`` editable install (``--no-use-pep517``) in offline
environments.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
