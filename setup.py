"""Setup shim: legacy installs plus the optional native kernel build.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for the
PEP 660 editable path; this shim lets pip fall back to the legacy
``setup.py develop`` editable install (``--no-use-pep517``) in offline
environments.  All metadata lives in ``pyproject.toml``.

When cffi and a C compiler are present, the native kernel extension
(``repro.native._repro_native``) is compiled as part of the install.
When either is missing the install proceeds cleanly without it — the
extension is optional by design (kernels fall back to the NumPy tier,
or build on first use via ``repro.native.loader``).  Set
``REPRO_BUILD_NATIVE=1`` to make a missing toolchain a hard error, or
``REPRO_BUILD_NATIVE=0`` to skip the build even when possible.
"""

import os

from setuptools import setup


def _native_build_kwargs() -> dict:
    requested = os.environ.get("REPRO_BUILD_NATIVE", "").strip().lower()
    if requested in ("0", "no", "false", "off"):
        return {}
    kwargs = {
        "cffi_modules": ["src/repro/native/_build.py:ffibuilder"],
        "setup_requires": ["cffi>=1.15"],
    }
    if requested in ("1", "yes", "true", "on"):
        return kwargs  # forced: let a missing compiler/cffi fail loudly
    try:
        import cffi  # noqa: F401
    except ImportError:
        return {}
    try:
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
        from repro.native.loader import compiler_available
    except Exception:
        return {}
    return kwargs if compiler_available() else {}


setup(**_native_build_kwargs())
