"""repro — reproduction of *Pre-Processing Input Data to Augment Fault
Tolerance in Space Applications* (Nair, Koren, Koren & Krishna, DSN 2003).

The library preprocesses fault-exposed input datasets — identifying and
reverting memory/transit bit-flips before the science application sees
them — using the paper's dynamic bit-window voter algorithm, alongside
the standard smoothing baselines it compares against, the two fault
models of §2.2, and full NGST/OTIS application substrates.

Quickstart::

    import numpy as np
    from repro import (AlgoNGST, NGSTConfig, NGSTDatasetConfig,
                       FaultInjector, UncorrelatedFaultModel,
                       generate_walk, psi)

    rng = np.random.default_rng(7)
    pristine = generate_walk(NGSTDatasetConfig(), rng, shape=(32, 32))
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=1).inject(pristine)
    repaired = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted).corrected
    print(psi(corrupted, pristine), "->", psi(repaired, pristine))
"""

from repro.config import (
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
    OTISBounds,
    OTISConfig,
    UncorrelatedFaultConfig,
)
from repro.core import (
    AlgoNGST,
    AlgoOTIS,
    NGSTPreprocessor,
    NGSTResult,
    OTISPreprocessor,
    OTISResult,
)
from repro.data import generate_image_stack, generate_walk, make_dataset
from repro.exceptions import ReproError
from repro.faults import (
    CorrelatedFaultModel,
    FaultInjector,
    InjectionReport,
    InterleavedLayout,
    RowMajorLayout,
    UncorrelatedFaultModel,
)
from repro.metrics import bit_confusion, improvement_factor, psi
from repro.runtime import (
    CheckpointStore,
    ProcessPoolBackend,
    SerialBackend,
    TrialRuntime,
)
from repro.stream import (
    InjectStage,
    StreamPipeline,
    StreamResult,
    SyntheticWalkSource,
    VoterStage,
    WindowedStage,
    run_batch,
    run_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AlgoNGST",
    "AlgoOTIS",
    "CheckpointStore",
    "CorrelatedFaultConfig",
    "CorrelatedFaultModel",
    "FaultInjector",
    "InjectionReport",
    "InjectStage",
    "InterleavedLayout",
    "NGSTConfig",
    "NGSTDatasetConfig",
    "NGSTPreprocessor",
    "NGSTResult",
    "OTISBounds",
    "OTISConfig",
    "OTISPreprocessor",
    "OTISResult",
    "ProcessPoolBackend",
    "ReproError",
    "RowMajorLayout",
    "SerialBackend",
    "StreamPipeline",
    "StreamResult",
    "SyntheticWalkSource",
    "TrialRuntime",
    "UncorrelatedFaultConfig",
    "UncorrelatedFaultModel",
    "VoterStage",
    "WindowedStage",
    "bit_confusion",
    "generate_image_stack",
    "generate_walk",
    "improvement_factor",
    "make_dataset",
    "psi",
    "run_batch",
    "run_stream",
    "__version__",
]
