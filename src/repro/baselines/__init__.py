"""Standard preprocessing baselines the paper compares against (§4).

* :mod:`repro.baselines.median` — the optimal median smoothing
  algorithm (Algorithm 2) and its OTIS spatial variant;
* :mod:`repro.baselines.majority` — the sliding-window bitwise majority
  voting algorithm (Algorithm 3) and its OTIS spatial variant;
* :mod:`repro.baselines.smoothing` — the §4 catalogue of generic
  value-domain smoothers (mean, running average, negative exponential,
  inverse-square, bi-square).
"""

from repro.baselines.majority import majority_vote_spatial, majority_vote_temporal
from repro.baselines.median import median_smooth_spatial, median_smooth_temporal
from repro.baselines.smoothing import (
    bisquare_smooth,
    inverse_square_smooth,
    mean_smooth,
    negative_exponential_smooth,
    running_average_smooth,
)

__all__ = [
    "bisquare_smooth",
    "inverse_square_smooth",
    "majority_vote_spatial",
    "majority_vote_temporal",
    "mean_smooth",
    "median_smooth_spatial",
    "median_smooth_temporal",
    "negative_exponential_smooth",
    "running_average_smooth",
]
