"""Sliding-window bitwise majority voting (Algorithm 3, §4.2).

Instead of discarding an outlier pixel's entire word — and with it the
information of its 15 uncorrupted bits — every bit position votes
independently against the bits at the same binary weight in the
neighbouring variants.  Each bit becomes the majority of {previous,
current, next}; the paper pads the sequence with ``P(0) = P(3)`` and
``P(N+1) = P(N−2)`` (1-based), which we reproduce exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitops
from repro.exceptions import ConfigurationError, DataFormatError
from repro.native import dispatch as _dispatch
from repro.native import kernels as _native_kernels


def _majority3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Per-bit majority of three equal-dtype unsigned arrays."""
    return (a & b) | (b & c) | (a & c)


def majority_vote_temporal(pixels: np.ndarray) -> np.ndarray:
    """Bitwise majority voting along the temporal axis, window of three.

    Args:
        pixels: array of shape ``(N, ...)`` with an unsigned dtype, N >= 4
            (the paper's edge padding references P(3) and P(N−2)).

    Returns the voted copy: every bit of every pixel is the majority of
    that bit in the pixel and its two temporal neighbours.
    """
    bitops.require_unsigned(pixels, "pixels")
    n = pixels.shape[0] if pixels.ndim else 0
    if n < 4:
        raise DataFormatError(f"majority voting needs N >= 4 variants, got {n}")
    # Paper's padding (1-based): P(0) = P(3), P(N+1) = P(N-2).  In
    # 0-based terms the virtual predecessor of index 0 is pixels[2] and
    # the virtual successor of index N-1 is pixels[N-3].
    prev = np.concatenate([pixels[2][None], pixels[:-1]], axis=0)
    nxt = np.concatenate([pixels[1:], pixels[n - 3][None]], axis=0)
    return _majority3(prev, pixels, nxt)


def majority_vote_spatial(field: np.ndarray, axis_pairs: bool = True) -> np.ndarray:
    """The §7.3 OTIS adaptation: per-bit majority over spatial neighbours.

    Operates on the float32 bit patterns (or raw unsigned words).  Each
    bit becomes the majority of {left, centre, right} and then of
    {up, centre', down} — two sequential 3-way votes, the separable
    2-D analogue of Algorithm 3.  Borders are reflected.

    Args:
        field: 2-D float32 field, 3-D float32 cube, or unsigned 2-D array.
        axis_pairs: when False, only the horizontal vote runs (useful for
            ablations).
    """
    field = np.asarray(field)
    if field.dtype == np.float32:
        if field.ndim == 3:
            return np.stack([majority_vote_spatial(b, axis_pairs) for b in field])
        bits = bitops.float32_to_bits(np.ascontiguousarray(field))
        voted = majority_vote_spatial(bits, axis_pairs)
        return bitops.bits_to_float32(voted)
    bitops.require_unsigned(field, "field")
    if field.ndim != 2:
        raise DataFormatError(f"expected a 2-D field, got {field.ndim}-D")
    if min(field.shape) < 3:
        raise DataFormatError(f"field {field.shape} too small for a 3-window")
    if field.shape[1] >= 3:
        left = np.concatenate([field[:, 2:3], field[:, :-1]], axis=1)
        right = np.concatenate([field[:, 1:], field[:, -3:-2]], axis=1)
        field = _majority3(left, field, right)
    if axis_pairs and field.shape[0] >= 3:
        up = np.concatenate([field[2:3, :], field[:-1, :]], axis=0)
        down = np.concatenate([field[1:, :], field[-3:-2, :]], axis=0)
        field = _majority3(up, field, down)
    return field


def majority_vote_window(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """Generalised bitwise majority over an odd window along axis 0.

    For ``window == 3`` this matches :func:`majority_vote_temporal` except
    at the paper-specific edge padding (reflection is used here).  Wider
    windows serve the ablation benches.  Validation happens here; the
    vote itself runs on the selected kernel tier (the C tier holds the
    per-bit window count in a bit-sliced 4-level counter, so windows
    wider than 15 automatically demote to the NumPy tier).
    """
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    bitops.require_unsigned(pixels, "pixels")
    n = pixels.shape[0] if pixels.ndim else 0
    if n < window:
        raise DataFormatError(f"need N >= {window} variants, got {n}")
    return _dispatch.call("majority_vote_window", pixels, window)


def _numpy_majority_vote_window(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """NumPy tier for :func:`majority_vote_window` (bit-plane counts)."""
    n = pixels.shape[0]
    half = window // 2
    planes = bitops.to_bit_planes(pixels)
    # Clamped edges are an edge-pad of the temporal axis; the window sum
    # is then a stack of shifted views — no per-offset gather copies.
    pad = [(0, 0), (half, half)] + [(0, 0)] * (planes.ndim - 2)
    padded = np.pad(planes, pad, mode="edge")
    counts = np.zeros(planes.shape, dtype=np.int16)
    for k in range(window):
        counts += padded[:, k : k + n]
    majority_planes = (counts > half).astype(np.uint8)
    return bitops.from_bit_planes(majority_planes, pixels.dtype)


def _reference_majority_vote_window(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """Pre-vectorization oracle for :func:`majority_vote_window`."""
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    bitops.require_unsigned(pixels, "pixels")
    n = pixels.shape[0] if pixels.ndim else 0
    if n < window:
        raise DataFormatError(f"need N >= {window} variants, got {n}")
    half = window // 2
    nbits = bitops.bit_width(pixels.dtype)
    counts = np.zeros((nbits,) + pixels.shape, dtype=np.int16)
    planes = bitops.to_bit_planes(pixels)
    for offset in range(-half, half + 1):
        idx = np.clip(np.arange(n) + offset, 0, n - 1)
        counts += planes[:, idx]
    majority_planes = (counts > half).astype(np.uint8)
    return bitops.from_bit_planes(majority_planes, pixels.dtype)


_dispatch.register(
    "majority_vote_window",
    numpy_impl=_numpy_majority_vote_window,
    reference_impl=_reference_majority_vote_window,
    native_impl=_native_kernels.majority_vote_window,
    accepts=_native_kernels.majority_window_ok,
)
