"""Optimal median smoothing (Algorithm 2, §4.1).

A value-based sliding-window filter; the paper finds a window of three
pixels optimal for its benchmarks — wider windows raise false alarms
without adding correction potential — and notes median's robustness
advantage over the mean.  Endpoints reuse the nearest full window, as in
the published pseudocode.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError


def median_smooth_temporal(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """Median-smooth along the temporal (leading) axis.

    Args:
        pixels: array of shape ``(N, ...)``; any numeric dtype.
        window: odd window width >= 3; the default 3 is the paper's
            optimum for both benchmarks.

    Returns a smoothed copy, same dtype; each element is replaced by the
    median of its centred window (endpoints use the nearest full window,
    matching Algorithm 2's edge handling for window = 3).
    """
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    pixels = np.asarray(pixels)
    n = pixels.shape[0] if pixels.ndim else 0
    if n < window:
        raise DataFormatError(
            f"need at least window={window} temporal variants, got {n}"
        )
    half = window // 2
    dtype = pixels.dtype
    exact_int = np.issubdtype(dtype, np.integer) and dtype.itemsize <= 4
    is_float = np.issubdtype(dtype, np.floating)
    if not (exact_int or is_float):
        # 64-bit integers round through the reference's float64 median;
        # that rounding is part of the bit-identical contract, so keep it.
        return _reference_median_smooth_temporal(pixels, window)
    # One median per distinct window start; endpoint rows reuse the
    # nearest full window, so the output is a clamped gather of those.
    # An odd-window median is the middle order statistic, which
    # partition (or min/max for window 3) selects in the native dtype —
    # no float64 round trip.  NaNs poison their windows exactly as
    # ``np.median`` does.
    starts = np.clip(np.arange(n) - half, 0, n - window)
    if window == 3:
        a, b, c = pixels[:-2], pixels[1:-1], pixels[2:]
        medians = np.maximum(np.minimum(a, b), np.minimum(np.maximum(a, b), c))
        if is_float:
            nan_any = np.isnan(a) | np.isnan(b) | np.isnan(c)
            medians = np.where(nan_any, np.array(np.nan, dtype=dtype), medians)
        return medians[starts]
    windows = np.lib.stride_tricks.sliding_window_view(pixels, window, axis=0)
    if exact_int:
        medians = np.partition(windows, half, axis=-1)[..., half]
    else:
        part = np.partition(windows.astype(np.float64), (half, window - 1), axis=-1)
        medians = np.where(
            np.isnan(part[..., window - 1]), np.nan, part[..., half]
        ).astype(dtype)
    return medians[starts]


def _reference_median_smooth_temporal(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """Pre-vectorization oracle for :func:`median_smooth_temporal`."""
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    pixels = np.asarray(pixels)
    n = pixels.shape[0] if pixels.ndim else 0
    if n < window:
        raise DataFormatError(
            f"need at least window={window} temporal variants, got {n}"
        )
    half = window // 2
    out = np.empty_like(pixels)
    for i in range(n):
        start = min(max(i - half, 0), n - window)
        segment = pixels[start : start + window]
        out[i] = np.median(segment.astype(np.float64), axis=0).astype(pixels.dtype)
    return out


def median_smooth_spatial(field: np.ndarray, window: int = 3) -> np.ndarray:
    """The §7.3 OTIS adaptation: a 2-D median over a window×window patch.

    Borders are reflected so every pixel sees a full patch.
    """
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    field = np.asarray(field)
    if field.ndim == 3:
        return np.stack([median_smooth_spatial(band, window) for band in field])
    if field.ndim != 2:
        raise DataFormatError(f"expected a 2-D field or 3-D cube, got {field.ndim}-D")
    if min(field.shape) < window:
        raise DataFormatError(
            f"field {field.shape} smaller than window {window}"
        )
    half = window // 2
    dtype = field.dtype
    exact_int = np.issubdtype(dtype, np.integer) and dtype.itemsize <= 4
    is_float = np.issubdtype(dtype, np.floating)
    if not (exact_int or is_float):
        return _reference_median_smooth_spatial(field, window)
    mid = (window * window) // 2
    padded = np.pad(field, half, mode="reflect")
    patches = np.stack(
        [
            padded[dr : dr + field.shape[0], dc : dc + field.shape[1]]
            for dr in range(window)
            for dc in range(window)
        ]
    )
    if exact_int:
        return np.partition(patches, mid, axis=0)[mid]
    part = np.partition(patches.astype(np.float64), (mid, window * window - 1), axis=0)
    return np.where(np.isnan(part[-1]), np.nan, part[mid]).astype(dtype)


def _reference_median_smooth_spatial(field: np.ndarray, window: int = 3) -> np.ndarray:
    """Pre-vectorization oracle for :func:`median_smooth_spatial`."""
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    field = np.asarray(field)
    if field.ndim == 3:
        return np.stack([_reference_median_smooth_spatial(band, window) for band in field])
    if field.ndim != 2:
        raise DataFormatError(f"expected a 2-D field or 3-D cube, got {field.ndim}-D")
    if min(field.shape) < window:
        raise DataFormatError(
            f"field {field.shape} smaller than window {window}"
        )
    half = window // 2
    padded = np.pad(field, half, mode="reflect")
    patches = []
    for dr in range(window):
        for dc in range(window):
            patches.append(
                padded[dr : dr + field.shape[0], dc : dc + field.shape[1]]
            )
    stacked = np.stack(patches).astype(np.float64)
    return np.median(stacked, axis=0).astype(field.dtype)
