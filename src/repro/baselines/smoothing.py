"""The §4 catalogue of generic value-domain smoothers.

"Some other commonly used smoothing algorithms include negative
exponential, loss, running average, inverse square, bi-square etc." —
all implemented along the temporal (leading) axis, with the same
centred-window conventions as the median baseline so the comparisons in
the ablation benches are apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError
from repro.native import dispatch as _dispatch
from repro.native import kernels as _native_kernels


def _validate(pixels: np.ndarray, window: int) -> np.ndarray:
    if window < 3 or window % 2 == 0:
        raise ConfigurationError(f"window must be odd and >= 3, got {window}")
    pixels = np.asarray(pixels)
    n = pixels.shape[0] if pixels.ndim else 0
    if n < window:
        raise DataFormatError(f"need at least {window} temporal variants, got {n}")
    return pixels


def _finish(out: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Shared dtype finishing: round/clamp for integers, cast for floats.

    Every tier returns the raw float64 ``acc / wsum`` result, so the
    final rounding happens in exactly one place for all of them.
    """
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return np.clip(np.rint(out), info.min, info.max).astype(dtype)
    return out.astype(dtype)


def _weighted_window_smooth(pixels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Apply a centred weighted window along axis 0 with clamped edges.

    The float64 accumulate-and-divide runs on the selected kernel tier;
    the taps are accumulated in the same order in every tier — float
    addition is not associative, so the order is part of the
    bit-identical contract (the C tier is compiled with
    ``-ffp-contract=off`` so its multiply/add roundings match NumPy's).
    """
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    out = _dispatch.call("weighted_window_smooth", pixels, weights)
    return _finish(out, pixels.dtype)


def _numpy_weighted_accumulate(pixels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """NumPy tier: clamped edges are an edge-pad of the temporal axis, so
    each tap is a shifted view of one padded copy instead of a
    fancy-indexed gather."""
    n = pixels.shape[0]
    window = len(weights)
    half = window // 2
    pad = [(half, half)] + [(0, 0)] * (pixels.ndim - 1)
    padded = np.pad(pixels.astype(np.float64), pad, mode="edge")
    acc = np.zeros(pixels.shape, dtype=np.float64)
    wsum = weights.sum()
    for k, w in enumerate(weights):
        acc += w * padded[k : k + n]
    return acc / wsum


def _reference_weighted_accumulate(pixels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Reference tier: per-offset fancy-indexed gather accumulation."""
    n = pixels.shape[0]
    window = len(weights)
    half = window // 2
    acc = np.zeros(pixels.shape, dtype=np.float64)
    wsum = weights.sum()
    for k, w in enumerate(weights):
        offset = k - half
        idx = np.clip(np.arange(n) + offset, 0, n - 1)
        acc += w * pixels[idx].astype(np.float64)
    return acc / wsum


def _reference_weighted_window_smooth(pixels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Pre-vectorization oracle for :func:`_weighted_window_smooth`."""
    return _finish(
        _reference_weighted_accumulate(pixels, np.asarray(weights, dtype=np.float64)),
        pixels.dtype,
    )


_dispatch.register(
    "weighted_window_smooth",
    numpy_impl=_numpy_weighted_accumulate,
    reference_impl=_reference_weighted_accumulate,
    native_impl=_native_kernels.weighted_window_smooth,
    accepts=_native_kernels.weighted_smooth_ok,
)


def mean_smooth(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    """Plain moving-average smoothing (the paper's 'mean smoothing').

    The §4.1 discussion notes the median "yields far better results than
    Mean Smoothing, due to the better robustness of median over mean";
    this implementation exists to reproduce that comparison.
    """
    pixels = _validate(pixels, window)
    return _weighted_window_smooth(pixels, np.ones(window))


def running_average_smooth(pixels: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Exponentially weighted running average along the temporal axis.

    ``out(i) = α·pixels(i) + (1−α)·out(i−1)``, applied forward.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    pixels = np.asarray(pixels)
    if pixels.shape[0] < 2:
        raise DataFormatError("need at least 2 temporal variants")
    out = np.empty(pixels.shape, dtype=np.float64)
    out[0] = pixels[0]
    for i in range(1, pixels.shape[0]):
        out[i] = alpha * pixels[i] + (1.0 - alpha) * out[i - 1]
    if np.issubdtype(pixels.dtype, np.integer):
        info = np.iinfo(pixels.dtype)
        return np.clip(np.rint(out), info.min, info.max).astype(pixels.dtype)
    return out.astype(pixels.dtype)


def negative_exponential_smooth(pixels: np.ndarray, window: int = 5, scale: float = 1.0) -> np.ndarray:
    """Centred window with weights ``exp(-|offset| / scale)``."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    pixels = _validate(pixels, window)
    half = window // 2
    offsets = np.abs(np.arange(-half, half + 1))
    return _weighted_window_smooth(pixels, np.exp(-offsets / scale))


def inverse_square_smooth(pixels: np.ndarray, window: int = 5) -> np.ndarray:
    """Centred window with weights ``1 / (1 + offset²)``."""
    pixels = _validate(pixels, window)
    half = window // 2
    offsets = np.arange(-half, half + 1, dtype=np.float64)
    return _weighted_window_smooth(pixels, 1.0 / (1.0 + offsets**2))


def bisquare_smooth(pixels: np.ndarray, window: int = 5) -> np.ndarray:
    """Tukey bi-square (biweight) kernel over a centred window.

    Weights ``(1 − (offset/(half+1))²)²`` — zero beyond the window edge.
    """
    pixels = _validate(pixels, window)
    half = window // 2
    u = np.arange(-half, half + 1, dtype=np.float64) / (half + 1.0)
    return _weighted_window_smooth(pixels, (1.0 - u**2) ** 2)
