"""Content-addressed artifact cache for campaign preprocessing.

Every Ψ-vs-Λ sweep re-derives the same expensive upstream artifacts —
pristine datasets and corrupted fault realizations — once per arm of
the (seed, Γ) grid.  This subsystem eliminates that redundancy:

* :mod:`repro.cache.fingerprint` derives a canonical content key from
  (generator config, ``SeedSequence`` entropy, fault-model params);
* :class:`ArtifactCache` serves artifacts from an in-process LRU tier
  and an optional crash-safe on-disk tier (``.npz`` + JSON sidecar,
  atomic rename, size-capped eviction);
* :class:`SharedArtifactMap` broadcasts cached read-only arrays to
  process-pool workers through one ``multiprocessing.shared_memory``
  segment instead of pickling per shard.

The fused trial scheduler in :mod:`repro.runtime.fusion` drives all
three; see docs/CACHING.md for key derivation, tier semantics, and the
shared-memory lifecycle.
"""

from repro.cache.fingerprint import canonicalize, fingerprint, seed_fingerprint
from repro.cache.sharedmem import SharedArtifactMap
from repro.cache.store import ArtifactCache, CachedArtifact, CacheStats

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CachedArtifact",
    "SharedArtifactMap",
    "canonicalize",
    "fingerprint",
    "seed_fingerprint",
]
