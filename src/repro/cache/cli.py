"""The ``repro cache`` subcommand: inspect or clear the on-disk tier.

Usage (via the main entry point)::

    repro cache stats [--cache-dir DIR] [--json]
    repro cache clear [--cache-dir DIR]

``stats`` reports the disk tier's entry count and byte usage (the
in-memory LRU tier is per-process and therefore always empty from a
fresh CLI invocation) plus a per-DAG-node-kind breakdown
(dataset/fault/score/aggregate/...) read from the ``node_kind`` stamp
each artifact's sidecar carries; ``clear`` deletes every cached
payload/sidecar pair plus any stale temp files.  Both default to the
same directory the experiment commands use for ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cache.store import ArtifactCache

#: Default on-disk cache location, shared with the experiment commands.
DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro cache``."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the on-disk artifact cache tier.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="on-disk cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="('stats' only) emit the snapshot as JSON on stdout",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro cache``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    directory = Path(args.cache_dir)
    if args.action == "clear" and not directory.exists():
        print(f"cache directory {directory} does not exist", file=sys.stderr)
        return 2
    cache = ArtifactCache(max_memory_bytes=0, directory=directory)
    if args.action == "clear":
        before, before_bytes = cache.stats().n_disk_entries, cache.stats().disk_bytes
        cache.clear()
        print(f"cleared {before} entr{'y' if before == 1 else 'ies'} "
              f"({before_bytes} bytes) from {directory}")
        return 0
    stats = cache.stats()
    kinds = cache.disk_kind_breakdown()
    if args.json:
        snapshot = {
            "directory": str(directory),
            "n_disk_entries": stats.n_disk_entries,
            "disk_bytes": stats.disk_bytes,
            "kinds": kinds,
        }
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"cache directory: {directory}")
    print(f"disk entries:    {stats.n_disk_entries}")
    print(f"disk bytes:      {stats.disk_bytes}")
    if kinds:
        print("by node kind:")
        width = max(len(kind) for kind in kinds)
        for kind, usage in kinds.items():
            print(
                f"  {kind:<{width}}  "
                f"{usage['entries']:>6} entr{'y' if usage['entries'] == 1 else 'ies'}  "
                f"{usage['bytes']:>12} bytes"
            )
    return 0
