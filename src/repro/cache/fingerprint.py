"""Canonical content fingerprints for cache keys.

An artifact is addressed by *what produced it*: the generator
configuration, the fault-model parameters, and the trial's
``SeedSequence`` entropy.  :func:`fingerprint` reduces any nesting of
dataclasses, mappings, sequences, numpy scalars/arrays, and seed
sequences to one canonical JSON document and returns its SHA-256 hex
digest.  Two byte-identical configurations always map to the same key;
changing any field — or the entropy — changes the key.

The canonical form is deliberately strict:

* dataclasses serialise as ``{"__dataclass__": <qualified name>,
  "fields": {...}}`` so two config types with coincidentally equal
  fields cannot collide;
* floats serialise via ``repr`` (shortest round-trip form), keeping
  ``0.1`` distinct from ``0.1000000001``;
* ``SeedSequence`` serialises its entropy *and* spawn key, so sibling
  trials spawned from one root never share a key;
* arrays serialise as dtype + shape + a SHA-256 of their bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError


def canonicalize(obj: Any) -> Any:
    """Reduce *obj* to a canonical JSON-serialisable structure.

    Supports None, bool, int, float, str, Enum, bytes, numpy scalars
    and arrays, ``SeedSequence``, dataclass instances, mappings, and
    sequences; anything else raises :class:`ConfigurationError` rather
    than silently keying on an unstable ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return {"__float__": repr(obj)}
    if isinstance(obj, Enum):
        return {"__enum__": f"{type(obj).__name__}.{obj.name}"}
    if isinstance(obj, bytes):
        return {"__bytes__": hashlib.sha256(obj).hexdigest()}
    if isinstance(obj, np.random.SeedSequence):
        return {
            "__seed_sequence__": {
                "entropy": canonicalize(obj.entropy),
                "spawn_key": [int(k) for k in obj.spawn_key],
                "pool_size": int(obj.pool_size),
            }
        }
    if isinstance(obj, np.generic):
        return canonicalize(obj.item())
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": {
                "dtype": str(data.dtype),
                "shape": list(data.shape),
                "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
            }
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        name = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return {"__dataclass__": name, "fields": fields}
    if isinstance(obj, dict):
        canon = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cache-key mapping keys must be str, got {type(key).__name__}"
                )
            canon[key] = canonicalize(value)
        return {"__mapping__": canon}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    raise ConfigurationError(
        f"cannot derive a stable cache key from {type(obj).__name__!r}; "
        "pass configs as dataclasses, mappings, sequences, or scalars"
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of *parts*.

    The variadic parts are hashed as one canonical list, so
    ``fingerprint(a, b)`` differs from ``fingerprint((a, b))`` only in
    never colliding with a single-part key by construction.
    """
    canonical = json.dumps(
        canonicalize(list(parts)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def seed_fingerprint(seed: np.random.SeedSequence) -> str:
    """Fingerprint of one trial's ``SeedSequence`` identity alone."""
    return fingerprint(seed)
