"""Zero-copy broadcast of cached artifacts to pool workers.

A :class:`SharedArtifactMap` packs a set of cache entries into **one**
``multiprocessing.shared_memory`` segment and exposes them as a
read-only mapping of key → :class:`CachedArtifact` whose arrays are
views into the segment.  Pickling the map serialises only the segment
name and the array specs (dtype, shape, byte offset) — a few hundred
bytes — so handing it to a process pool costs O(1) IPC regardless of
how many megabytes of artifacts it carries; workers attach to the same
physical pages instead of unpickling private copies.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedArtifactMap.shutdown` (or use the map as a context
manager) to unlink it; a ``weakref.finalize`` backstop unlinks on
garbage collection or interpreter exit, so a crashed worker never
strands the segment — attachments die with the worker's address space
and the owner's unlink removes the name.  Workers attach lazily on
first access and deliberately unregister the attachment from
``multiprocessing.resource_tracker``, which would otherwise unlink the
owner's segment when the first worker exits.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.cache.store import CachedArtifact

#: Worker-side attachments by segment name, kept open for the life of
#: the worker process so repeated shard calls attach exactly once.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one array inside the shared segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


def _unregister_from_tracker(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking a borrowed segment.

    Attaching registers the segment with this process's tracker, which
    unlinks it when the process exits — correct for an owner, fatal for
    a worker borrowing the parent's broadcast.  Best-effort: tracker
    internals differ across Python versions.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedArtifactMap(Mapping[str, CachedArtifact]):
    """Read-only mapping of cache entries backed by one shared segment.

    Build one with :meth:`broadcast`; pass it (pickled or fork-inherited)
    to pool workers, who see the same bytes zero-copy.  The owner must
    :meth:`shutdown` the map when the pool is done.
    """

    def __init__(
        self,
        segment_name: str,
        specs: dict[str, tuple[_ArraySpec, ...]],
        metas: dict[str, dict],
        owner: bool,
        shm: shared_memory.SharedMemory | None = None,
    ) -> None:
        self._segment_name = segment_name
        self._specs = specs
        self._metas = metas
        self._owner = owner
        self._shm = shm
        self._entries: dict[str, CachedArtifact] | None = None
        self._finalizer = None
        if owner and shm is not None:
            self._finalizer = weakref.finalize(self, _owner_cleanup, shm)

    # -- construction -----------------------------------------------------

    @classmethod
    def broadcast(
        cls, entries: Mapping[str, CachedArtifact]
    ) -> "SharedArtifactMap":
        """Pack *entries* into a fresh shared segment owned by the caller."""
        total = sum(artifact.nbytes for artifact in entries.values())
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        specs: dict[str, tuple[_ArraySpec, ...]] = {}
        metas: dict[str, dict] = {}
        offset = 0
        for key, artifact in entries.items():
            placed = []
            for name in sorted(artifact.arrays):
                array = np.ascontiguousarray(artifact.arrays[name])
                end = offset + array.nbytes
                shm.buf[offset:end] = array.tobytes()
                placed.append(
                    _ArraySpec(
                        name=name,
                        dtype=str(array.dtype),
                        shape=tuple(array.shape),
                        offset=offset,
                        nbytes=array.nbytes,
                    )
                )
                offset = end
            specs[key] = tuple(placed)
            metas[key] = dict(artifact.meta)
        return cls(shm.name, specs, metas, owner=True, shm=shm)

    def worker_view(self) -> "SharedArtifactMap":
        """A non-owning handle safe to ship to (or inherit in) workers.

        Fork-inherited copies of the *owner* would run its finalizer on
        worker exit and unlink the live segment under the parent; a
        worker view never unlinks.  It carries the owner's open segment
        so fork-inherited workers reuse the mapping directly (no
        attach, no resource-tracker traffic); pickling drops it, so
        spawn workers attach by name instead.
        """
        return SharedArtifactMap(
            self._segment_name, self._specs, self._metas, owner=False, shm=self._shm
        )

    # -- mapping protocol -------------------------------------------------

    def _materialise(self) -> dict[str, CachedArtifact]:
        if self._entries is None:
            if self._shm is None:
                self._shm = shared_memory.SharedMemory(name=self._segment_name)
                _unregister_from_tracker(self._shm)
                _ATTACHED[self._segment_name] = self._shm
            entries = {}
            for key, placed in self._specs.items():
                arrays = {}
                for spec in placed:
                    view = np.frombuffer(
                        self._shm.buf,
                        dtype=np.dtype(spec.dtype),
                        count=int(np.prod(spec.shape, dtype=np.int64))
                        if spec.shape
                        else 1,
                        offset=spec.offset,
                    ).reshape(spec.shape)
                    view.flags.writeable = False
                    arrays[spec.name] = view
                entries[key] = CachedArtifact(arrays, dict(self._metas[key]))
            self._entries = entries
        return self._entries

    def __getitem__(self, key: str) -> CachedArtifact:
        return self._materialise()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def nbytes(self) -> int:
        """Total artifact payload bytes carried by the segment."""
        return sum(
            spec.nbytes for placed in self._specs.values() for spec in placed
        )

    @property
    def segment_name(self) -> str:
        """The shared segment's system-wide name."""
        return self._segment_name

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> None:
        """Owner: release views and unlink the segment (idempotent)."""
        self._entries = None
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._shm = None

    def __enter__(self) -> "SharedArtifactMap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- pickling ---------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "segment_name": self._segment_name,
            "specs": self._specs,
            "metas": self._metas,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["segment_name"], state["specs"], state["metas"], owner=False
        )


def _owner_cleanup(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink the owner's segment; tolerate races on exit."""
    try:
        shm.close()
    except BufferError:  # a view is still alive; unlink still proceeds
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
