"""The content-addressed artifact store: LRU memory tier + disk tier.

:class:`ArtifactCache` maps a content fingerprint (see
:mod:`repro.cache.fingerprint`) to a :class:`CachedArtifact` — a bundle
of read-only numpy arrays plus a small JSON-able metadata dict (the
captured RNG state, for example).  Lookups fall through three tiers:

1. an optional read-only **overlay** (the shared-memory broadcast a
   parent process hands to pool workers);
2. the in-process **LRU tier**, byte-capped, promoted on every hit;
3. the optional **disk tier**: one ``<key>.npz`` payload plus a
   ``<key>.json`` sidecar per entry, byte-capped with oldest-first
   eviction.

Disk writes are safe under concurrent writers: payload and sidecar are
written to unique temp files and published with ``os.replace`` (atomic
on POSIX), so readers never observe a partial file and the last writer
wins.  Within one process the cache is additionally thread-safe: an
internal re-entrant lock serialises tier bookkeeping (LRU order, byte
accounting, counters), so worker-pool threads — the serve layer runs
every stream's pipeline on a shared thread pool — can share one cache
instance.  ``get_or_create`` deliberately runs its factory *outside*
the lock: two threads may race to produce the same key (both results
are identical by construction, last writer wins), but a slow factory
never blocks unrelated lookups.  The sidecar records the payload's SHA-256; a torn pair or a
crash-corrupted payload fails verification and is treated as a miss
(and deleted), never served.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import uuid
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError

#: Sidecar schema version; bump on incompatible layout changes.
_SIDECAR_VERSION = 1


def _frozen(arrays: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Read-only views of *arrays* (the stored copies are never mutated)."""
    frozen = {}
    for name, array in arrays.items():
        view = np.asarray(array).view()
        view.flags.writeable = False
        frozen[name] = view
    return frozen


@dataclass(frozen=True)
class CachedArtifact:
    """One cache entry: named read-only arrays plus JSON-able metadata.

    Attributes:
        arrays: name → read-only ndarray.
        meta: small JSON-serialisable sidecar data (e.g. the captured
            generator state needed to resume the trial's RNG stream
            bit-identically after a cache hit).
    """

    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls, arrays: Mapping[str, np.ndarray], meta: dict | None = None
    ) -> "CachedArtifact":
        """Normalise *arrays* to read-only views and wrap them."""
        return cls(arrays=_frozen(arrays), meta=dict(meta or {}))

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all arrays."""
        return sum(a.nbytes for a in self.arrays.values())


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot for one :class:`ArtifactCache`.

    Attributes:
        hits: lookups served from any tier.
        misses: lookups that found nothing.
        overlay_hits: hits served by the shared-memory overlay.
        memory_hits: hits served by the in-process LRU tier.
        disk_hits: hits served by the on-disk tier.
        puts: entries stored.
        memory_evictions: LRU entries dropped to respect the byte cap.
        disk_evictions: disk entries dropped to respect the byte cap.
        bytes_saved: payload bytes served from cache instead of being
            regenerated (the Σ of every hit's artifact size).
        n_memory_entries: entries currently in the LRU tier.
        memory_bytes: payload bytes currently in the LRU tier.
        n_disk_entries: entries currently on disk (0 without a disk tier).
        disk_bytes: payload + sidecar bytes currently on disk.
    """

    hits: int = 0
    misses: int = 0
    overlay_hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    bytes_saved: int = 0
    n_memory_entries: int = 0
    memory_bytes: int = 0
    n_disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot, including the derived hit rate."""
        out = {f: getattr(self, f) for f in self.__dataclass_fields__}
        out["hit_rate"] = round(self.hit_rate, 6)
        return out


def infer_node_kind(names: list[str], meta: Mapping) -> str:
    """The DAG node kind of an artifact, from its sidecar fields.

    Prefers the explicit ``node_kind`` stamp; falls back to the array
    names that the pre-DAG fused pipeline used for its two artifact
    shapes, and ``"other"`` for anything unrecognised.
    """
    kind = meta.get("node_kind")
    if isinstance(kind, str) and kind:
        return kind
    if names == ["pristine"]:
        return "dataset"
    if names == ["corrupted"]:
        return "fault"
    return "other"


class ArtifactCache:
    """Content-addressed artifact cache with LRU memory + disk tiers.

    Args:
        max_memory_bytes: byte cap for the in-process tier; least
            recently used entries are evicted past it.  0 disables the
            memory tier (every hit then comes from overlay or disk).
        directory: on-disk tier location; None disables the disk tier.
        max_disk_bytes: byte cap for the disk tier; oldest entries are
            evicted past it.
    """

    def __init__(
        self,
        max_memory_bytes: int = 256 * 1024 * 1024,
        directory: str | Path | None = None,
        max_disk_bytes: int = 1024 * 1024 * 1024,
    ) -> None:
        if max_memory_bytes < 0:
            raise ConfigurationError(
                f"max_memory_bytes must be >= 0, got {max_memory_bytes}"
            )
        if max_disk_bytes < 1:
            raise ConfigurationError(
                f"max_disk_bytes must be >= 1, got {max_disk_bytes}"
            )
        self.max_memory_bytes = int(max_memory_bytes)
        self.max_disk_bytes = int(max_disk_bytes)
        self.directory = Path(directory) if directory is not None else None
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, CachedArtifact] = OrderedDict()
        self._memory_bytes = 0
        self._overlay: Mapping[str, CachedArtifact] | None = None
        self._counts = {
            "hits": 0,
            "misses": 0,
            "overlay_hits": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "puts": 0,
            "memory_evictions": 0,
            "disk_evictions": 0,
            "bytes_saved": 0,
        }

    # -- overlay (shared-memory broadcast) --------------------------------

    def attach_overlay(self, overlay: Mapping[str, CachedArtifact] | None) -> None:
        """Install a read-only first-lookup tier (or None to detach).

        Pool workers attach the parent's shared-memory broadcast here;
        entries it serves are zero-copy views into the shared segment.
        """
        self._overlay = overlay

    # -- lookups ----------------------------------------------------------

    def get(self, key: str) -> CachedArtifact | None:
        """The artifact stored under *key*, or None on a miss."""
        with self._lock:
            return self._get_locked(key)

    def _get_locked(self, key: str) -> CachedArtifact | None:
        if self._overlay is not None:
            artifact = self._overlay.get(key)
            if artifact is not None:
                self._hit("overlay_hits", artifact)
                return artifact
        artifact = self._memory.get(key)
        if artifact is not None:
            self._memory.move_to_end(key)
            self._hit("memory_hits", artifact)
            return artifact
        artifact = self._disk_read(key)
        if artifact is not None:
            self._admit_memory(key, artifact)
            self._hit("disk_hits", artifact)
            return artifact
        self._counts["misses"] += 1
        return None

    def contains(self, key: str) -> bool:
        """Whether *key* is present and verifiably intact, without loading.

        The DAG scheduler's recovery survey calls this once per node at
        startup: overlay and memory entries count as present, and a disk
        entry counts only when its sidecar parses, matches this key, and
        the payload's SHA-256 verifies — a torn payload/sidecar pair or
        a crash-corrupted payload reads as absent (and is deleted), so a
        node whose publication was interrupted simply re-runs.  No hit
        or miss counters are touched and nothing is admitted to the
        memory tier, so surveying a thousand-node graph does not distort
        campaign telemetry or churn the LRU order.
        """
        with self._lock:
            if self._overlay is not None and key in self._overlay:
                return True
            if key in self._memory:
                return True
            return self._disk_verify(key)

    def peek(self, key: str) -> CachedArtifact | None:
        """Memory-tier lookup with no counter updates or LRU promotion.

        Used when *assembling* a shared-memory broadcast: the parent
        inspects which entries are warm without recording synthetic
        hits that would distort the campaign's hit-rate telemetry.
        """
        with self._lock:
            return self._memory.get(key)

    def get_or_create(
        self, key: str, factory: Callable[[], CachedArtifact]
    ) -> CachedArtifact:
        """The cached artifact for *key*, producing and storing on miss."""
        artifact = self.get(key)
        if artifact is not None:
            return artifact
        produced = factory()
        if not isinstance(produced, CachedArtifact):
            produced = CachedArtifact.build(produced)
        self.put(key, produced)
        return produced

    def put(self, key: str, artifact: CachedArtifact) -> None:
        """Store *artifact* under *key* in every writable tier."""
        artifact = CachedArtifact(_frozen(artifact.arrays), dict(artifact.meta))
        with self._lock:
            self._counts["puts"] += 1
            self._admit_memory(key, artifact)
            self._disk_write(key, artifact)

    # -- stats / maintenance ----------------------------------------------

    def stats(self) -> CacheStats:
        """Current counters plus tier occupancy."""
        with self._lock:
            n_disk, disk_bytes = self._disk_usage()
            return CacheStats(
                **self._counts,
                n_memory_entries=len(self._memory),
                memory_bytes=self._memory_bytes,
                n_disk_entries=n_disk,
                disk_bytes=disk_bytes,
            )

    def disk_kind_breakdown(self) -> dict[str, dict[str, int]]:
        """Disk-tier occupancy grouped by DAG node kind.

        Returns ``{kind: {"entries": n, "bytes": payload+sidecar bytes}}``
        sorted by descending byte count.  The kind comes from the
        ``node_kind`` the DAG scheduler stamps into each artifact's
        sidecar metadata at publication; entries written by the fused
        (pre-DAG) path carry no stamp and are inferred from their array
        names (``pristine`` → dataset, ``corrupted`` → fault), with
        everything else grouped under ``"other"``.  Unreadable sidecars
        are skipped, not deleted — this is a reporting pass, not a
        verification pass.
        """
        breakdown: dict[str, dict[str, int]] = {}
        with self._lock:
            if self.directory is None or not self.directory.is_dir():
                return breakdown
            for sidecar_path in self.directory.glob("*.json"):
                try:
                    sidecar = json.loads(sidecar_path.read_text())
                    size = sidecar_path.stat().st_size
                    size += self._payload_path(sidecar_path.stem).stat().st_size
                except (OSError, json.JSONDecodeError):
                    continue
                kind = infer_node_kind(
                    sidecar.get("names") or [], sidecar.get("meta") or {}
                )
                slot = breakdown.setdefault(kind, {"entries": 0, "bytes": 0})
                slot["entries"] += 1
                slot["bytes"] += size
        return dict(
            sorted(breakdown.items(), key=lambda kv: -kv[1]["bytes"])
        )

    def counters(self) -> dict[str, int]:
        """A snapshot of the raw event counters (no occupancy fields)."""
        with self._lock:
            return dict(self._counts)

    def merge_counters(self, delta: Mapping[str, int]) -> None:
        """Fold a worker process's counter *delta* into this cache.

        Pool workers run against forked/attached copies of the cache
        whose counters the parent never sees; the runtime ships each
        shard's counter delta back and merges it here so campaign
        telemetry reflects worker-side hits too.  Unknown keys are
        ignored (forward compatibility).
        """
        with self._lock:
            for name, value in delta.items():
                if name in self._counts:
                    self._counts[name] += int(value)

    def clear(self) -> None:
        """Drop every entry from the memory and disk tiers."""
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._memory.clear()
        self._memory_bytes = 0
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.iterdir():
                if path.suffix in (".npz", ".json") or ".tmp-" in path.name:
                    path.unlink(missing_ok=True)

    # -- memory tier ------------------------------------------------------

    def _hit(self, tier: str, artifact: CachedArtifact) -> None:
        self._counts["hits"] += 1
        self._counts[tier] += 1
        self._counts["bytes_saved"] += artifact.nbytes

    def _admit_memory(self, key: str, artifact: CachedArtifact) -> None:
        if self.max_memory_bytes == 0:
            return
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= old.nbytes
        self._memory[key] = artifact
        self._memory_bytes += artifact.nbytes
        while self._memory_bytes > self.max_memory_bytes and len(self._memory) > 1:
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= evicted.nbytes
            self._counts["memory_evictions"] += 1

    # -- disk tier --------------------------------------------------------

    def _payload_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npz"

    def _sidecar_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _disk_write(self, key: str, artifact: CachedArtifact) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez(buffer, **artifact.arrays)
        payload = buffer.getvalue()
        sidecar = json.dumps(
            {
                "version": _SIDECAR_VERSION,
                "key": key,
                "names": sorted(artifact.arrays),
                "nbytes": artifact.nbytes,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "meta": artifact.meta,
            },
            sort_keys=True,
        )
        # Unique temp names keep concurrent writers of the same key from
        # trampling each other's half-written files; os.replace publishes
        # each file atomically, and because both writers derived identical
        # content from the same fingerprint, last-writer-wins is harmless.
        token = f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        payload_tmp = self._payload_path(key).with_name(
            self._payload_path(key).name + token
        )
        sidecar_tmp = self._sidecar_path(key).with_name(
            self._sidecar_path(key).name + token
        )
        try:
            payload_tmp.write_bytes(payload)
            sidecar_tmp.write_text(sidecar)
            os.replace(payload_tmp, self._payload_path(key))
            os.replace(sidecar_tmp, self._sidecar_path(key))
        except OSError:
            payload_tmp.unlink(missing_ok=True)
            sidecar_tmp.unlink(missing_ok=True)
            raise
        self._evict_disk()

    def _disk_read(self, key: str) -> CachedArtifact | None:
        if self.directory is None:
            return None
        payload_path = self._payload_path(key)
        sidecar_path = self._sidecar_path(key)
        try:
            sidecar = json.loads(sidecar_path.read_text())
            payload = payload_path.read_bytes()
        except (OSError, json.JSONDecodeError):
            return None
        if (
            sidecar.get("version") != _SIDECAR_VERSION
            or sidecar.get("key") != key
            or sidecar.get("payload_sha256")
            != hashlib.sha256(payload).hexdigest()
        ):
            # Torn pair or crash-corrupted payload: never serve it.
            self._drop_disk_entry(key)
            return None
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except (OSError, ValueError, KeyError):
            self._drop_disk_entry(key)
            return None
        if sorted(arrays) != sidecar.get("names"):
            self._drop_disk_entry(key)
            return None
        return CachedArtifact.build(arrays, sidecar.get("meta") or {})

    def _disk_verify(self, key: str) -> bool:
        """True when the disk pair for *key* exists and the payload hash
        matches its sidecar; corrupt or torn pairs are deleted."""
        if self.directory is None:
            return False
        try:
            sidecar = json.loads(self._sidecar_path(key).read_text())
            payload = self._payload_path(key).read_bytes()
        except (OSError, json.JSONDecodeError):
            return False
        if (
            sidecar.get("version") != _SIDECAR_VERSION
            or sidecar.get("key") != key
            or sidecar.get("payload_sha256")
            != hashlib.sha256(payload).hexdigest()
        ):
            self._drop_disk_entry(key)
            return False
        return True

    def _drop_disk_entry(self, key: str) -> None:
        self._payload_path(key).unlink(missing_ok=True)
        self._sidecar_path(key).unlink(missing_ok=True)

    def _disk_entries(self) -> list[tuple[float, int, str]]:
        """(mtime, bytes, key) per committed disk entry, oldest first."""
        if self.directory is None or not self.directory.is_dir():
            return []
        entries = []
        for sidecar_path in self.directory.glob("*.json"):
            key = sidecar_path.stem
            payload_path = self._payload_path(key)
            try:
                stat = payload_path.stat()
                size = stat.st_size + sidecar_path.stat().st_size
            except OSError:
                continue
            entries.append((stat.st_mtime, size, key))
        entries.sort()
        return entries

    def _disk_usage(self) -> tuple[int, int]:
        entries = self._disk_entries()
        return len(entries), sum(size for _, size, _ in entries)

    def _evict_disk(self) -> None:
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        # Oldest-first, but the newest entry (just written) always stays.
        for _, size, key in entries[:-1]:
            if total <= self.max_disk_bytes:
                break
            self._drop_disk_entry(key)
            total -= size
            self._counts["disk_evictions"] += 1
