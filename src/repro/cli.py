"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    repro list
    repro fig2 [--quick] [--jobs N] [--progress]
    repro all [--quick] [--json OUT.json]
    repro report [--quick] [--resume] [--plan] [--out REPORT.md]
    repro dag show [report|fig2] [--dot]
    repro fig5 --resume [--checkpoint-dir DIR]
    repro stream [--frames N] [--chunk-frames K] [--policy P] [--progress]
    repro serve [--port P] [--control-port C] [--checkpoint-dir DIR]
    repro fig2 --cache-dir .repro-cache   # persist artifacts across runs
    repro cache stats|clear [--cache-dir DIR]
    repro kernels [--json] [--require native]
    repro fig2 --threads 4                # thread-pool shards (native tier)
    repro worker [--port P] [--cache-dir DIR]      # cluster worker
    repro fig2 --backend cluster --workers host:port,host:port

``--quick`` shrinks repeats/grids so every experiment finishes in
seconds; default parameters match the EXPERIMENTS.md record.

``--jobs N`` runs each experiment's trial loops across N worker
processes; results are bit-identical to a serial run because every
trial's seed comes from the same ``SeedSequence`` spawn tree.
``--resume`` records completed trial shards to a JSONL checkpoint
(``--checkpoint-dir``, default ``.repro-checkpoints``) and, on re-run,
skips the shards already recorded — an interrupted campaign picks up
where it stopped.  ``--progress`` prints per-shard telemetry (timing,
trials/sec) to stderr.  See docs/RUNTIME.md.

``repro stream`` runs the bounded-memory streaming pipeline instead of
a batch experiment; its flags live in :mod:`repro.stream.cli` and its
semantics in docs/STREAMING.md.  ``repro serve`` starts the always-on
multi-tenant streaming service (:mod:`repro.serve.cli`, docs/SERVING.md).
``repro report`` materializes every experiment as one resumable DAG run
and ``repro dag show`` inspects the graph without running it; both live
in :mod:`repro.dag.cli` (docs/ORCHESTRATION.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cache import ArtifactCache
from repro.config import STRATEGY_CHOICES
from repro.exceptions import ReproError
from repro.experiments.registry import REGISTRY, run_experiment
from repro.runtime import (
    BACKEND_CHOICES,
    CheckpointStore,
    ProgressPrinter,
    Telemetry,
    TrialRuntime,
    resolve_backend,
)

#: Parameter overrides applied by --quick, per experiment.
_QUICK_OVERRIDES: dict[str, dict] = {
    "fig1": {"n_slaves_grid": (1, 4), "frame_side": 128, "tile": 64, "n_readouts": 8},
    "fig2": {"n_repeats": 1, "shape": (8, 8), "gamma0_grid": (0.001, 0.01, 0.05)},
    "fig3": {"repeats": 1, "shape": (32, 32)},
    "fig4": {"n_repeats": 1, "shape": (8, 8), "gamma_ini_grid": (0.02, 0.1, 0.2)},
    "fig5": {"n_datasets": 3, "means": [64, 16384, 49152]},
    "fig6": {
        "n_repeats": 1,
        "shape": (6, 6),
        "gamma0_grid": (0.002, 0.02, 0.08),
        "sigmas": (0.0, 250.0),
    },
    "fig7": {"n_repeats": 1, "rows": 32, "cols": 32, "gamma0_grid": (0.005, 0.025, 0.05)},
    "fig8": {"rows": 32, "cols": 32, "n_repeats": 2},
    "fig9": {
        "n_repeats": 1,
        "rows": 24,
        "cols": 24,
        "gamma_ini_grid": (0.05, 0.2, 0.3),
    },
    "ablate-layout": {
        "n_repeats": 1,
        "shape": (8, 8),
        "gamma_ini_grid": (0.05, 0.15),
        "burst_rate_grid": (5e-5,),
        "lambdas": (60.0, 90.0),
    },
    "ablate-locality": {
        "n_repeats": 1,
        "side": 16,
        "n_bands": 6,
        "gamma0_grid": (0.01, 0.05),
        "lambdas": (60.0, 100.0),
    },
    "ablate-storage": {"n_repeats": 1, "rows": 24, "cols": 24, "gamma0_grid": (0.01, 0.05)},
    "ablate-windows": {"n_repeats": 1, "shape": (8, 8), "gamma0_grid": (0.005, 0.025)},
    "compression": {"n_repeats": 1, "side": 24, "gamma0_grid": (0.0, 0.01, 0.05)},
    "motivation": {"n_repeats": 1, "side": 8, "gamma0_grid": (0.005, 0.025)},
}

#: Experiments whose ``run`` accepts a ``strategies`` keyword (the
#: figures ``--strategy`` adds adaptive/selective arms to).
_STRATEGY_EXPERIMENTS = frozenset({"fig2", "fig4"})


def probe_writable(directory: Path) -> str | None:
    """Check that *directory* can hold checkpoint files.

    Creates the directory (with parents) if needed and verifies a file
    can be opened for writing inside it.  Returns a one-line problem
    description, or ``None`` when the directory is usable — the CLI
    turns the former into a clean exit instead of a traceback from deep
    inside a checkpoint write.
    """
    probe = directory / ".write-probe"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with probe.open("w"):
            pass
        probe.unlink()
    except OSError as exc:
        return f"--checkpoint-dir {directory} is not writable: {exc}"
    return None


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        from repro.stream.cli import main as stream_main

        return stream_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.cache.cli import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "kernels":
        from repro.native.cli import main as kernels_main

        return kernels_main(argv[1:])
    if argv and argv[0] == "worker":
        from repro.cluster.cli import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.dag.cli import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "dag":
        from repro.dag.cli import dag_main

        return dag_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Pre-Processing Input Data to "
        "Augment Fault Tolerance in Space Applications' (DSN 2003).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'list', 'all', "
        "'report' (resumable DAG report run; 'repro report --help'), "
        "'dag' (task-graph inspection; 'repro dag --help'), "
        "'stream' (streaming pipeline; 'repro stream --help'), "
        "'serve' (streaming service; 'repro serve --help'), "
        "'cache' (artifact cache maintenance; 'repro cache --help'), "
        "'kernels' (kernel-tier diagnostics; 'repro kernels --help'), or "
        "'worker' (cluster worker; 'repro worker --help')",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced grids for a fast run"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also dump results as JSON to PATH"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial loops (default 1 = serial; "
        "results are bit-identical at any N)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=0,
        metavar="N",
        help="worker threads for trial loops instead of processes "
        "(best with the native kernel tier, whose C kernels release "
        "the GIL; see 'repro kernels'; mutually exclusive with --jobs)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="execution backend (default: inferred from --jobs/--threads/"
        "--workers; results are bit-identical for every choice)",
    )
    parser.add_argument(
        "--workers",
        metavar="ADDRS",
        default=None,
        help="cluster worker addresses as host:port[,host:port…] "
        "(start workers with 'repro worker'; implies --backend cluster)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint completed trial shards and skip the ones already "
        "recorded from a previous (possibly interrupted) run",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=".repro-checkpoints",
        help="where --resume stores per-experiment JSONL checkpoints "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-shard telemetry (timing, trials/sec) to stderr",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        choices=[s for s in STRATEGY_CHOICES if s != "fixed"],
        default=None,
        metavar="NAME",
        help="append an adaptive/selective Algo_NGST arm to experiments "
        "that support strategy arms (fig2, fig4); repeatable",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the artifact cache's disk tier here, so pristine "
        "datasets and fault realizations survive across invocations "
        "(default: in-memory cache only; see 'repro cache')",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.threads < 0:
        print(f"--threads must be >= 1, got {args.threads}", file=sys.stderr)
        return 2
    if args.threads and args.jobs > 1:
        print("--threads and --jobs are mutually exclusive", file=sys.stderr)
        return 2

    if args.resume:
        problem = probe_writable(Path(args.checkpoint_dir))
        if problem:
            print(problem, file=sys.stderr)
            return 2

    if args.cache_dir is not None:
        problem = probe_writable(Path(args.cache_dir))
        if problem:
            print(problem.replace("--checkpoint-dir", "--cache-dir"), file=sys.stderr)
            return 2

    if args.experiment == "list":
        for experiment_id in sorted(REGISTRY):
            print(experiment_id)
        return 0

    if args.experiment == "claims":
        from repro.experiments.claims import render_verdicts, verify_claims
        from repro.experiments.report import load_results_json

        if not args.json:
            print("claims requires --json RESULTS.json", file=sys.stderr)
            return 2
        verdicts = verify_claims(load_results_json(args.json))
        print(render_verdicts(verdicts))
        return 0 if all(v.passed for v in verdicts) else 1

    experiment_ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    if any(e not in REGISTRY for e in experiment_ids):
        bad = [e for e in experiment_ids if e not in REGISTRY]
        print(f"unknown experiment(s): {bad}; try 'repro list'", file=sys.stderr)
        return 2

    if args.strategy and args.experiment != "all":
        unsupported = [
            e for e in experiment_ids if e not in _STRATEGY_EXPERIMENTS
        ]
        if unsupported:
            print(
                f"--strategy applies to {sorted(_STRATEGY_EXPERIMENTS)}, "
                f"not {unsupported}",
                file=sys.stderr,
            )
            return 2

    try:
        backend = resolve_backend(
            args.backend, jobs=args.jobs, threads=args.threads,
            workers=args.workers,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    collected = []
    try:
        for experiment_id in experiment_ids:
            kwargs = _QUICK_OVERRIDES.get(experiment_id, {}) if args.quick else {}
            if args.strategy and experiment_id in _STRATEGY_EXPERIMENTS:
                kwargs = {**kwargs, "strategies": tuple(dict.fromkeys(args.strategy))}
            runtime = _build_runtime(args, experiment_id, backend)
            try:
                results = run_experiment(experiment_id, runtime=runtime, **kwargs)
            except ReproError as exc:
                print(f"{experiment_id} failed: {exc}", file=sys.stderr)
                return 2
            for result in results:
                print(result.to_table())
                print()
                collected.append(result.to_dict())
    finally:
        close = getattr(backend, "close", None)
        if callable(close):
            close()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"wrote {len(collected)} result panel(s) to {args.json}")
    return 0


def _build_runtime(
    args: argparse.Namespace, experiment_id: str, backend
) -> TrialRuntime:
    """One runtime per experiment: fresh auto-key sequence, own checkpoint.

    A per-experiment checkpoint file keyed by the runtime's
    deterministic call sequence means a resumed run re-derives the same
    keys in the same order and the recorded shards line up.  The
    *backend* is shared across experiments — a cluster backend keeps
    its worker connections (and the workers their warm caches) for the
    whole invocation.
    """
    checkpoint = None
    if args.resume:
        checkpoint = CheckpointStore(
            Path(args.checkpoint_dir) / f"{experiment_id}.jsonl"
        )
    telemetry = None
    if args.progress:
        telemetry = Telemetry()
        telemetry.subscribe(ProgressPrinter())
    cache = ArtifactCache(directory=args.cache_dir)
    return TrialRuntime(
        backend=backend, checkpoint=checkpoint, telemetry=telemetry, cache=cache
    )


if __name__ == "__main__":
    sys.exit(main())
