"""Multi-host execution: a coordinator/worker runtime behind the
:class:`~repro.runtime.Executor` seam.

:class:`ClusterBackend` dispatches a campaign's shards to remote
workers over a length-prefixed JSON/binary TCP protocol
(:mod:`repro.cluster.protocol`), shipping shard functions by value
(:mod:`repro.cluster.shipping`) and artifacts by content address
(:mod:`repro.cluster.store`): a worker that already holds an input
artifact receives only its ~100-byte key and pulls the payload from
the coordinator's :class:`~repro.cache.ArtifactCache` exactly once.
Workers are supervised by heartbeat; a worker that dies mid-shard has
its shard re-dispatched to a surviving peer, and because every shard
is a deterministic function of its plan seeds, the retried run is
bit-identical to the first attempt.

:class:`Worker` is the remote side (the ``repro worker`` CLI);
:class:`LocalCluster` forks N workers on loopback for tests and
benchmarks.  See docs/CLUSTER.md.
"""

from repro.cluster.coordinator import ClusterBackend, WorkerStats, parse_worker_list
from repro.cluster.local import LocalCluster
from repro.cluster.protocol import PROTOCOL_VERSION, ClusterError
from repro.cluster.store import WorkerArtifactStore, current_store
from repro.cluster.worker import Worker

__all__ = [
    "ClusterBackend",
    "ClusterError",
    "LocalCluster",
    "PROTOCOL_VERSION",
    "Worker",
    "WorkerArtifactStore",
    "WorkerStats",
    "current_store",
    "parse_worker_list",
]
