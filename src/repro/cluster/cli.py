"""``repro worker`` — run one cluster worker process.

Usage::

    repro worker [--host H] [--port P] [--cache-dir DIR]
                 [--max-memory-bytes N] [--once] [--verbose]

The worker prints its bound address (``host:port``) to stdout as soon
as it is listening — with ``--port 0`` (the default) the OS picks a
free port, so the printed line is how an orchestrator learns where to
point ``repro report --backend cluster --workers …``.  It then serves
coordinator sessions until interrupted (or after one session with
``--once``).  See docs/CLUSTER.md for the protocol and failure model.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.worker import Worker


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Run a cluster worker that executes shards dispatched "
        "by 'repro report --backend cluster' (docs/CLUSTER.md).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default %(default)s; use 0.0.0.0 to "
        "accept coordinators from other hosts)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default 0 = let the OS pick; the "
        "bound address is printed to stdout)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist pulled artifacts to a local disk tier so repeat "
        "campaigns ship only content keys (default: memory-only cache)",
    )
    parser.add_argument(
        "--max-memory-bytes",
        type=int,
        default=256 * 1024 * 1024,
        metavar="N",
        help="memory-tier cap for the local artifact cache "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after serving one coordinator session",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log session events to stderr"
    )
    args = parser.parse_args(argv)
    if args.port < 0 or args.port > 65535:
        print(f"--port must be in [0, 65535], got {args.port}", file=sys.stderr)
        return 2

    try:
        worker = Worker(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            max_memory_bytes=args.max_memory_bytes,
            verbose=args.verbose,
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    host, port = worker.address
    print(f"{host}:{port}", flush=True)
    try:
        worker.serve_forever(max_sessions=1 if args.once else None)
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
    if args.verbose:
        print(
            f"served {worker.sessions} session(s), "
            f"{worker.shards_run} shard(s)",
            file=sys.stderr,
        )
    return 0
