"""The coordinator: :class:`ClusterBackend`, an Executor over TCP workers.

``run_shards`` ships the shard function **once per worker** (content-
addressed by its pickle blob, so repeat waves and repeat runs re-send
nothing a connection already holds), then feeds each worker one shard
at a time: dispatch, await result, dispatch the next — the classic
work-queue that keeps fast workers busy without a partitioning step.
While shards execute the coordinator also answers ``artifact-request``
messages from its bound :class:`~repro.cache.ArtifactCache`, which is
what lets dispatches reference inputs by ~100-byte content key.

Failure model (docs/CLUSTER.md):

* a worker that stops sending (heartbeats flow even mid-shard) past
  ``heartbeat_timeout_s``, or whose connection drops, is declared dead;
  its in-flight shard is **re-dispatched** to a surviving worker —
  shards are deterministic functions of their plan seeds, so a retry
  is bit-identical and publication (always in the parent, always via
  atomic ``os.replace``) stays at-most-once;
* duplicate results (a "dead" worker that was merely slow) are
  dropped by shard index — first result wins, and both are identical
  by construction;
* if **every** worker dies mid-run the remaining shards run serially
  in the coordinator process with a :class:`RuntimeWarning` — the
  campaign still completes, exactly like the process pool's spawn
  fallback;
* a shard function that cannot ship (it closes over a lock, a socket…)
  degrades to in-process serial execution with a warn-once message,
  mirroring :class:`~repro.runtime.ProcessPoolBackend` under spawn.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
import warnings
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.cache.store import ArtifactCache
from repro.cluster import shipping
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Channel,
    ClusterError,
    pack_artifact,
)
from repro.exceptions import ConfigurationError
from repro.runtime.backend import Executor, SerialBackend, ShardFn, ShardResult
from repro.runtime.plan import Shard

#: Once-per-process latch for the unshippable-shard-function warning.
_SHIP_FALLBACK_WARNED = False


def parse_worker_list(spec: str | Sequence[str]) -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or a pre-split list) to addresses."""
    if isinstance(spec, str):
        entries = [entry.strip() for entry in spec.split(",") if entry.strip()]
    else:
        entries = [str(entry).strip() for entry in spec if str(entry).strip()]
    if not entries:
        raise ConfigurationError("need at least one worker address")
    addresses = []
    for entry in entries:
        host, sep, port = entry.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"worker address {entry!r} is not host:port"
            )
        try:
            addresses.append((host, int(port)))
        except ValueError:
            raise ConfigurationError(
                f"worker address {entry!r} has a non-integer port"
            ) from None
    return addresses


@dataclass
class WorkerStats:
    """Per-worker transfer and execution telemetry.

    Attributes:
        address: ``host:port`` of the worker.
        shards: results this worker delivered (duplicates excluded).
        elapsed_s: summed worker-side shard execution seconds.
        bytes_sent: bytes the coordinator sent this worker (tasks,
            dispatches, artifacts).
        bytes_received: bytes received from it (results, requests).
        artifact_pulls: artifacts the worker JIT-pulled on cache miss.
        pulled_bytes: payload bytes of those pulls.
        local_hits: input keys the worker resolved from its own cache.
        publishes: artifacts the worker published locally.
        redispatches: shards taken away from this worker after it died.
    """

    address: str
    shards: int = 0
    elapsed_s: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    artifact_pulls: int = 0
    pulled_bytes: int = 0
    local_hits: int = 0
    publishes: int = 0
    redispatches: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """local hits / key resolutions; 1.0 for a fully warm worker."""
        total = self.local_hits + self.artifact_pulls
        return self.local_hits / total if total else 0.0

    def as_dict(self) -> dict:
        out = {f: getattr(self, f) for f in self.__dataclass_fields__}
        out["elapsed_s"] = round(out["elapsed_s"], 4)
        out["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        return out


@dataclass
class _Link:
    """One live worker connection and its coordinator-side state."""

    address: tuple[str, int]
    channel: Channel
    stats: WorkerStats
    sent_fns: set = field(default_factory=set)
    alive: bool = True
    busy_with: Shard | None = None
    last_seen: float = field(default_factory=time.monotonic)

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class ClusterBackend(Executor):
    """Runs shards across remote workers (see module docstring).

    Args:
        workers: worker addresses — ``"host:port,host:port"``, or a
            sequence of such strings or ``(host, port)`` tuples.
        heartbeat_interval_s: liveness cadence asked of each worker.
        heartbeat_timeout_s: silence past which a worker is declared
            dead and its in-flight shard re-dispatched.
        connect_timeout_s: TCP connect + handshake budget per worker.
        require_all: when True, failing to connect to *any* configured
            worker raises instead of running degraded on the rest.
    """

    crosses_process_boundary = True
    ships_artifacts = True

    def __init__(
        self,
        workers: str | Sequence,
        heartbeat_interval_s: float = 0.5,
        heartbeat_timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        require_all: bool = False,
    ) -> None:
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ConfigurationError(
                f"heartbeat_timeout_s ({heartbeat_timeout_s}) must exceed "
                f"heartbeat_interval_s ({heartbeat_interval_s})"
            )
        addresses = []
        for address in (
            parse_worker_list(workers)
            if isinstance(workers, str)
            else [
                a if isinstance(a, tuple) else parse_worker_list(a)[0]
                for a in workers
            ]
        ):
            addresses.append((str(address[0]), int(address[1])))
        if not addresses:
            raise ConfigurationError("need at least one worker address")
        self.addresses = addresses
        self.jobs = len(addresses)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.require_all = require_all
        self._links: dict[str, _Link] = {}
        self._incoming: queue.Queue = queue.Queue()
        self._artifact_source: ArtifactCache | None = None
        self._run_id = 0
        self._stats: dict[str, WorkerStats] = {
            f"{host}:{port}": WorkerStats(address=f"{host}:{port}")
            for host, port in addresses
        }
        self._closed = False

    # -- wiring -----------------------------------------------------------

    def bind_artifact_source(self, cache: ArtifactCache | None) -> None:
        """Attach the store worker pulls are served from.

        The trial runtime and DAG scheduler call this with their own
        artifact cache before dispatching, which is what turns "ship
        the arrays" into "ship the key".
        """
        self._artifact_source = cache

    def describe(self) -> str:
        labels = ",".join(f"{h}:{p}" for h, p in self.addresses)
        return f"ClusterBackend(workers={self.jobs}: {labels})"

    def stats(self) -> dict[str, WorkerStats]:
        """Per-worker telemetry, keyed by ``host:port``."""
        for label, link in self._links.items():
            self._stats[label].bytes_sent = link.channel.bytes_sent
            self._stats[label].bytes_received = link.channel.bytes_received
        return dict(self._stats)

    def close(self) -> None:
        """Send shutdown to every live worker and drop the connections."""
        self._closed = True
        for link in self._links.values():
            if link.alive:
                try:
                    link.channel.send({"type": "shutdown"})
                except OSError:
                    pass
            link.channel.close()
        self._links.clear()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection management --------------------------------------------

    def _connect(self, address: tuple[str, int]) -> _Link:
        sock = socket.create_connection(address, timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        label = f"{address[0]}:{address[1]}"
        channel = Channel(sock, name=f"worker {label}")
        channel.send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "python": shipping.python_tag(),
                "heartbeat_interval_s": self.heartbeat_interval_s,
            }
        )
        sock.settimeout(self.connect_timeout_s)
        header, _ = channel.recv()
        if header.get("type") == "reject":
            channel.close()
            raise ClusterError(
                f"worker {label} rejected the session: {header.get('reason')}"
            )
        if header.get("type") != "welcome":
            channel.close()
            raise ClusterError(
                f"worker {label} answered {header.get('type')!r}, not welcome"
            )
        sock.settimeout(None)
        link = _Link(address=address, channel=channel, stats=self._stats[label])
        reader = threading.Thread(
            target=self._reader_loop, args=(link,), daemon=True
        )
        reader.start()
        return link

    def _reader_loop(self, link: _Link) -> None:
        try:
            while True:
                header, blobs = link.channel.recv()
                link.last_seen = time.monotonic()
                if header.get("type") == "heartbeat":
                    continue
                self._incoming.put((link, header, blobs))
        except (ClusterError, OSError):
            self._incoming.put((link, {"type": "__link-lost__"}, ()))

    def _ensure_links(self) -> list[_Link]:
        """Connect (or reconnect) every configured worker; alive links."""
        alive = []
        for address in self.addresses:
            label = f"{address[0]}:{address[1]}"
            link = self._links.get(label)
            if link is not None and link.alive:
                alive.append(link)
                continue
            try:
                link = self._connect(address)
            except (OSError, ClusterError) as exc:
                if self.require_all or isinstance(exc, ClusterError):
                    raise ClusterError(
                        f"cannot use worker {label}: {exc}"
                    ) from exc
                continue
            self._links[label] = link
            alive.append(link)
        return alive

    # -- execution --------------------------------------------------------

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        shards = list(shards)
        if not shards:
            return
        if self._closed:
            raise ClusterError("ClusterBackend was closed; create a new one")
        blob = self._ship_blob(shard_fn)
        if blob is None:
            yield from SerialBackend().run_shards(shard_fn, shards)
            return
        links = self._ensure_links()
        if not links:
            raise ClusterError(
                f"no cluster worker reachable (tried "
                f"{[f'{h}:{p}' for h, p in self.addresses]})"
            )
        yield from self._dispatch_loop(shard_fn, shards, blob)

    def _ship_blob(self, shard_fn: ShardFn) -> bytes | None:
        """The shipped form of *shard_fn*, or None → serial fallback."""
        target = shard_fn
        for_cluster = getattr(shard_fn, "for_cluster", None)
        if callable(for_cluster):
            target = for_cluster()
        try:
            return shipping.dumps(target)
        except Exception as exc:
            global _SHIP_FALLBACK_WARNED
            if not _SHIP_FALLBACK_WARNED:
                _SHIP_FALLBACK_WARNED = True
                warnings.warn(
                    f"shard function cannot be shipped to cluster workers "
                    f"({type(exc).__name__}: {exc}); falling back to "
                    f"in-process serial execution — make the shard function "
                    f"and everything it closes over picklable for "
                    f"multi-host speedup",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None

    def _dispatch_loop(
        self, shard_fn: ShardFn, shards: list[Shard], blob: bytes
    ) -> Iterator[ShardResult]:
        self._run_id += 1
        run_id = self._run_id
        fn_id = shipping.blob_id(blob)
        self._drain_stale()
        for link in self._links.values():
            link.busy_with = None
        pending: list[Shard] = list(shards)
        yielded: set[int] = set()
        n_total = len(shards)

        while len(yielded) < n_total:
            pending = self._reap_dead(pending)
            alive = [l for l in self._links.values() if l.alive]
            if not alive:
                remaining = pending + [
                    s
                    for l in self._links.values()
                    if l.busy_with is not None
                    for s in [l.busy_with]
                ]
                remaining = [s for s in remaining if s.index not in yielded]
                warnings.warn(
                    f"all {self.jobs} cluster worker(s) died; running the "
                    f"remaining {len(remaining)} shard(s) serially in the "
                    f"coordinator process",
                    RuntimeWarning,
                    stacklevel=2,
                )
                for result in SerialBackend().run_shards(shard_fn, remaining):
                    yielded.add(result.index)
                    yield result
                return
            for link in alive:
                if link.busy_with is None and pending:
                    self._dispatch(link, run_id, fn_id, blob, pending.pop(0))
            try:
                link, header, blobs = self._incoming.get(timeout=0.05)
            except queue.Empty:
                continue
            kind = header.get("type")
            if kind == "__link-lost__":
                self._bury(link)
            elif kind == "artifact-request":
                self._serve_artifact(link, header["key"])
            elif kind == "result":
                result = self._accept_result(link, header, blobs, run_id, yielded)
                if result is not None:
                    yielded.add(result.index)
                    yield result
            elif kind == "shard-error":
                if header.get("run_id") == run_id:
                    raise ClusterError(
                        f"worker {link.label} failed shard "
                        f"{header.get('shard_index')}: {header.get('error')}\n"
                        f"{header.get('details', '')}"
                    )
                link.busy_with = None

    def _dispatch(
        self, link: _Link, run_id: int, fn_id: str, blob: bytes, shard: Shard
    ) -> None:
        try:
            if fn_id not in link.sent_fns:
                link.channel.send({"type": "task", "fn_id": fn_id}, (blob,))
                link.sent_fns.add(fn_id)
            link.channel.send(
                {
                    "type": "dispatch",
                    "run_id": run_id,
                    "fn_id": fn_id,
                    "shard_index": shard.index,
                },
                (shipping.dumps(shard),),
            )
            link.busy_with = shard
        except OSError:
            link.busy_with = shard  # _bury re-queues it
            self._bury(link)

    def _accept_result(
        self,
        link: _Link,
        header: dict,
        blobs: tuple[bytes, ...],
        run_id: int,
        yielded: set[int],
    ) -> ShardResult | None:
        link.busy_with = None
        if header.get("run_id") != run_id:
            return None  # stale result from an abandoned run
        index = int(header["shard_index"])
        if index in yielded:
            return None  # duplicate after re-dispatch; first wins
        out = shipping.loads(blobs[0])
        meta = None
        if isinstance(out, tuple):
            values, meta = out
        else:
            values = out
        stats = header.get("stats") or {}
        link.stats.shards += 1
        link.stats.elapsed_s += float(header.get("elapsed_s", 0.0))
        link.stats.artifact_pulls += int(stats.get("pulls", 0))
        link.stats.pulled_bytes += int(stats.get("pulled_bytes", 0))
        link.stats.local_hits += int(stats.get("local_hits", 0))
        link.stats.publishes += int(stats.get("publishes", 0))
        return ShardResult(
            index=index,
            values=list(values),
            elapsed_s=float(header.get("elapsed_s", 0.0)),
            meta=meta,
        )

    def _reap_dead(self, pending: list[Shard]) -> list[Shard]:
        """Re-queue in-flight shards of workers that stopped heartbeating."""
        now = time.monotonic()
        for link in self._links.values():
            if link.alive and now - link.last_seen > self.heartbeat_timeout_s:
                self._bury(link)
        requeued = []
        for link in self._links.values():
            if not link.alive and link.busy_with is not None:
                requeued.append(link.busy_with)
                link.stats.redispatches += 1
                link.busy_with = None
        # Re-dispatched shards go to the front: they are the oldest work.
        return requeued + pending

    def _bury(self, link: _Link) -> None:
        if not link.alive:
            return
        link.alive = False
        link.stats.bytes_sent = link.channel.bytes_sent
        link.stats.bytes_received = link.channel.bytes_received
        link.channel.close()

    def _serve_artifact(self, link: _Link, key: str) -> None:
        artifact = (
            self._artifact_source.get(key)
            if self._artifact_source is not None
            else None
        )
        try:
            if artifact is None:
                link.channel.send({"type": "artifact", "key": key, "found": False})
            else:
                header, payload = pack_artifact(artifact)
                header.update({"type": "artifact", "key": key, "found": True})
                link.channel.send(header, (payload,))
        except OSError:
            self._bury(link)

    def _drain_stale(self) -> None:
        """Drop queued messages from abandoned runs (keep link-lost marks)."""
        backlog = []
        while True:
            try:
                item = self._incoming.get_nowait()
            except queue.Empty:
                break
            if item[1].get("type") in ("__link-lost__", "artifact-request"):
                backlog.append(item)
        for item in backlog:
            self._incoming.put(item)
