"""A loopback cluster for tests, benches, and the CI smoke job.

:class:`LocalCluster` forks *n* real :class:`~repro.cluster.Worker`
processes on ``127.0.0.1`` (each binds port 0 and reports its actual
address back through a queue), hands out a ready-made
:class:`~repro.cluster.ClusterBackend`, and can SIGKILL an individual
worker mid-shard — which is exactly how the heartbeat-timeout
re-dispatch path is exercised without a second host.

Workers are separate processes, so everything crosses the real TCP
protocol: function shipping, artifact pulls, heartbeats.  The only
difference from a multi-host deployment is the address family of the
loopback interface.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile

from repro.cluster.coordinator import ClusterBackend
from repro.cluster.protocol import ClusterError


def _worker_entry(
    ready_queue, cache_dir: str | None, max_memory_bytes: int, verbose: bool
) -> None:
    """Child-process entry: bind, report the bound address, serve."""
    from repro.cluster.worker import Worker

    worker = Worker(
        host="127.0.0.1",
        port=0,
        cache_dir=cache_dir,
        max_memory_bytes=max_memory_bytes,
        verbose=verbose,
    )
    ready_queue.put(worker.address)
    worker.serve_forever()


class LocalCluster:
    """*n* loopback worker processes plus a backend factory.

    Args:
        n_workers: worker processes to fork.
        cache_dir: optional base directory; worker *i* caches under
            ``cache_dir/worker-<i>`` (separate dirs model separate
            hosts). None keeps worker caches memory-only.
        max_memory_bytes: per-worker memory-tier cap.
        start_method: multiprocessing start method; None uses ``fork``
            where available (fast) and ``spawn`` elsewhere.
        verbose: pass ``--verbose``-style logging to every worker.

    Use as a context manager::

        with LocalCluster(n_workers=2) as cluster:
            backend = cluster.backend()
            ...
    """

    def __init__(
        self,
        n_workers: int = 2,
        cache_dir: str | None = None,
        max_memory_bytes: int = 256 * 1024 * 1024,
        start_method: str | None = None,
        verbose: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ClusterError("LocalCluster needs at least one worker")
        self.n_workers = n_workers
        self.cache_dir = cache_dir
        self.max_memory_bytes = max_memory_bytes
        self.verbose = verbose
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._context = multiprocessing.get_context(start_method)
        self._processes: list = []
        self.addresses: list[tuple[str, int]] = []

    def start(self, timeout_s: float = 30.0) -> list[tuple[str, int]]:
        """Fork the workers; returns their bound ``(host, port)`` pairs."""
        if self._processes:
            return self.addresses
        ready: multiprocessing.Queue = self._context.Queue()
        for index in range(self.n_workers):
            cache_dir = None
            if self.cache_dir is not None:
                cache_dir = os.path.join(self.cache_dir, f"worker-{index}")
            process = self._context.Process(
                target=_worker_entry,
                args=(ready, cache_dir, self.max_memory_bytes, self.verbose),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        try:
            self.addresses = [
                ready.get(timeout=timeout_s) for _ in range(self.n_workers)
            ]
        except Exception as exc:
            self.stop()
            raise ClusterError(
                f"local cluster workers did not come up in {timeout_s}s"
            ) from exc
        return self.addresses

    def backend(self, **overrides) -> ClusterBackend:
        """A :class:`ClusterBackend` wired to every live worker."""
        if not self.addresses:
            self.start()
        return ClusterBackend(self.addresses, **overrides)

    def kill(self, index: int) -> None:
        """SIGKILL worker *index* — no shutdown handshake, no cleanup.

        This is the fault-injection hook: the coordinator only learns
        of the death through heartbeat silence (or the connection
        reset), and must re-dispatch the shard that worker held.
        """
        process = self._processes[index]
        if process.pid is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10.0)

    def stop(self) -> None:
        """Terminate and reap every worker process (idempotent)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive() and process.pid is not None:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=5.0)
        self._processes = []
        self.addresses = []

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def ephemeral_cluster(n_workers: int = 2, **kwargs) -> LocalCluster:
    """A LocalCluster whose workers cache under a fresh temp directory."""
    base = tempfile.mkdtemp(prefix="repro-cluster-")
    return LocalCluster(n_workers=n_workers, cache_dir=base, **kwargs)
