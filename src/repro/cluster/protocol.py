"""The coordinator↔worker wire protocol: length-prefixed JSON + blobs.

One message is a small JSON header plus zero or more opaque binary
blobs, each length-prefixed::

    !I header_len | header JSON (UTF-8) | !I n_blobs | (!Q blob_len | blob)*

The header always carries a ``type`` field.  Message families:

=================  =========  ==========================================
type               direction  payload
=================  =========  ==========================================
hello              C → W      protocol/python tags, session id,
                              heartbeat interval
welcome            W → C      worker capabilities (python, pid, host)
reject             W → C      refusal reason (version mismatch, busy)
task               C → W      ``fn_id`` + blob 0 = shipped shard fn
dispatch           C → W      ``run_id``, ``fn_id``, ``shard_index`` +
                              blob 0 = pickled Shard
result             W → C      ``run_id``, ``shard_index``, timings,
                              stats + blob 0 = pickled shard output
shard-error        W → C      ``run_id``, ``shard_index``, error text
artifact-request   W → C      content ``key`` the worker is missing
artifact           C → W      ``key``, ``found`` + blob 0 = payload
heartbeat          W → C      liveness (flows during shard execution)
shutdown           C → W      end the session; worker re-listens
=================  =========  ==========================================

Framing is symmetric; :class:`Channel` wraps a connected socket with a
send lock (the worker's heartbeat thread and execution thread share
one socket) and byte counters for telemetry.  Artifacts cross the wire
as the same ``.npz`` payload + JSON sidecar pair the disk tier stores,
so payload hashing and verification carry over unchanged.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import threading

import numpy as np

from repro.cache.store import CachedArtifact
from repro.exceptions import ReproError

#: Bump on incompatible wire-format changes; exchanged in ``hello``.
PROTOCOL_VERSION = 1

#: Hard cap on a single header or blob (a corrupted length prefix must
#: not trigger a multi-gigabyte allocation).
_MAX_HEADER_BYTES = 16 * 1024 * 1024
_MAX_BLOB_BYTES = 4 * 1024 * 1024 * 1024

_HEADER_LEN = struct.Struct("!I")
_BLOB_COUNT = struct.Struct("!I")
_BLOB_LEN = struct.Struct("!Q")


class ClusterError(ReproError):
    """A cluster-backend failure (protocol, handshake, or all workers lost)."""


class ChannelClosed(ClusterError):
    """The peer closed the connection (EOF mid-message or before one)."""


class Channel:
    """One framed, thread-safe message channel over a connected socket.

    Args:
        sock: a connected TCP socket; the channel owns it.
        name: peer label used in error messages.
    """

    def __init__(self, sock: socket.socket, name: str = "peer") -> None:
        self.sock = sock
        self.name = name
        self.bytes_sent = 0
        self.bytes_received = 0
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, header: dict, blobs: tuple[bytes, ...] = ()) -> None:
        """Send one message (header dict + binary blobs), atomically."""
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        parts = [_HEADER_LEN.pack(len(encoded)), encoded, _BLOB_COUNT.pack(len(blobs))]
        for blob in blobs:
            parts.append(_BLOB_LEN.pack(len(blob)))
            parts.append(blob)
        frame = b"".join(parts)
        with self._send_lock:
            self.sock.sendall(frame)
            self.bytes_sent += len(frame)

    def recv(self) -> tuple[dict, tuple[bytes, ...]]:
        """Receive one message; raises :class:`ChannelClosed` on EOF."""
        header_len = _HEADER_LEN.unpack(self._recv_exactly(_HEADER_LEN.size))[0]
        if header_len > _MAX_HEADER_BYTES:
            raise ClusterError(
                f"{self.name}: header length {header_len} exceeds protocol cap"
            )
        try:
            header = json.loads(self._recv_exactly(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClusterError(f"{self.name}: undecodable header: {exc}") from exc
        n_blobs = _BLOB_COUNT.unpack(self._recv_exactly(_BLOB_COUNT.size))[0]
        blobs = []
        for _ in range(n_blobs):
            blob_len = _BLOB_LEN.unpack(self._recv_exactly(_BLOB_LEN.size))[0]
            if blob_len > _MAX_BLOB_BYTES:
                raise ClusterError(
                    f"{self.name}: blob length {blob_len} exceeds protocol cap"
                )
            blobs.append(self._recv_exactly(blob_len))
        return header, tuple(blobs)

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self.sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ChannelClosed(f"{self.name}: connection closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        self.bytes_received += n
        return b"".join(chunks)

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# -- artifact wire format ---------------------------------------------------


def pack_artifact(artifact: CachedArtifact) -> tuple[dict, bytes]:
    """Serialise an artifact to its wire form: (meta header, npz blob)."""
    buffer = io.BytesIO()
    np.savez(buffer, **artifact.arrays)
    return {"meta": artifact.meta, "names": sorted(artifact.arrays)}, buffer.getvalue()


def unpack_artifact(header: dict, blob: bytes) -> CachedArtifact:
    """Inverse of :func:`pack_artifact`."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
        arrays = {name: npz[name] for name in npz.files}
    if sorted(arrays) != header.get("names"):
        raise ClusterError(
            f"artifact arrays {sorted(arrays)} do not match shipped names "
            f"{header.get('names')}"
        )
    return CachedArtifact.build(arrays, header.get("meta") or {})
