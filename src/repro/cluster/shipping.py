"""Ship work by value: pickling that carries lambdas and closures.

Campaign shard functions are closures over experiment configuration —
arm lambdas, dataset builders, fused groups — that the standard
library pickler refuses (it serialises functions by qualified-name
reference only).  Inside one box the process-pool backend dodges this
with fork inheritance; a TCP boundary has no such trick, so this
module extends pickle with **by-value function serialisation**:

* a function whose qualified name resolves back to itself through a
  normal import (module-level functions) still pickles *by reference*
  — the worker imports it, nothing is shipped;
* a lambda, closure, or otherwise unimportable function ships its code
  object (``marshal``), defaults, closure cells, and — when its home
  module is importable worker-side — rebinds to that module's globals
  on arrival.  Functions from unimportable modules (test files, REPL)
  instead carry the module-level values their code references, pickled
  recursively through the same machinery.

``marshal`` byte code is only stable within one interpreter version,
so the cluster handshake (:mod:`repro.cluster.protocol`) refuses
coordinator/worker pairs with mismatched ``major.minor`` Pythons
before any work ships.

Everything a shipped function references must still be picklable under
these rules; anything that is not (locks, sockets, open files) raises
the usual :class:`pickle.PicklingError`, which the cluster backend's
pre-flight check converts into a warn-once serial fallback — the same
degradation contract as the spawn-context process pool.
"""

from __future__ import annotations

import builtins
import hashlib
import importlib
import io
import marshal
import pickle
import sys
import types



def _lookup_qualified(module: str, qualname: str):
    """Resolve ``module.qualname`` by import; None when unresolvable."""
    try:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except Exception:
        return None
    return obj


def _is_importable(fn: types.FunctionType) -> bool:
    """Whether the default by-reference pickling would work for *fn*."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or not qualname or "<" in qualname:
        return False
    return _lookup_qualified(module, qualname) is fn


def _module_importable(name: str | None) -> bool:
    if not name or name == "__main__":
        return False
    try:
        importlib.import_module(name)
    except Exception:
        return False
    return True


def _referenced_globals(code: types.CodeType, fn_globals: dict) -> dict:
    """The module-level values *code* (and nested code) actually uses."""
    captured: dict = {}
    stack = [code]
    while stack:
        current = stack.pop()
        for name in current.co_names:
            if name in fn_globals and name not in captured:
                captured[name] = fn_globals[name]
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return captured


def _rebuild_skeleton(
    code_bytes: bytes,
    module: str,
    name: str,
    qualname: str,
    n_cells: int,
    importable: bool,
) -> types.FunctionType:
    """Worker-side phase 1: the function shell, cells still empty.

    The shell exists (and is memoised by the unpickler) before its
    state arrives, so self-referential closures — a recursive function
    whose cell holds the function itself — deserialise without
    recursing, mirroring how they were serialised.
    """
    code = marshal.loads(code_bytes)
    if importable:
        fn_globals = importlib.import_module(module).__dict__
    else:
        fn_globals = {"__builtins__": builtins, "__name__": module or "__shipped__"}
    closure = tuple(types.CellType() for _ in range(n_cells))
    fn = types.FunctionType(code, fn_globals, name, None, closure or None)
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _apply_function_state(fn: types.FunctionType, state: tuple) -> None:
    """Worker-side phase 2: defaults, cell contents, captured globals."""
    defaults, kwdefaults, cells, captured = state
    fn.__defaults__ = defaults
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    for cell, (tag, value) in zip(fn.__closure__ or (), cells):
        if tag == "cell":  # "empty" cells stay empty (mid-definition)
            cell.cell_contents = value
    if captured is not None:
        for global_name, value in captured.items():
            fn.__globals__[global_name] = value


class ShipPickler(pickle.Pickler):
    """A pickler that serialises unimportable functions by value."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _is_importable(obj):
            module = getattr(obj, "__module__", None) or "__shipped__"
            importable = _module_importable(module)
            if importable:
                captured = None  # worker rebinds to the imported module
            else:
                captured = _referenced_globals(obj.__code__, obj.__globals__)
            cells = []
            for cell in obj.__closure__ or ():
                try:
                    cells.append(("cell", cell.cell_contents))
                except ValueError:  # empty cell (recursive definition)
                    cells.append(("empty", None))
            # Two-phase 6-tuple reduce: the skeleton is memoised before
            # its state pickles, so cycles through closure cells or
            # captured globals terminate.
            return (
                _rebuild_skeleton,
                (
                    marshal.dumps(obj.__code__),
                    module,
                    obj.__name__,
                    obj.__qualname__,
                    len(cells),
                    importable,
                ),
                (obj.__defaults__, obj.__kwdefaults__, tuple(cells), captured),
                None,
                None,
                _apply_function_state,
            )
        return NotImplemented


def dumps(obj: object) -> bytes:
    """Serialise *obj* for shipment, closures and lambdas included."""
    buffer = io.BytesIO()
    ShipPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def loads(blob: bytes) -> object:
    """Inverse of :func:`dumps` (plain pickle; reducers self-describe)."""
    return pickle.loads(blob)


def blob_id(blob: bytes) -> str:
    """Content address of a shipped blob (used to dedupe re-sends)."""
    return hashlib.sha256(blob).hexdigest()


def python_tag() -> str:
    """The interpreter compatibility tag exchanged in the handshake.

    ``marshal`` code objects only load under the same ``major.minor``
    interpreter, so that is exactly what the tag pins.
    """
    return f"cpython-{sys.version_info[0]}.{sys.version_info[1]}"
