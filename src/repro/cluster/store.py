"""Worker-side artifact resolution: local cache first, coordinator pull second.

A shipped shard function references its inputs by content key, never
by payload (see :meth:`repro.dag.scheduler._NodeShardFn.for_cluster`).
On the worker those keys resolve through a :class:`WorkerArtifactStore`:

1. the worker's **local** :class:`~repro.cache.ArtifactCache` — a
   memory LRU, plus a disk tier when ``repro worker --cache-dir`` is
   given, published with the same atomic ``os.replace`` discipline as
   every other store, so concurrent sessions and re-dispatched retries
   are harmless;
2. on a miss, a **JIT pull** from the coordinator's cache over the
   session channel (one ``artifact-request`` / ``artifact`` round
   trip), after which the payload is published locally — a warm worker
   therefore receives ~O(100 B) of key instead of the arrays.

Results flow back through the same store semantics: a worker that
computes a DAG node publishes the output artifact into its local cache
under the node's output key before shipping the arrays home, so later
waves scheduled onto the same worker hit locally and pull nothing.

The store a shard function should use is process-global state on the
worker (:func:`current_store` / :func:`activate_store`), mirroring how
pool workers receive their shard function through a module slot.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.cache.store import ArtifactCache, CachedArtifact
from repro.cluster.protocol import ClusterError

#: The active store in this worker process; None outside a cluster
#: worker (in-process backends resolve through preloaded artifacts and
#: never consult this slot).
_ACTIVE_STORE: "WorkerArtifactStore | None" = None


def current_store() -> "WorkerArtifactStore | None":
    """The store shard functions resolve keys through on this worker."""
    return _ACTIVE_STORE


def activate_store(store: "WorkerArtifactStore | None") -> None:
    """Install (or clear, with None) the worker's active store."""
    global _ACTIVE_STORE
    _ACTIVE_STORE = store


class WorkerArtifactStore:
    """Pull-through cache: local tiers backed by the coordinator's store.

    Args:
        cache: the worker's local artifact cache (memory, optionally
            disk when the worker was started with a cache directory).
        pull: ``key -> CachedArtifact | None`` fetching a missing
            artifact from the coordinator; None means the coordinator
            does not hold the key either.
    """

    def __init__(
        self,
        cache: ArtifactCache,
        pull: Callable[[str], CachedArtifact | None],
    ) -> None:
        self.cache = cache
        self._pull = pull
        self._lock = threading.Lock()
        self.local_hits = 0
        self.pulls = 0
        self.pulled_bytes = 0
        self.publishes = 0

    def fetch(self, key: str) -> CachedArtifact:
        """Resolve *key*: local tiers, then a coordinator pull."""
        artifact = self.cache.get(key)
        if artifact is not None:
            with self._lock:
                self.local_hits += 1
            return artifact
        artifact = self._pull(key)
        if artifact is None:
            raise ClusterError(
                f"artifact {key[:12]}… is neither in this worker's cache nor "
                f"in the coordinator's store"
            )
        with self._lock:
            self.pulls += 1
            self.pulled_bytes += artifact.nbytes
        self.cache.put(key, artifact)
        return artifact

    def publish(self, key: str, artifact: CachedArtifact) -> None:
        """Store a computed artifact locally (atomic, last writer wins)."""
        self.cache.put(key, artifact)
        with self._lock:
            self.publishes += 1

    def stats_delta(self) -> dict[str, int]:
        """Snapshot and reset the per-shard transfer counters."""
        with self._lock:
            delta = {
                "local_hits": self.local_hits,
                "pulls": self.pulls,
                "pulled_bytes": self.pulled_bytes,
                "publishes": self.publishes,
            }
            self.local_hits = self.pulls = self.pulled_bytes = self.publishes = 0
        return delta
