"""The remote side of the cluster: ``repro worker``.

A :class:`Worker` listens on one TCP port and serves one coordinator
session at a time (parallelism across a cluster comes from running
many workers, each executing one shard at a time — exactly one CPU's
worth of work per worker, like a process-pool slot with a network in
the middle).

Per session the worker runs three threads:

* the **receive loop** (session thread): decodes coordinator messages,
  caches shipped shard functions by content id, queues dispatches, and
  resolves in-flight artifact pulls;
* the **execution thread**: runs one dispatched shard at a time
  through the shipped shard function, resolving content-key inputs via
  the worker's :class:`~repro.cluster.store.WorkerArtifactStore`
  (local cache first, coordinator pull on miss), and ships each result
  home with its transfer stats;
* the **heartbeat thread**: emits liveness every
  ``heartbeat_interval_s`` — *including while a shard is executing* —
  so the coordinator can tell "busy on a long shard" from "dead".

A dropped connection (coordinator finished, crashed, or was killed)
ends the session; the worker discards session state, keeps its local
artifact cache (the next session pulls nothing it already holds), and
goes back to listening.
"""

from __future__ import annotations

import os
import queue
import socket
import sys
import threading
import time
import traceback

from repro.cache.store import ArtifactCache
from repro.cluster import shipping
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    Channel,
    ChannelClosed,
    ClusterError,
    unpack_artifact,
)
from repro.cluster.store import WorkerArtifactStore, activate_store

#: How long the execution thread waits for a requested artifact before
#: declaring the session wedged.
_PULL_TIMEOUT_S = 60.0

_SHUTDOWN = object()


class Worker:
    """One cluster worker: listens, handshakes, executes shards.

    Args:
        host: interface to bind (default loopback; bind 0.0.0.0
            explicitly for real multi-host runs).
        port: TCP port; 0 picks a free one (see :attr:`address`).
        cache_dir: optional local artifact-cache directory; without it
            the worker caches pulled artifacts in memory only.
        max_memory_bytes: local cache memory-tier cap.
        verbose: log session events to stderr.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        max_memory_bytes: int = 256 * 1024 * 1024,
        verbose: bool = False,
    ) -> None:
        self.cache = ArtifactCache(
            max_memory_bytes=max_memory_bytes, directory=cache_dir
        )
        self.verbose = verbose
        self.shards_run = 0
        self.sessions = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self._stop = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the worker is actually listening on."""
        return self._listener.getsockname()[:2]

    def _log(self, message: str) -> None:
        if self.verbose:
            host, port = self.address
            print(f"[worker {host}:{port}] {message}", file=sys.stderr, flush=True)

    def stop(self) -> None:
        """Stop the accept loop (the current session finishes first)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self, max_sessions: int | None = None) -> None:
        """Accept coordinator sessions until stopped.

        Args:
            max_sessions: exit after this many sessions (None = run
                until :meth:`stop`); ``repro worker --once`` uses 1.
        """
        self._log("listening")
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = Channel(conn, name=f"coordinator {peer[0]}:{peer[1]}")
            self.sessions += 1
            self._log(f"session {self.sessions} from {peer[0]}:{peer[1]}")
            try:
                self._serve_session(channel)
            except ChannelClosed:
                self._log("session ended (connection closed)")
            except Exception as exc:  # session-fatal, worker survives
                self._log(f"session failed: {type(exc).__name__}: {exc}")
            finally:
                channel.close()
            if max_sessions is not None and self.sessions >= max_sessions:
                break
        self.stop()

    # -- one coordinator session ------------------------------------------

    def _serve_session(self, channel: Channel) -> None:
        header, _ = channel.recv()
        if header.get("type") != "hello":
            channel.send({"type": "reject", "reason": "expected hello"})
            return
        problem = self._handshake_problem(header)
        if problem:
            channel.send({"type": "reject", "reason": problem})
            self._log(f"rejected session: {problem}")
            return
        channel.send(
            {
                "type": "welcome",
                "python": shipping.python_tag(),
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "cache_entries": self.cache.stats().n_memory_entries,
            }
        )
        heartbeat_interval = float(header.get("heartbeat_interval_s", 1.0))

        session_over = threading.Event()
        dispatches: queue.Queue = queue.Queue()
        tasks: dict[str, object] = {}
        pull_slot: dict[str, object] = {}
        pull_ready = threading.Condition()

        def pull(key: str):
            with pull_ready:
                channel.send({"type": "artifact-request", "key": key})
                deadline = time.monotonic() + _PULL_TIMEOUT_S
                while key not in pull_slot:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or session_over.is_set():
                        raise ClusterError(
                            f"timed out pulling artifact {key[:12]}… from "
                            f"the coordinator"
                        )
                    pull_ready.wait(timeout=min(remaining, 1.0))
                return pull_slot.pop(key)

        store = WorkerArtifactStore(self.cache, pull)

        def heartbeat_loop() -> None:
            while not session_over.wait(heartbeat_interval):
                try:
                    channel.send({"type": "heartbeat"})
                except OSError:
                    return

        def execution_loop() -> None:
            activate_store(store)
            try:
                while True:
                    item = dispatches.get()
                    if item is _SHUTDOWN:
                        return
                    self._run_shard(channel, tasks, store, *item)
            finally:
                activate_store(None)

        threads = [
            threading.Thread(target=heartbeat_loop, daemon=True),
            threading.Thread(target=execution_loop, daemon=True),
        ]
        for thread in threads:
            thread.start()
        try:
            while True:
                header, blobs = channel.recv()
                kind = header.get("type")
                if kind == "task":
                    tasks[header["fn_id"]] = self._load_task(blobs[0])
                elif kind == "dispatch":
                    dispatches.put(
                        (header["run_id"], header["fn_id"], blobs[0])
                    )
                elif kind == "artifact":
                    with pull_ready:
                        pull_slot[header["key"]] = (
                            unpack_artifact(header, blobs[0])
                            if header.get("found")
                            else None
                        )
                        pull_ready.notify_all()
                elif kind == "shutdown":
                    self._log("shutdown requested")
                    return
                else:
                    raise ClusterError(f"unexpected message type {kind!r}")
        finally:
            session_over.set()
            dispatches.put(_SHUTDOWN)
            with pull_ready:
                pull_ready.notify_all()

    @staticmethod
    def _handshake_problem(hello: dict) -> str | None:
        if hello.get("protocol") != PROTOCOL_VERSION:
            return (
                f"protocol mismatch: coordinator speaks "
                f"{hello.get('protocol')}, worker speaks {PROTOCOL_VERSION}"
            )
        if hello.get("python") != shipping.python_tag():
            return (
                f"python mismatch: coordinator runs {hello.get('python')}, "
                f"worker runs {shipping.python_tag()} (by-value shipped "
                f"functions require identical interpreter versions)"
            )
        return None

    @staticmethod
    def _load_task(blob: bytes) -> object:
        """Unpickle a shipped shard function; failures surface at dispatch."""
        try:
            return shipping.loads(blob)
        except Exception as exc:  # report per-shard, keep the session alive
            return ClusterError(
                f"could not load shipped shard function: "
                f"{type(exc).__name__}: {exc}"
            )

    def _run_shard(
        self,
        channel: Channel,
        tasks: dict,
        store: WorkerArtifactStore,
        run_id: int,
        fn_id: str,
        shard_blob: bytes,
    ) -> None:
        try:
            shard_fn = tasks.get(fn_id)
            if shard_fn is None:
                raise ClusterError(f"dispatch references unknown task {fn_id[:12]}…")
            if isinstance(shard_fn, Exception):
                raise shard_fn
            shard = shipping.loads(shard_blob)
            start = time.perf_counter()
            out = shard_fn(shard)
            elapsed = time.perf_counter() - start
            payload = shipping.dumps(out)
        except Exception as exc:
            try:
                channel.send(
                    {
                        "type": "shard-error",
                        "run_id": run_id,
                        "shard_index": self._shard_index(shard_blob),
                        "error": f"{type(exc).__name__}: {exc}",
                        "details": traceback.format_exc(),
                    }
                )
            except OSError:
                pass
            return
        self.shards_run += 1
        stats = store.stats_delta()
        try:
            channel.send(
                {
                    "type": "result",
                    "run_id": run_id,
                    "shard_index": shard.index,
                    "elapsed_s": elapsed,
                    "stats": stats,
                },
                (payload,),
            )
        except OSError:
            pass  # session died; the coordinator will re-dispatch

    @staticmethod
    def _shard_index(shard_blob: bytes) -> int:
        try:
            return shipping.loads(shard_blob).index
        except Exception:
            return -1
