"""Frozen configuration dataclasses for the preprocessing algorithms.

Every tunable that the paper exposes is collected here so that experiments
and applications share a single validated source of truth:

* ``upsilon`` (Υ) — number of temporal/spatial neighbours consulted per
  pixel; must be even and positive (§3.3).  The paper finds Υ = 4 optimal
  for both benchmarks (§3.3) with dataset-dependent exceptions (§6).
* ``sensitivity`` (Λ) — 0…100 scaling of the algorithm's aggressiveness
  (§3.2).  Λ = 0 degrades to a FITS-header sanity analysis only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


def _check_upsilon(upsilon: int) -> None:
    if not isinstance(upsilon, int) or isinstance(upsilon, bool):
        raise ConfigurationError(f"upsilon must be an int, got {type(upsilon).__name__}")
    if upsilon <= 0 or upsilon % 2 != 0:
        raise ConfigurationError(f"upsilon must be a positive even integer, got {upsilon}")


def _check_sensitivity(sensitivity: float) -> None:
    if not 0 <= sensitivity <= 100:
        raise ConfigurationError(f"sensitivity must be within [0, 100], got {sensitivity}")


#: Preprocessing strategies selectable through :class:`NGSTConfig`.
#: ``fixed`` is Algorithm 1 exactly as the paper states it; ``adaptive``
#: re-weights the pruning thresholds per pairing way by an incoherence
#: score (Alagöz-style score-weighted voting); ``selective`` routes only
#: high-sensitivity regions through the full pipeline (Wang et al.-style
#: application-aware protection).  See :mod:`repro.core.strategies`.
STRATEGY_CHOICES = ("fixed", "adaptive", "selective")


def _check_probability(p: float, name: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {p}")


@dataclass(frozen=True)
class NGSTConfig:
    """Parameters of ``Algo_NGST`` (Algorithm 1).

    Attributes:
        upsilon: Υ, the (even) number of neighbours each pixel consults,
            Υ/2 forward and Υ/2 backward in the temporal stack.
        sensitivity: Λ ∈ [0, 100]; higher values widen bit-window B and
            admit more voters (more corrections, more false alarms).
        per_coordinate_thresholds: derive the dynamic V_val thresholds per
            image coordinate (the fully dynamic behaviour of §3.3).  When
            False a single global threshold per pairing way is used.
        strategy: one of :data:`STRATEGY_CHOICES`.  ``fixed`` (default)
            runs Algorithm 1 unchanged; ``adaptive`` and ``selective``
            dispatch through :mod:`repro.core.strategies`.
        coherence_beta: β ≥ 0, gain of the incoherence-score threshold
            shift used by the ``adaptive`` strategy.  β = 0 disables the
            adjustment entirely: the adaptive path then produces output
            byte-identical to ``fixed`` (the degeneracy the equivalence
            harness gates).
        coherence_prune_ratio: incoherence score at or above which an
            entire pairing way is pruned (abstains) at a column.  Scores
            are normalised so a coherent way sits near 1.0; 0 disables
            pruning.  Must be 0 or > 1.
        margin: border width (in pixels, every spatial axis) classified
            low-sensitivity by the ``selective`` strategy's region map.
            0 = no margin region.
        header_rows: leading rows along the first spatial axis that are
            always fully protected (telemetry/header region), overriding
            ``margin``/``science_fast``.
        science_fast: route the interior science region through the cheap
            unanimous-vote path too (protect only the header rows).  With
            the defaults (margin=0, header_rows=0, science_fast=False)
            every pixel is high-sensitivity and ``selective`` degenerates
            byte-identically to ``fixed``.
    """

    upsilon: int = 4
    sensitivity: float = 50.0
    per_coordinate_thresholds: bool = True
    strategy: str = "fixed"
    coherence_beta: float = 1.0
    coherence_prune_ratio: float = 0.0
    margin: int = 0
    header_rows: int = 0
    science_fast: bool = False

    def __post_init__(self) -> None:
        _check_upsilon(self.upsilon)
        _check_sensitivity(self.sensitivity)
        if self.strategy not in STRATEGY_CHOICES:
            raise ConfigurationError(
                f"strategy must be one of {STRATEGY_CHOICES}, got {self.strategy!r}"
            )
        if not self.coherence_beta >= 0:
            raise ConfigurationError(
                f"coherence_beta must be >= 0, got {self.coherence_beta}"
            )
        if self.coherence_prune_ratio != 0 and not self.coherence_prune_ratio > 1:
            raise ConfigurationError(
                "coherence_prune_ratio must be 0 (off) or > 1, "
                f"got {self.coherence_prune_ratio}"
            )
        if self.margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {self.margin}")
        if self.header_rows < 0:
            raise ConfigurationError(
                f"header_rows must be >= 0, got {self.header_rows}"
            )

    @property
    def is_default_strategy(self) -> bool:
        """True when every strategy field still has its default value.

        Used by :meth:`repro.stream.pipeline.VoterStage.describe` to keep
        checkpoint fingerprints of pre-strategy pipelines unchanged.
        """
        return (
            self.strategy == "fixed"
            and self.coherence_beta == 1.0
            and self.coherence_prune_ratio == 0.0
            and self.margin == 0
            and self.header_rows == 0
            and not self.science_fast
        )

    @property
    def half_upsilon(self) -> int:
        """Υ/2 — neighbours consulted in each direction."""
        return self.upsilon // 2


@dataclass(frozen=True)
class OTISBounds:
    """Absolute physical bounds for OTIS radiance data (§7.2, hypothesis 2).

    Values outside ``[lower, upper]`` are theoretically impossible for the
    sensed physical quantity and are outright identified as faults.  The
    optional geographic bounds tighten the window further ("tropical" or
    "arctic" cut-offs in the paper's terminology).
    """

    lower: float = 0.0
    upper: float = 200.0
    geographic_lower: float | None = None
    geographic_upper: float | None = None

    def __post_init__(self) -> None:
        if not self.lower < self.upper:
            raise ConfigurationError(
                f"lower bound {self.lower} must be < upper bound {self.upper}"
            )
        lo, hi = self.effective()
        if not lo < hi:
            raise ConfigurationError(
                f"geographic bounds [{lo}, {hi}] are empty or inverted"
            )

    def effective(self) -> tuple[float, float]:
        """The tightest applicable (lower, upper) pair."""
        lo = self.lower if self.geographic_lower is None else max(self.lower, self.geographic_lower)
        hi = self.upper if self.geographic_upper is None else min(self.upper, self.geographic_upper)
        return lo, hi


@dataclass(frozen=True)
class OTISConfig:
    """Parameters of ``Algo_OTIS`` (§7.2–7.3).

    OTIS lacks temporal redundancy, so the voter neighbourhood is spatial
    (2-D).  False alarms are costlier than for NGST, hence the relaxed
    default sensitivity and the trend-exemption machinery.

    Attributes:
        upsilon: number of spatial neighbours consulted (4 = the von
            Neumann neighbourhood; 8 adds diagonals).
        sensitivity: Λ ∈ [0, 100], as for NGST but applied to spatial
            XOR statistics of the float32 bit patterns.
        bounds: absolute/geographic physical bounds; out-of-bounds pixels
            are unconditionally repaired (hypothesis 2).
        trend_exemption: when True, deviant pixels whose neighbourhood
            shows the same deviation trend are treated as genuine natural
            phenomena and left untouched (hypothesis 1).
        trend_window: half-width of the square neighbourhood used for the
            trend test.
        dn_scale: physical value per DN count for uint16 fixed-point
            storage (full scale = 65535 × dn_scale ≈ 262, deliberately
            wider than the default physical upper bound of 200 so that
            flips into the physically impossible headroom are caught by
            the bounds screen).
        tile: side of the square tiles over which the dynamic thresholds
            are derived, making the bounds *regional*: quiet regions get
            tight thresholds, turbulent regions loose ones (§3.3's
            dynamic behaviour applied spatially).  0 = one global
            threshold per way.
        iterations: voter-stage passes; corrected neighbours sharpen the
            vote for remaining faults, so a second pass catches flips
            the first could not confirm (diminishing returns beyond 2–3).
    """

    upsilon: int = 4
    sensitivity: float = 60.0
    bounds: OTISBounds = field(default_factory=OTISBounds)
    trend_exemption: bool = True
    trend_window: int = 1
    dn_scale: float = 0.004
    tile: int = 16
    iterations: int = 2

    def __post_init__(self) -> None:
        if self.upsilon not in (4, 8):
            raise ConfigurationError(
                f"OTIS upsilon must be 4 or 8 (2-D neighbourhood), got {self.upsilon}"
            )
        _check_sensitivity(self.sensitivity)
        if self.trend_window < 1:
            raise ConfigurationError(
                f"trend_window must be >= 1, got {self.trend_window}"
            )
        if self.dn_scale <= 0:
            raise ConfigurationError(
                f"dn_scale must be > 0, got {self.dn_scale}"
            )
        if self.tile < 0:
            raise ConfigurationError(f"tile must be >= 0, got {self.tile}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )


@dataclass(frozen=True)
class UncorrelatedFaultConfig:
    """The §2.2.2 fault model: i.i.d. bit-flips with probability Γ₀."""

    gamma0: float = 0.01

    def __post_init__(self) -> None:
        _check_probability(self.gamma0, "gamma0")


@dataclass(frozen=True)
class CorrelatedFaultConfig:
    """The §2.2.3 fault model: run-length correlated flips, Eq. (2).

    Attributes:
        gamma_ini: Γ_ini, the base probability with which a fresh run of
            flips initiates.  Must be < 0.5 for the geometric series bound
            Γ_ini/(1-Γ_ini) to stay below 1.
        max_run_terms: truncation of the Eq. (2) series; the terms decay
            geometrically so a small cap loses nothing measurable.
    """

    gamma_ini: float = 0.05
    max_run_terms: int = 64

    def __post_init__(self) -> None:
        _check_probability(self.gamma_ini, "gamma_ini")
        if self.gamma_ini >= 0.5:
            raise ConfigurationError(
                f"gamma_ini must be < 0.5 for Eq. (2) to converge, got {self.gamma_ini}"
            )
        if self.max_run_terms < 1:
            raise ConfigurationError(
                f"max_run_terms must be >= 1, got {self.max_run_terms}"
            )


@dataclass(frozen=True)
class NGSTDatasetConfig:
    """Parameters of the Eq. (1) Gaussian-random-walk dataset generator.

    Π(i+1) = Π(i) + Θᵢ with Θᵢ ~ N(0, σ).  Values are 16-bit unsigned;
    overflows are truncated to the representable maximum as in §6.

    The default σ = 25 is our calibration of "σ representative of the
    simulated datasets from the NGST Mission Simulator": consecutive
    readouts of one baseline sample the same scene within short
    intervals, so natural variation is read-noise-scale.  At this σ the
    preprocessing gains land in the 50–1000× band Figure 2 reports;
    σ = 250 and σ = 8000 reappear in the Figure 6 turbulence sweep.
    """

    n_variants: int = 64
    sigma: float = 25.0
    initial_value: int = 27000
    #: Detector background level: "there will always be some background
    #: noise present at the detector causing non-zero reads" (§5), so
    #: walks never reach zero and relative error stays well-defined.
    background_floor: int = 32

    def __post_init__(self) -> None:
        if self.n_variants < 2:
            raise ConfigurationError(
                f"n_variants must be >= 2, got {self.n_variants}"
            )
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")
        if not 0 <= self.initial_value <= 0xFFFF:
            raise ConfigurationError(
                f"initial_value must fit in 16 bits, got {self.initial_value}"
            )
        if not 0 <= self.background_floor <= self.initial_value:
            raise ConfigurationError(
                f"background_floor must be within [0, initial_value], "
                f"got {self.background_floor}"
            )
