"""Core contribution of the paper: dynamic bit-window preprocessing.

This subpackage implements Algorithm 1 (``Algo_NGST``), its OTIS-tuned
variant (``Algo_OTIS``), and the supporting machinery: bit manipulation
primitives, the Υ-way XOR voter matrix, the sensitivity (Λ) mapping, and
the A/B/C bit-window masks.
"""

from repro.core.algo_ngst import AlgoNGST, NGSTResult
from repro.core.algo_otis import AlgoOTIS, OTISResult
from repro.core.autotune import AutotuneResult, autotune_sensitivity
from repro.core.preprocessor import NGSTPreprocessor, OTISPreprocessor
from repro.core.sensitivity import phi_rank
from repro.core.strategies import (
    AdaptiveVotingStrategy,
    FixedStrategy,
    SelectiveProtectionStrategy,
    adaptive_thresholds,
    incoherence_scores,
    region_mask,
    resolve_strategy,
    strategy_arm_config,
)
from repro.core.voter import VoterMatrix
from repro.core.windows import BitWindows

__all__ = [
    "AdaptiveVotingStrategy",
    "AlgoNGST",
    "AlgoOTIS",
    "AutotuneResult",
    "BitWindows",
    "FixedStrategy",
    "NGSTPreprocessor",
    "NGSTResult",
    "OTISPreprocessor",
    "OTISResult",
    "SelectiveProtectionStrategy",
    "VoterMatrix",
    "adaptive_thresholds",
    "autotune_sensitivity",
    "incoherence_scores",
    "phi_rank",
    "region_mask",
    "resolve_strategy",
    "strategy_arm_config",
]
