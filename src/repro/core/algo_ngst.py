"""``Algo_NGST`` — the dynamic preprocessing algorithm of the paper
(Algorithm 1), operating on temporally redundant 16-bit detector stacks.

The algorithm is *entirely dynamic* in its criteria for identifying
faulty pixels: the pruning thresholds, and hence the bit-window
boundaries, are derived from the statistics of the dataset being
processed (per image coordinate when the stack carries spatial axes),
so quiet regions get tight bounds and turbulent regions loose ones.

Pipeline per Algorithm 1:

1. Build the Υ-way XOR voter matrix (``repro.core.voter``).
2. Prune it with the Φ(Λ)-ranked ``V_val`` thresholds.
3. Derive the LSB/MSB bit-window masks from the thresholds.
4. Combine unanimity (window B) and the GRT Υ−1 vote (window A) into a
   correction vector; XOR it into the damaged pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NGSTConfig
from repro.core import bitops
from repro.core.voter import VoterMatrix
from repro.core.windows import BitWindows
from repro.exceptions import ConfigurationError, DataFormatError


@dataclass(frozen=True)
class NGSTResult:
    """Outcome of one ``Algo_NGST`` run.

    Attributes:
        corrected: the repaired pixel stack, same shape/dtype as the input.
        correction_vectors: per-pixel XOR masks that were applied; zero
            where the pixel was judged undamaged.
        windows: the dynamic bit-window masks used.
        n_pixels_corrected: number of pixels with a nonzero correction.
        n_bits_corrected: total number of bits flipped back.
    """

    corrected: np.ndarray
    correction_vectors: np.ndarray
    windows: BitWindows
    n_pixels_corrected: int
    n_bits_corrected: int


def correct_with_thresholds(
    pixels: np.ndarray,
    cfg: NGSTConfig,
    matrix: VoterMatrix,
    thresholds: np.ndarray,
) -> NGSTResult:
    """Steps 3–4 of Algorithm 1 given a (possibly adjusted) threshold tensor.

    This is the shared correction core: the ``fixed`` path feeds it the
    Φ(Λ)-ranked thresholds unchanged, while the adaptive strategy feeds
    it per-way/per-column thresholds rescaled by incoherence score.
    ``thresholds`` must have shape ``(Υ,)`` or ``(Υ,) + coord shape`` and
    contain powers of two (or 0 / 2**nbits at the extremes), as
    :meth:`BitWindows.from_thresholds` requires.
    """
    nbits = bitops.bit_width(pixels.dtype)
    windows = BitWindows.from_thresholds(thresholds, nbits)

    n = matrix.n_variants
    n_coords = int(np.prod(pixels.shape[1:], dtype=np.int64)) if pixels.ndim > 1 else 1
    xors = matrix.xors.reshape(cfg.upsilon, n, n_coords)
    thr = np.asarray(thresholds, dtype=np.uint64).reshape(cfg.upsilon, 1, -1)
    keep = xors.astype(np.uint64) > thr

    corr = np.zeros(n * n_coords, dtype=np.uint64)
    active = keep.any(axis=0).reshape(-1)
    active_idx = np.nonzero(active)[0]
    if active_idx.size:
        flat_xors = xors.reshape(cfg.upsilon, -1)
        flat_keep = keep.reshape(cfg.upsilon, -1)
        voters = np.where(
            flat_keep[:, active_idx], flat_xors[:, active_idx], 0
        ).astype(np.uint64)
        unanimous = VoterMatrix.unanimous(voters)
        grt = VoterMatrix.grt(voters)
        lsb = np.asarray(windows.lsb_mask, dtype=np.uint64).reshape(-1)
        msb = np.asarray(windows.msb_mask, dtype=np.uint64).reshape(-1)
        coord_idx = active_idx % n_coords if lsb.size > 1 else np.zeros_like(active_idx)
        corr[active_idx] = (
            unanimous | (grt & msb[coord_idx])
        ) & lsb[coord_idx]
    corr = corr.reshape(pixels.shape).astype(pixels.dtype)
    corrected = np.bitwise_xor(pixels, corr)
    return NGSTResult(
        corrected=corrected,
        correction_vectors=corr,
        windows=windows,
        n_pixels_corrected=int(np.count_nonzero(corr)),
        n_bits_corrected=int(bitops.popcount(corr).sum()),
    )


def run_fixed(pixels: np.ndarray, cfg: NGSTConfig) -> NGSTResult:
    """Algorithm 1 exactly as the paper states it (the ``fixed`` strategy)."""
    matrix = VoterMatrix(pixels, cfg.upsilon)
    thresholds = matrix.thresholds(
        cfg.sensitivity, per_coordinate=cfg.per_coordinate_thresholds
    )
    return correct_with_thresholds(pixels, cfg, matrix, thresholds)


class AlgoNGST:
    """Callable implementation of Algorithm 1.

    Example:
        >>> import numpy as np
        >>> from repro.config import NGSTConfig
        >>> stack = np.full(16, 27000, dtype=np.uint16)
        >>> damaged = stack.copy(); damaged[3] ^= 1 << 14
        >>> result = AlgoNGST(NGSTConfig(upsilon=4, sensitivity=80))(damaged)
        >>> int(result.corrected[3])
        27000
    """

    def __init__(self, config: NGSTConfig | None = None) -> None:
        self.config = config or NGSTConfig()
        if self.config.sensitivity == 0:
            raise ConfigurationError(
                "Algo_NGST requires sensitivity > 0; at null sensitivity use "
                "NGSTPreprocessor, which degrades to header sanity analysis"
            )

    def __call__(self, pixels: np.ndarray) -> NGSTResult:
        """Preprocess a temporal stack of shape ``(N, ...)`` uint16 pixels.

        The statistical pre-analysis (voter matrix and thresholds) costs
        the same at every Λ, but the correction stage iterates only over
        *active* pixels — those with at least one surviving voter — so,
        exactly as §3.2 describes, the execution overhead grows with the
        sensitivity: a higher Λ lowers the thresholds and admits more
        candidates into the expensive voting stage.
        """
        bitops.require_unsigned(pixels, "pixels")
        if pixels.ndim < 1 or pixels.shape[0] < 2:
            raise DataFormatError(
                "pixels must have a leading temporal axis with >= 2 variants"
            )
        cfg = self.config
        if cfg.strategy != "fixed":
            # Late import: strategies imports run_fixed from this module.
            from repro.core.strategies import resolve_strategy

            return resolve_strategy(cfg).run(pixels, cfg)
        return run_fixed(pixels, cfg)
