"""``Algo_OTIS`` — the preprocessing concept fine-tuned for the OTIS
thermal imaging spectrometer (§7).

OTIS has no temporal redundancy (a single frame per field of view), so
the voter neighbourhood is *spatial*: each stored radiance word is
bit-compared with its Υ in-plane neighbours.  Two OTIS-specific rules
(§7.2) temper the scheme against false alarms, which would otherwise be
far more damaging than for NGST:

1. **Trend exemption** — a deviant pixel whose neighbourhood shares the
   deviation is a genuine natural phenomenon (geyser, eruption) and must
   be retained; only isolated non-conformance is treated as a fault.
2. **Absolute bounds** — any value outside the theoretical physical
   limits (optionally tightened by geographic "tropical"/"arctic"
   cut-offs) is outright a fault and repaired unconditionally.

Two storage representations are supported (see DESIGN.md §2):

* ``uint16`` — the detector's fixed-point DN encoding, the primary
  path for the paper's experiments (it reproduces the §8 error levels);
  DN words are converted to physical values via ``config.dn_scale``.
* ``float32`` — IEEE-754 bit patterns, voting over 32-bit windows; the
  literal reading of §7.1's storage format, kept for ablations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.config import OTISConfig
from repro.core import bitops
from repro.core.voter import _leave_one_out_union
from repro.core.windows import BitWindows
from repro.exceptions import DataFormatError

#: Neighbour offsets (drow, dcol) for the two supported neighbourhoods.
_OFFSETS_4 = ((-1, 0), (1, 0), (0, -1), (0, 1))
_OFFSETS_8 = _OFFSETS_4 + ((-1, -1), (-1, 1), (1, -1), (1, 1))

#: Λ → quantile mapping for the spatial thresholds.  §7.2: OTIS "needs
#: to relax the dynamic threshold that is set for identifying outliers",
#: so the usable range reaches much deeper into the XOR statistics than
#: the NGST mapping — down towards the median, where the statistic is
#: robust even when a large fraction of pixels carry flips.  Λ = 0 is
#: the bounds-screen-only degenerate case; Λ = 100 reads the 80th
#: percentile from the bottom.
_FRACTION_AT_0 = 0.20
_FRACTION_AT_100 = 0.80


def _shifted(field: np.ndarray, drow: int, dcol: int) -> np.ndarray:
    """The field translated by (drow, dcol) with reflected borders."""
    padded = np.pad(field, 1, mode="reflect")
    return padded[1 + drow : 1 + drow + field.shape[0], 1 + dcol : 1 + dcol + field.shape[1]]


def spatial_median(field: np.ndarray) -> np.ndarray:
    """Median of each pixel's 8-neighbour ring (centre excluded)."""
    stacked = np.stack([_shifted(field, dr, dc) for dr, dc in _OFFSETS_8])
    return np.median(stacked.astype(np.float64), axis=0)


@dataclass(frozen=True)
class OTISResult:
    """Outcome of one ``Algo_OTIS`` run.

    Attributes:
        corrected: repaired field, same dtype/shape as the input.
        n_bounds_repairs: pixels replaced because they violated the
            absolute physical bounds (or were non-finite).
        n_bit_corrections: pixels repaired by the bit-voter stage.
        n_trend_exemptions: flagged pixels spared by the trend rule.
        windows: the dynamic bit windows used by the voter stage.
    """

    corrected: np.ndarray
    n_bounds_repairs: int
    n_bit_corrections: int
    n_trend_exemptions: int
    windows: BitWindows


class AlgoOTIS:
    """Spatial-locality preprocessing for OTIS radiance fields.

    Accepts a 2-D field or a 3-D ``(bands, rows, cols)`` cube of either
    ``uint16`` DN words or ``float32`` values; a cube is processed band
    by band (the spatial locality model, which the paper found superior
    to spectral pairing).
    """

    def __init__(self, config: OTISConfig | None = None) -> None:
        self.config = config or OTISConfig()

    def __call__(self, field: np.ndarray) -> OTISResult:
        field = np.asarray(field)
        if field.dtype not in (np.float32, np.uint16):
            raise DataFormatError(
                f"OTIS data must be float32 or uint16 DN, got {field.dtype}"
            )
        if field.ndim == 3:
            return self._process_cube(field)
        if field.ndim != 2:
            raise DataFormatError(
                f"expected a 2-D band or 3-D cube, got {field.ndim} dimensions"
            )
        if min(field.shape) < 3:
            raise DataFormatError(
                f"band must be at least 3x3 for spatial voting, got {field.shape}"
            )
        return self._process_band(field)

    def _process_cube(self, cube: np.ndarray) -> OTISResult:
        bands = []
        bounds_total = bits_total = trend_total = 0
        windows = None
        for band in cube:
            result = self._process_band(band)
            bands.append(result.corrected)
            bounds_total += result.n_bounds_repairs
            bits_total += result.n_bit_corrections
            trend_total += result.n_trend_exemptions
            windows = result.windows
        return OTISResult(
            corrected=np.stack(bands),
            n_bounds_repairs=bounds_total,
            n_bit_corrections=bits_total,
            n_trend_exemptions=trend_total,
            windows=windows,
        )

    # -- representation shims ------------------------------------------------

    def _to_values(self, words: np.ndarray) -> np.ndarray:
        """Physical values (float64) of the stored words."""
        if words.dtype == np.uint16:
            return words.astype(np.float64) * self.config.dn_scale
        return words.astype(np.float64)

    def _from_values(self, values: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Encode physical values back into the storage dtype."""
        if np.dtype(dtype) == np.uint16:
            dn = np.rint(values / self.config.dn_scale)
            return np.clip(dn, 0, np.iinfo(np.uint16).max).astype(np.uint16)
        return values.astype(np.float32)

    # -- core ------------------------------------------------------------------

    def _process_band(self, band: np.ndarray) -> OTISResult:
        cfg = self.config
        work = band.copy()
        values = self._to_values(work)

        # Stage 1 — absolute bounds (hypothesis 2): out-of-bounds or
        # non-finite values are faults; repair from the spatial median of
        # the neighbourhood, clipped into bounds as a last resort.
        lo, hi = cfg.bounds.effective()
        invalid = ~np.isfinite(values) | (values < lo) | (values > hi)
        n_bounds = int(np.count_nonzero(invalid))
        if n_bounds:
            safe = np.where(invalid, np.nan, values)
            fill = np.clip(_nan_spatial_median(safe), lo, hi)
            values = np.where(invalid, fill, values)
            work = self._from_values(values, band.dtype)

        nbits = 32 if band.dtype == np.float32 else 16
        if cfg.sensitivity == 0:
            return OTISResult(
                corrected=work,
                n_bounds_repairs=n_bounds,
                n_bit_corrections=0,
                n_trend_exemptions=0,
                windows=BitWindows(
                    msb_mask=np.uint64(0), lsb_mask=np.uint64(0), nbits=nbits
                ),
            )

        # Stages 2–3, iterated: spatial bit voting on the stored bit
        # patterns, then the trend exemption (hypothesis 1).  Corrected
        # neighbours sharpen the vote for faults the first pass could not
        # confirm, so a second pass strictly helps; iteration stops early
        # once a pass makes no change.
        n_bits = 0
        n_exempt = 0
        windows = None
        for _ in range(cfg.iterations):
            if band.dtype == np.float32:
                bits = bitops.float32_to_bits(np.ascontiguousarray(work))
            else:
                bits = work
            offsets = _OFFSETS_4 if cfg.upsilon == 4 else _OFFSETS_8
            voters = np.stack(
                [np.bitwise_xor(bits, _shifted(bits, dr, dc)) for dr, dc in offsets]
            )
            thresholds = self._way_thresholds(voters)
            expanded = (
                thresholds
                if thresholds.ndim == voters.ndim
                else thresholds.reshape((-1,) + (1,) * bits.ndim)
            )
            pruned = np.where(voters.astype(np.uint64) > expanded, voters, 0).astype(
                bits.dtype
            )
            windows = BitWindows.from_thresholds(thresholds, nbits=nbits)
            unanimous = _and_reduce(pruned)
            grt = _grt(pruned)
            corr = windows.combine(unanimous, grt).astype(bits.dtype)

            if cfg.trend_exemption:
                flagged = corr != 0
                if np.any(flagged):
                    exempt = flagged & _trend_mask(values, cfg.trend_window)
                    n_exempt += int(np.count_nonzero(exempt))
                    corr = np.where(exempt, np.zeros((), dtype=bits.dtype), corr)

            if not np.any(corr):
                break
            repaired_bits = np.bitwise_xor(bits, corr)
            if band.dtype == np.float32:
                repaired = bitops.bits_to_float32(repaired_bits)
            else:
                repaired = repaired_bits
            repaired_values = self._to_values(repaired)
            # A correction must land inside the physical bounds; otherwise
            # the voter guessed wrong and the spatial median is the safer
            # repair.
            bad = (corr != 0) & (
                ~np.isfinite(repaired_values)
                | (repaired_values < lo)
                | (repaired_values > hi)
            )
            if np.any(bad):
                fill = np.clip(spatial_median(values), lo, hi)
                repaired_values = np.where(bad, fill, repaired_values)
                repaired = self._from_values(repaired_values, band.dtype)
            n_bits += int(np.count_nonzero(corr))
            work = repaired.astype(band.dtype)
            values = self._to_values(work)
        return OTISResult(
            corrected=work,
            n_bounds_repairs=n_bounds,
            n_bit_corrections=n_bits,
            n_trend_exemptions=n_exempt,
            windows=windows,
        )

    def _fraction(self) -> float:
        """Λ mapped to the from-the-top quantile of XOR magnitudes."""
        lam = self.config.sensitivity
        return _FRACTION_AT_0 + (lam / 100.0) * (_FRACTION_AT_100 - _FRACTION_AT_0)

    def _way_thresholds(self, voters: np.ndarray) -> np.ndarray:
        """Regional per-way ``V_val`` thresholds for a spatial field.

        With tiling enabled the Φ-quantile of each way's XOR magnitudes
        is taken per tile, so quiet regions get tight thresholds and the
        turbulent ones loose thresholds — the spatial analogue of the
        per-coordinate dynamic bounds of ``Algo_NGST``.  Returns either a
        ``(Υ,)`` array (global) or a ``(Υ, rows, cols)`` array (tiled).
        """
        fraction = self._fraction()
        upsilon = voters.shape[0]
        rows, cols = voters.shape[1:]
        tile = self.config.tile
        if not tile or tile >= max(rows, cols):
            flat = voters.reshape(upsilon, -1)
            return self._quantile_pow2(flat, fraction)
        out = np.empty((upsilon, rows, cols), dtype=np.uint64)
        for r0 in range(0, rows, tile):
            for c0 in range(0, cols, tile):
                sub = voters[:, r0 : r0 + tile, c0 : c0 + tile]
                flat = sub.reshape(upsilon, -1)
                t = self._quantile_pow2(flat, fraction)
                out[:, r0 : r0 + tile, c0 : c0 + tile] = t[:, None, None]
        return out

    @staticmethod
    def _quantile_pow2(flat: np.ndarray, fraction: float) -> np.ndarray:
        """Per-way power-of-two ceiling of the top-*fraction* quantile."""
        total = flat.shape[1]
        kth = int(min(total - 1, max(0, round(total - fraction * total))))
        part = np.partition(flat, kth, axis=1)
        return np.asarray(bitops.ceil_pow2(part[:, kth]), dtype=np.uint64)


def _and_reduce(voters: np.ndarray) -> np.ndarray:
    return np.bitwise_and.reduce(voters, axis=0)


def _grt(voters: np.ndarray) -> np.ndarray:
    # Leave-one-out union in O(Υ) bit ops via a two-level zero counter
    # (see repro.core.voter._leave_one_out_union).
    return _leave_one_out_union(voters)


def _nan_spatial_median(field: np.ndarray) -> np.ndarray:
    """Spatial 8-neighbour median ignoring NaNs (fallback: global median)."""
    stacked = np.stack([_shifted(field, dr, dc) for dr, dc in _OFFSETS_8])
    with warnings.catch_warnings():
        # An all-NaN neighbourhood is legitimate here (a cluster of
        # out-of-bounds pixels); the fallback below handles it.
        warnings.simplefilter("ignore", RuntimeWarning)
        med = np.nanmedian(stacked, axis=0)
    if np.any(~np.isfinite(med)):
        finite = field[np.isfinite(field)]
        fallback = np.median(finite) if finite.size else 0.0
        med = np.where(np.isfinite(med), med, fallback)
    return med


def _trend_mask(values: np.ndarray, window: int) -> np.ndarray:
    """True where a pixel's deviation is shared by its neighbourhood.

    A pixel deviating from the ring median is *exempt* from correction if
    at least two ring neighbours deviate in the same direction by at
    least half the pixel's own deviation — the signature of a natural
    trend rather than an isolated bit fault (§7.2, hypothesis 1).
    """
    ring = np.stack([_shifted(values, dr, dc) for dr, dc in _OFFSETS_8])
    ring_median = np.median(ring, axis=0)
    deviation = values - ring_median
    magnitude = np.abs(deviation)
    neighbour_dev = ring - ring_median[None]
    same_sign = np.sign(neighbour_dev) == np.sign(deviation)[None]
    big_enough = np.abs(neighbour_dev) >= 0.5 * magnitude[None]
    co_deviant = np.count_nonzero(same_sign & big_enough, axis=0)
    if window > 1:
        # Wider trend windows accept sparser natural structures: a single
        # co-deviant neighbour suffices.
        return co_deviant >= 1
    return co_deviant >= 2
