"""Ground-truth-free sensitivity selection.

The paper's results use "experimentally optimized values of Υ and
sensitivity Λ" (§6) — optimised against the pristine data, which a
flying system does not have.  This module closes that gap with a
two-step self-calibration that needs only the corrupted data itself:

1. **Estimate the environment.**  The natural temporal variation σ̂ is
   estimated robustly from adjacent-variant differences (median absolute
   difference, which bit-flips barely move), and the bit-flip rate Γ̂
   from the disagreement rate of the *top bits* — positions whose
   binary weight dwarfs σ̂, where natural variation (even with carry
   ripple) cannot reach, so any disagreement is a flip on one side of
   the pair.
2. **Calibrate on the analytical model.**  Eq. (1) is generative: we
   synthesise walks at (σ̂, Γ̂), inject matching faults, and pick the Λ
   that minimises Ψ on the synthetic data — the same procedure the
   paper's designers ran on the NGST Mission Simulator, automated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core import bitops
from repro.core.algo_ngst import AlgoNGST
from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi

DEFAULT_LAMBDA_GRID = (10.0, 30.0, 50.0, 70.0, 90.0, 100.0)

#: Gaussian consistency constant: MAD of N(0, σ) samples ≈ 0.6745·σ, so
#: dividing a median absolute deviation by this estimates σ.  Shared with
#: the incoherence scoring in :mod:`repro.core.strategies`.
MAD_SCALE = 0.6745


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of one self-calibration.

    Attributes:
        sensitivity: the selected Λ.
        estimated_sigma: σ̂, the natural-variation estimate.
        estimated_gamma: Γ̂, the per-bit flip-rate estimate.
        calibration_psi: synthetic Ψ achieved at the selected Λ.
    """

    sensitivity: float
    estimated_sigma: float
    estimated_gamma: float
    calibration_psi: float


def estimate_sigma(corrupted: np.ndarray) -> float:
    """Robust σ̂ from adjacent-variant differences.

    Under Eq. (1) the adjacent difference *is* the increment Θᵢ ~
    N(0, σ), so the median absolute difference divided by 0.6745 (the
    Gaussian MAD constant) estimates σ directly; the (sparse, huge)
    flip-induced outliers barely move a median.
    """
    if corrupted.ndim < 1 or corrupted.shape[0] < 2:
        raise DataFormatError("need a temporal stack with >= 2 variants")
    diffs = np.abs(np.diff(corrupted.astype(np.float64), axis=0))
    mad = float(np.median(diffs))
    return mad / MAD_SCALE


def estimate_gamma(corrupted: np.ndarray, sigma_hat: float) -> float:
    """Γ̂ from top-bit disagreements between adjacent variants.

    Bits with weight > 8·σ̂ cannot differ naturally between adjacent
    variants except through a carry chain crossing their boundary, which
    the robust σ̂ bounds to a negligible rate; a disagreement there means
    one of the two variants carries a flip at that bit, so the pairwise
    disagreement rate ≈ 2Γ (minus the 2Γ² double-flip overlap).
    """
    bitops.require_unsigned(corrupted, "corrupted")
    if corrupted.ndim < 1 or corrupted.shape[0] < 2:
        # A single variant has no adjacent pair to disagree: the XOR
        # stack below would be empty and its mean a NaN + RuntimeWarning.
        raise DataFormatError("need a temporal stack with >= 2 variants")
    nbits = bitops.bit_width(corrupted.dtype)
    # Top bits: weight strictly above the natural-variation reach.
    floor_bit = int(np.ceil(np.log2(max(8.0 * sigma_hat, 1.0))))
    usable = [b for b in range(floor_bit + 1, nbits)]
    if len(usable) < 2:
        # Extremely turbulent data: fall back to the top two bits.
        usable = [nbits - 2, nbits - 1]
    xors = np.bitwise_xor(corrupted[1:], corrupted[:-1])
    rates = []
    for b in usable:
        plane = (xors >> np.asarray(b, dtype=xors.dtype)) & np.asarray(
            1, dtype=xors.dtype
        )
        rates.append(float(plane.mean()))
    # A carry chain crossing bit b's boundary also toggles it, at a rate
    # ~ σ̂/2^b that *halves* per bit; flip-induced disagreements are flat
    # across bits.  The minimum over the usable bits therefore isolates
    # the flip contribution.
    pair_rate = float(np.min(rates))
    # pair_rate = 2Γ(1−Γ) ⇒ Γ = (1 − sqrt(1 − 2·pair_rate)) / 2.
    pair_rate = min(pair_rate, 0.499)
    return float((1.0 - np.sqrt(1.0 - 2.0 * pair_rate)) / 2.0)


def autotune_sensitivity(
    corrupted: np.ndarray,
    upsilon: int = 4,
    lambda_grid: tuple[float, ...] = DEFAULT_LAMBDA_GRID,
    calibration_shape: tuple[int, ...] = (8, 8),
    n_calibration: int = 2,
    seed: int = 0,
) -> AutotuneResult:
    """Select Λ for *corrupted* without ground truth.

    Args:
        corrupted: the fault-exposed temporal stack, shape ``(N, ...)``.
        upsilon: Υ to tune for.
        lambda_grid: candidate sensitivities.
        calibration_shape: coordinate grid of the synthetic calibration
            walks (kept small; the optimum Λ depends on (σ, Γ), not on
            the dataset size).
        n_calibration: synthetic datasets averaged per candidate.
        seed: calibration seed.
    """
    sigma_hat = estimate_sigma(corrupted)
    gamma_hat = estimate_gamma(corrupted, sigma_hat)
    n_variants = int(corrupted.shape[0])
    initial = int(np.clip(np.median(corrupted.astype(np.float64)), 32, 0xFFFF))
    dataset_cfg = NGSTDatasetConfig(
        n_variants=n_variants,
        sigma=float(min(sigma_hat, 8000.0)),
        initial_value=initial,
    )

    from repro.data.ngst import generate_walk

    best_lambda, best_psi = lambda_grid[0], None
    seeds = np.random.SeedSequence(seed).spawn(n_calibration)
    synthetic = []
    for child in seeds:
        rng = np.random.default_rng(child)
        pristine = generate_walk(dataset_cfg, rng, calibration_shape)
        injector = FaultInjector(
            UncorrelatedFaultModel(min(gamma_hat, 1.0)),
            seed=int(rng.integers(2**31)),
        )
        damaged, _ = injector.inject(pristine)
        synthetic.append((pristine, damaged))
    for lam in lambda_grid:
        algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
        value = float(
            np.mean([psi(algo(d).corrected, p) for p, d in synthetic])
        )
        if best_psi is None or value < best_psi:
            best_lambda, best_psi = lam, value
    return AutotuneResult(
        sensitivity=float(best_lambda),
        estimated_sigma=float(sigma_hat),
        estimated_gamma=float(gamma_hat),
        calibration_psi=float(best_psi),
    )
