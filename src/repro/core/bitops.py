"""Bit-manipulation primitives shared by the preprocessing algorithms.

All functions operate on numpy arrays of unsigned integers and are fully
vectorised.  Pixels in the NGST benchmark are 16-bit unsigned integers;
OTIS radiance samples are 32-bit IEEE-754 floats whose *bit patterns* are
manipulated as ``uint32``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataFormatError
from repro.native import dispatch as _dispatch
from repro.native import kernels as _native_kernels

#: Number of bits per supported unsigned dtype.
BITS_PER_DTYPE = {
    np.dtype(np.uint8): 8,
    np.dtype(np.uint16): 16,
    np.dtype(np.uint32): 32,
    np.dtype(np.uint64): 64,
}


def bit_width(dtype: np.dtype) -> int:
    """Return the number of bits of an unsigned integer dtype.

    Raises :class:`DataFormatError` for anything that is not one of the
    supported unsigned dtypes.
    """
    try:
        return BITS_PER_DTYPE[np.dtype(dtype)]
    except KeyError:
        raise DataFormatError(f"unsupported unsigned dtype: {dtype!r}") from None


def require_unsigned(arr: np.ndarray, name: str = "array") -> np.ndarray:
    """Validate that *arr* is a numpy array with a supported unsigned dtype."""
    if not isinstance(arr, np.ndarray):
        raise DataFormatError(f"{name} must be a numpy array, got {type(arr).__name__}")
    if arr.dtype not in BITS_PER_DTYPE:
        raise DataFormatError(
            f"{name} must have an unsigned integer dtype, got {arr.dtype}"
        )
    return arr


def _smear_right(v: np.ndarray) -> np.ndarray:
    """Propagate each element's highest set bit into every lower position.

    Six shift-or passes cover the full 64-bit width, so the result has all
    bits at or below the highest set bit equal to one (0 stays 0).
    """
    for shift in (1, 2, 4, 8, 16, 32):
        v = v | (v >> np.uint64(shift))
    return v


def ceil_pow2(values: np.ndarray | int) -> np.ndarray | int:
    """Smallest power of two greater than or equal to *values*.

    Zero maps to 1 (the smallest representable power, ``2**0``) which is the
    natural behaviour for threshold derivation: a zero XOR statistic means
    the lowest possible cut-off.  Works element-wise on arrays.

    >>> ceil_pow2(np.array([0, 1, 2, 3, 4, 5, 1023])).tolist()
    [1, 1, 2, 4, 4, 8, 1024]
    """
    scalar = np.isscalar(values)
    v = np.atleast_1d(np.asarray(values, dtype=np.uint64))
    out = np.ones_like(v)
    nz = v > 1
    # Smearing (v - 1) yields a block of ones up to the enclosing power's
    # exponent; adding one lands exactly on that power of two.
    out[nz] = _smear_right(v[nz] - np.uint64(1)) + np.uint64(1)
    if scalar:
        return int(out[0])
    return out


def _reference_ceil_pow2(values: np.ndarray | int) -> np.ndarray | int:
    """Pre-vectorization oracle for :func:`ceil_pow2` (per-bit shift loop)."""
    scalar = np.isscalar(values)
    v = np.atleast_1d(np.asarray(values, dtype=np.uint64))
    out = np.ones_like(v)
    nz = v > 1
    shifted = v[nz] - 1
    exponent = np.zeros(shifted.shape, dtype=np.uint64)
    while np.any(shifted):
        exponent[shifted > 0] += 1
        shifted = shifted >> 1
    out[nz] = np.uint64(1) << exponent
    if scalar:
        return int(out[0])
    return out


def mask_at_or_above(threshold_pow2: np.ndarray | int, nbits: int) -> np.ndarray | int:
    """Mask selecting every bit of weight >= ``threshold_pow2``.

    ``threshold_pow2`` must be a power of two (the ``V_val`` of the paper).
    The result has ones in every bit position whose binary weight is at
    least the threshold, i.e. ``full_mask XOR (threshold - 1)`` in the
    paper's notation.

    >>> hex(mask_at_or_above(8, 16))
    '0xfff8'
    """
    if nbits not in (8, 16, 32, 64):
        raise DataFormatError(f"nbits must be 8/16/32/64, got {nbits}")
    full = (1 << nbits) - 1
    scalar = np.isscalar(threshold_pow2)
    t = np.atleast_1d(np.asarray(threshold_pow2, dtype=np.uint64))
    if np.any(t == 0) or np.any((t & (t - 1)) != 0):
        raise DataFormatError("threshold must be a nonzero power of two")
    masks = (np.uint64(full) ^ (t - np.uint64(1))) & np.uint64(full)
    if scalar:
        return int(masks[0])
    return masks


def popcount(arr: np.ndarray) -> np.ndarray:
    """Number of set bits per element (vectorised)."""
    require_unsigned(arr)
    return np.bitwise_count(arr)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise Hamming distance between two equal-dtype arrays."""
    require_unsigned(a, "a")
    require_unsigned(b, "b")
    if a.dtype != b.dtype:
        raise DataFormatError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
    return np.bitwise_count(np.bitwise_xor(a, b))


def float32_to_bits(arr: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as its raw uint32 bit patterns."""
    arr = np.asarray(arr)
    if arr.dtype != np.float32:
        raise DataFormatError(f"expected float32, got {arr.dtype}")
    return arr.view(np.uint32)


def bits_to_float32(arr: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as IEEE-754 float32 values."""
    arr = np.asarray(arr)
    if arr.dtype != np.uint32:
        raise DataFormatError(f"expected uint32, got {arr.dtype}")
    return arr.view(np.float32)


def bit_plane(arr: np.ndarray, position: int) -> np.ndarray:
    """Extract bit plane *position* (0 = LSB) as a uint8 array of 0/1."""
    require_unsigned(arr)
    nbits = bit_width(arr.dtype)
    if not 0 <= position < nbits:
        raise DataFormatError(f"bit position {position} outside [0, {nbits})")
    return ((arr >> np.asarray(position, dtype=arr.dtype)) & np.asarray(1, dtype=arr.dtype)).astype(np.uint8)


def to_bit_planes(arr: np.ndarray) -> np.ndarray:
    """Decompose into a stack of bit planes, shape ``(nbits,) + arr.shape``.

    Plane index 0 is the most significant bit, matching the paper's
    ``P(i, j)`` notation where ``j`` is the offset from the MSB.
    Validation happens here; the transform itself runs on the selected
    kernel tier.
    """
    require_unsigned(arr)
    return _dispatch.call("to_bit_planes", arr)


def _numpy_to_bit_planes(arr: np.ndarray) -> np.ndarray:
    """NumPy tier for :func:`to_bit_planes`.

    Each word is split once into contiguous byte columns, so every
    plane extraction is a uint8 shift-and-mask over half (or less) of
    the word data with a contiguous output.  (An ``unpackbits`` +
    plane-transpose formulation was measured slower — the strided
    transpose of the ``(..., nbits)`` bit stream outweighs the saved
    shift loop.)
    """
    nbits = bit_width(arr.dtype)
    nbytes = nbits // 8
    little = np.ascontiguousarray(
        arr, dtype=arr.dtype.newbyteorder("<")
    ).reshape(-1)
    byte_view = little.view(np.uint8).reshape(-1, nbytes)
    columns = [np.ascontiguousarray(byte_view[:, b]) for b in range(nbytes)]
    planes = np.empty((nbits, little.size), dtype=np.uint8)
    for j in range(nbits):
        pos = nbits - 1 - j
        np.right_shift(columns[pos >> 3], pos & 7, out=planes[j])
        planes[j] &= np.uint8(1)
    return planes.reshape((nbits,) + arr.shape)


def _reference_to_bit_planes(arr: np.ndarray) -> np.ndarray:
    """Pre-vectorization oracle for :func:`to_bit_planes` (per-bit loop)."""
    require_unsigned(arr)
    nbits = bit_width(arr.dtype)
    planes = np.empty((nbits,) + arr.shape, dtype=np.uint8)
    for j in range(nbits):
        planes[j] = bit_plane(arr, nbits - 1 - j)
    return planes


def from_bit_planes(planes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`to_bit_planes` for the given unsigned dtype.

    ``planes`` must hold 0/1 values (the contract of
    :func:`to_bit_planes`); plane 0 is the MSB.  Validation happens
    here; the transform itself runs on the selected kernel tier.
    """
    dtype = np.dtype(dtype)
    nbits = bit_width(dtype)
    planes = np.asarray(planes)
    if planes.shape[0] != nbits:
        raise DataFormatError(
            f"expected {nbits} planes for {dtype}, got {planes.shape[0]}"
        )
    return _dispatch.call("from_bit_planes", planes, dtype)


def _numpy_from_bit_planes(planes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """NumPy tier for :func:`from_bit_planes`.

    Per-plane multiply-accumulate into two pre-allocated word buffers;
    this path is memory-bandwidth-bound, so the win over a naive
    shift-or loop comes from eliminating the per-plane temporaries (a
    ``packbits`` + transpose formulation was measured far slower).
    """
    dtype = np.dtype(dtype)
    nbits = bit_width(dtype)
    flat = np.ascontiguousarray(planes, dtype=np.uint8).reshape(nbits, -1)
    out = np.zeros(flat.shape[1], dtype=dtype)
    weighted = np.empty(flat.shape[1], dtype=dtype)
    for j in range(nbits):
        weight = dtype.type(1) << dtype.type(nbits - 1 - j)
        np.multiply(flat[j], weight, out=weighted, casting="unsafe")
        out |= weighted
    return out.reshape(planes.shape[1:])


def _reference_from_bit_planes(planes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Pre-vectorization oracle for :func:`from_bit_planes` (per-bit loop)."""
    dtype = np.dtype(dtype)
    nbits = bit_width(dtype)
    if planes.shape[0] != nbits:
        raise DataFormatError(
            f"expected {nbits} planes for {dtype}, got {planes.shape[0]}"
        )
    out = np.zeros(planes.shape[1:], dtype=dtype)
    for j in range(nbits):
        out |= (planes[j].astype(dtype)) << np.asarray(nbits - 1 - j, dtype=dtype)
    return out


_dispatch.register(
    "to_bit_planes",
    numpy_impl=_numpy_to_bit_planes,
    reference_impl=_reference_to_bit_planes,
    native_impl=_native_kernels.to_bit_planes,
    accepts=_native_kernels.words_native_ok,
)
_dispatch.register(
    "from_bit_planes",
    numpy_impl=_numpy_from_bit_planes,
    reference_impl=_reference_from_bit_planes,
    native_impl=_native_kernels.from_bit_planes,
    accepts=_native_kernels.words_native_ok,
)


def flip_bits(arr: np.ndarray, flip_mask: np.ndarray) -> np.ndarray:
    """Return a copy of *arr* with the bits selected by *flip_mask* inverted."""
    require_unsigned(arr)
    require_unsigned(flip_mask, "flip_mask")
    if flip_mask.shape != arr.shape:
        raise DataFormatError(
            f"flip_mask shape {flip_mask.shape} != array shape {arr.shape}"
        )
    return np.bitwise_xor(arr, flip_mask.astype(arr.dtype))


def highest_set_bit_value(arr: np.ndarray) -> np.ndarray:
    """Binary weight (value) of the highest set bit per element; 0 for 0.

    >>> highest_set_bit_value(np.array([0, 1, 5, 255], dtype=np.uint16))
    array([  0,   1,   4, 128], dtype=uint64)
    """
    require_unsigned(arr)
    v = arr.astype(np.uint64)
    # Smearing fills every bit below the highest set bit; halving the
    # resulting ones-block and adding one isolates that bit's weight.
    smeared = _smear_right(v)
    return np.where(
        v > 0, (smeared >> np.uint64(1)) + np.uint64(1), np.uint64(0)
    )


def _reference_highest_set_bit_value(arr: np.ndarray) -> np.ndarray:
    """Pre-vectorization oracle for :func:`highest_set_bit_value`."""
    require_unsigned(arr)
    v = arr.astype(np.uint64)
    out = np.zeros_like(v)
    live = v > 0
    work = v.copy()
    weight = np.ones_like(v)
    while np.any(work > 1):
        gt = work > 1
        work[gt] >>= 1
        weight[gt] <<= 1
    out[live] = weight[live]
    return out
