"""Designer-facing diagnostics for tuning Υ and Λ (§3.2, §6).

The paper leaves Υ and Λ to the system designer, "optimally suited
based on the statistical model of the datasets and the vulnerability to
bitflips of the system being designed".  These helpers expose what the
algorithm would do at a given setting — window boundaries, voter
survival, correction pressure — without committing to a correction, so
a mission can be dry-run against representative data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NGSTConfig
from repro.core import bitops
from repro.core.voter import VoterMatrix
from repro.core.windows import BitWindows
from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class WindowDiagnostics:
    """How the dynamic bit windows land for one dataset and Λ.

    Attributes:
        sensitivity: the Λ analysed.
        window_a_bits / window_b_bits / window_c_bits: mean width (in
            bits) of each window across coordinates.
        voter_survival: fraction of voter-matrix entries that survive
            the pruning threshold (the §3.3 "total voters" that grow
            with sensitivity).
        active_pixel_fraction: fraction of pixels with at least one
            surviving voter (the correction stage's workload).
        correction_pressure: fraction of pixels the full algorithm
            would modify at this Λ.
    """

    sensitivity: float
    window_a_bits: float
    window_b_bits: float
    window_c_bits: float
    voter_survival: float
    active_pixel_fraction: float
    correction_pressure: float


def analyze_windows(
    pixels: np.ndarray, config: NGSTConfig | None = None
) -> WindowDiagnostics:
    """Dry-run the Algorithm 1 pre-analysis on a temporal stack."""
    config = config or NGSTConfig()
    if config.sensitivity == 0:
        raise DataFormatError("window analysis needs sensitivity > 0")
    matrix = VoterMatrix(pixels, config.upsilon)
    thresholds = matrix.thresholds(
        config.sensitivity, per_coordinate=config.per_coordinate_thresholds
    )
    nbits = bitops.bit_width(pixels.dtype)
    windows = BitWindows.from_thresholds(thresholds, nbits)

    a_bits = float(np.mean(bitops.popcount(np.atleast_1d(windows.window_a()))))
    b_bits = float(np.mean(bitops.popcount(np.atleast_1d(windows.window_b()))))
    c_bits = float(np.mean(bitops.popcount(np.atleast_1d(windows.window_c()))))

    expanded = np.asarray(thresholds, dtype=np.uint64)
    if expanded.ndim == 1:
        keep = matrix.xors.astype(np.uint64) > expanded.reshape(
            (-1,) + (1,) * (matrix.xors.ndim - 1)
        )
    else:
        keep = matrix.xors.astype(np.uint64) > np.expand_dims(expanded, axis=1)
    survival = float(keep.mean())
    active = float(keep.any(axis=0).mean())

    from repro.core.algo_ngst import AlgoNGST

    result = AlgoNGST(config)(pixels)
    pressure = result.n_pixels_corrected / pixels.size

    return WindowDiagnostics(
        sensitivity=config.sensitivity,
        window_a_bits=a_bits,
        window_b_bits=b_bits,
        window_c_bits=c_bits,
        voter_survival=survival,
        active_pixel_fraction=active,
        correction_pressure=float(pressure),
    )


def sensitivity_profile(
    pixels: np.ndarray,
    lambdas: tuple[float, ...] = (10.0, 30.0, 50.0, 70.0, 90.0, 100.0),
    upsilon: int = 4,
) -> list[WindowDiagnostics]:
    """Window diagnostics across a Λ grid (the §3.2 tuning view)."""
    return [
        analyze_windows(pixels, NGSTConfig(upsilon=upsilon, sensitivity=lam))
        for lam in lambdas
    ]


def render_profile(profile: list[WindowDiagnostics]) -> str:
    """ASCII table of a sensitivity profile."""
    header = (
        f"{'L':>6} {'A bits':>8} {'B bits':>8} {'C bits':>8} "
        f"{'voters':>8} {'active px':>10} {'corrected':>10}"
    )
    lines = [header]
    for d in profile:
        lines.append(
            f"{d.sensitivity:>6.0f} {d.window_a_bits:>8.2f} "
            f"{d.window_b_bits:>8.2f} {d.window_c_bits:>8.2f} "
            f"{d.voter_survival:>8.3f} {d.active_pixel_fraction:>10.3f} "
            f"{d.correction_pressure:>10.4f}"
        )
    return "\n".join(lines)
