"""Public preprocessing façades.

These classes tie the pieces together the way the paper's system does:

* :class:`NGSTPreprocessor` — at Λ = 0 it performs nothing but a FITS
  header sanity analysis (negligible overhead, §3.2); at Λ > 0 it also
  runs ``Algo_NGST`` over the temporal pixel stacks.
* :class:`OTISPreprocessor` — wraps ``Algo_OTIS`` with the same Λ = 0
  degenerate behaviour (bounds screening only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NGSTConfig, OTISConfig
from repro.core.algo_ngst import AlgoNGST, NGSTResult
from repro.core.algo_otis import AlgoOTIS, OTISResult
from repro.exceptions import HeaderSanityError
from repro.fits.file import HDU, decode_data_unit, write_hdu
from repro.fits.sanity import HeaderSanityAnalyzer, SanityReport


@dataclass
class PreprocessOutcome:
    """What a preprocessing pass produced.

    Attributes:
        data: the (possibly corrected) pixel data, or None when only the
            header was analysed.
        sanity: the FITS header sanity report, when FITS input was given.
        result: the algorithm result, when the algorithm ran (Λ > 0).
    """

    data: np.ndarray | None = None
    sanity: SanityReport | None = None
    result: NGSTResult | OTISResult | None = None


class NGSTPreprocessor:
    """End-to-end input preprocessing for NGST temporal stacks."""

    def __init__(self, config: NGSTConfig | None = None) -> None:
        self.config = config or NGSTConfig()
        self._algo = None if self.config.sensitivity == 0 else AlgoNGST(self.config)
        self._sanity = HeaderSanityAnalyzer(repair=True)

    def process_stack(self, pixels: np.ndarray) -> PreprocessOutcome:
        """Preprocess a bare temporal stack (no FITS container).

        At Λ = 0 the stack passes through untouched, mirroring the
        header-sanity-only behaviour for raw arrays.
        """
        if self._algo is None:
            return PreprocessOutcome(data=pixels)
        result = self._algo(pixels)
        return PreprocessOutcome(data=result.corrected, result=result)

    def process_fits(self, raw: bytes) -> tuple[bytes, PreprocessOutcome]:
        """Sanity-check a FITS byte stream and preprocess its data unit.

        The N temporal variants are expected as the leading axis of the
        primary HDU's data cube.  Returns the repaired, re-encoded FITS
        bytes together with the outcome details.

        Raises:
            HeaderSanityError: if the header is damaged beyond repair.
        """
        report = self._sanity.analyze(raw)
        if not report.ok:
            fatal = "; ".join(
                i.message for i in report.issues if i.severity.value == "fatal"
            )
            raise HeaderSanityError(f"unrecoverable FITS header: {fatal}")
        # Decode the data unit through the *repaired* header, at the data
        # offset of the original byte layout, so a damaged-but-repairable
        # header still yields its pixels.
        header = report.header
        data_raw, _ = decode_data_unit(header, raw, report.header_length)
        primary = HDU(header, data_raw)
        data = primary.physical_data()
        if self._algo is None or data is None:
            encoded = header.to_bytes() + raw[report.header_length :]
            return encoded, PreprocessOutcome(data=data, sanity=report)
        stack = np.ascontiguousarray(data.astype(np.uint16))
        result = self._algo(stack)
        encoded = write_hdu(result.corrected)
        outcome = PreprocessOutcome(data=result.corrected, sanity=report, result=result)
        return encoded, outcome


class OTISPreprocessor:
    """End-to-end input preprocessing for OTIS radiance fields/cubes."""

    def __init__(self, config: OTISConfig | None = None) -> None:
        self.config = config or OTISConfig()
        self._algo = AlgoOTIS(self.config)

    def process(self, field: np.ndarray) -> PreprocessOutcome:
        """Preprocess a 2-D band or 3-D cube of float32 radiance data.

        The Λ = 0 degenerate case still applies the absolute-bounds
        screen (hypothesis 2 costs next to nothing and catches the
        catastrophic exponent-bit flips) but skips the voter stage.
        """
        result = self._algo(field)
        return PreprocessOutcome(data=result.corrected, result=result)
