"""Sensitivity (Λ) to voter-matrix prune rank (Φ) mapping — §3.2.

The sensitivity parameter Λ ∈ [0, 100] scales the preprocessing algorithm
between "header sanity analysis only" (Λ = 0) and maximally aggressive
correction (Λ = 100).  Internally Λ selects the rank Φ of the XOR statistic
(1 = greatest) whose value becomes the pruning threshold ``V_val`` of each
pairing way:

    Φ(Λ) = clip( round( N/4 + ((Λ − 80)/100) · (N/4 − 1) ), 1, N )

This is the paper's formula with the sign oriented so that a larger Λ
yields a larger Φ, hence a *smaller* Φ-th-greatest element, hence a lower
threshold and **more** surviving voters — exactly the monotonicity that
§3.3 states ("If the sensitivity is higher, the total voters in the voter
matrix will increase").  At the paper's reference point Λ = 80 the rank is
N/4.  See DESIGN.md §4 for the full rationale.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def phi_rank(sensitivity: float, n_variants: int) -> int:
    """Rank Φ (1-based, 1 = greatest element) selected by sensitivity Λ.

    Args:
        sensitivity: Λ ∈ (0, 100].  Λ = 0 is rejected here because the
            algorithm never reaches the pruning stage at null sensitivity
            (it short-circuits to header sanity analysis).
        n_variants: N, the number of temporal variants in the dataset
            (or the number of XOR statistics per way for spatial use).

    Returns:
        Φ, clipped into [1, n_variants].
    """
    if not 0 < sensitivity <= 100:
        raise ConfigurationError(
            f"phi_rank requires 0 < sensitivity <= 100, got {sensitivity}"
        )
    if n_variants < 2:
        raise ConfigurationError(f"n_variants must be >= 2, got {n_variants}")
    quarter = n_variants / 4.0
    raw = quarter + ((sensitivity - 80.0) / 100.0) * (quarter - 1.0)
    return int(min(max(round(raw), 1), n_variants))
