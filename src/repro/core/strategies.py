"""Adaptive and application-aware preprocessing strategies.

The paper fixes Υ and Λ per run ("experimentally optimized values", §6);
the related work argues both knobs should move at runtime.  This module
implements the two directions as drop-in strategies behind
:class:`repro.core.algo_ngst.AlgoNGST`, selected by
``NGSTConfig.strategy``:

* ``adaptive`` — **incoherence-scored voting** (after Alagöz,
  arXiv:0811.3816).  Each of the Υ pairing ways is scored per pixel
  column by how incoherent its XOR stream is relative to the other ways,
  using the same adjacent-difference MAD machinery as the σ̂/Γ̂
  estimators in :mod:`repro.core.autotune` (shared ``MAD_SCALE``
  constant, per-way medians normalised by the √|offset| growth a genuine
  Eq. (1) walk exhibits).  The fixed Φ(Λ)-ranked ``V_val`` threshold of a
  way is then *rescaled* by ``2**round(β·log2(score))``: incoherent ways
  (score > 1 — their neighbour stack is turbulent or fault-ridden) get
  their thresholds raised and vote for less, coherent ways (score < 1)
  get them lowered and vote for more.  With ``coherence_prune_ratio``
  set, a way whose score reaches the ratio abstains outright at that
  column (its threshold is pushed to 2**nbits, above every representable
  XOR).  With ``coherence_beta = 0`` every shift rounds to zero and the
  thresholds — hence the whole correction — are byte-identical to the
  ``fixed`` path, which is the degeneracy the strategy-equivalence
  harness gates.

* ``selective`` — **application-aware selective protection** (after
  Wang et al., arXiv:2407.11853).  A per-region sensitivity map built
  from ``margin`` / ``header_rows`` / ``science_fast`` partitions the
  image coordinates: high-sensitivity regions (headers, science
  interior) run the full Algorithm 1 voter; low-sensitivity regions
  (calibration margins, or the science field when only headers matter)
  take a cheap unanimous-vote-only path that skips the GRT combiner and
  the per-coordinate threshold scan.  When the map marks everything
  sensitive (the default field values) the strategy delegates wholesale
  to the ``fixed`` path and is byte-identical by construction.

Both strategies return the same :class:`NGSTResult` as the fixed path,
so they flow through fusion, caching, DAG reports, and every runtime
backend unchanged.  The online Λ autotuner — the third adaptive mode —
lives in :mod:`repro.stream.autotune_stage` because it is stateful
across stacks.
"""

from __future__ import annotations

import numpy as np

from repro.config import NGSTConfig, STRATEGY_CHOICES
from repro.core import bitops
from repro.core.algo_ngst import NGSTResult, correct_with_thresholds, run_fixed
from repro.core.autotune import MAD_SCALE
from repro.core.voter import VoterMatrix
from repro.core.windows import BitWindows
from repro.exceptions import ConfigurationError

__all__ = [
    "STRATEGY_CHOICES",
    "incoherence_scores",
    "adaptive_thresholds",
    "region_mask",
    "strategy_arm_config",
    "FixedStrategy",
    "AdaptiveVotingStrategy",
    "SelectiveProtectionStrategy",
    "resolve_strategy",
]


def strategy_arm_config(
    strategy: str, *, upsilon: int = 4, sensitivity: float = 50.0
) -> NGSTConfig:
    """A representative :class:`NGSTConfig` for a named-strategy arm.

    Experiments add strategy arms by name (``repro fig2 --strategy
    adaptive``); this picks the canonical knob settings those arms run
    at, so the arm labels in figures and bench reports always mean the
    same configuration.  ``adaptive`` runs at the default shift gain
    (β = 1); ``selective`` protects a 2-row header and treats a 2-pixel
    border as low-sensitivity margin — the smallest map that actually
    exercises both region kinds.
    """
    if strategy == "adaptive":
        return NGSTConfig(
            upsilon=upsilon, sensitivity=sensitivity, strategy="adaptive"
        )
    if strategy == "selective":
        return NGSTConfig(
            upsilon=upsilon,
            sensitivity=sensitivity,
            strategy="selective",
            margin=2,
            header_rows=2,
        )
    if strategy == "fixed":
        return NGSTConfig(upsilon=upsilon, sensitivity=sensitivity)
    raise ConfigurationError(
        f"strategy must be one of {STRATEGY_CHOICES}, got {strategy!r}"
    )


def incoherence_scores(matrix: VoterMatrix) -> np.ndarray:
    """Per-way, per-column incoherence scores of a voter matrix.

    For each pairing way the median XOR magnitude over the temporal axis
    is a robust scale statistic of that way's disagreement stream — the
    same MAD construction :func:`repro.core.autotune.estimate_sigma`
    applies to adjacent differences, here taken per way and per column.
    Under Eq. (1) the pairing at offset ``d`` differs by a sum of ``|d|``
    i.i.d. increments, so the natural scale grows like ``σ·√|d|``;
    dividing by ``√|d|`` (and the Gaussian ``MAD_SCALE``) puts all Υ ways
    on a common σ̂ footing.  The score of a way is then its normalised
    scale against the cross-way median at the same column::

        score[w, c] = (σ̂[w, c] + 1) / (median_w σ̂[w, c] + 1)

    A way tracking the same coherent walk as its peers scores ≈ 1; a way
    whose neighbour stack carries concentrated faults or decorrelated
    data scores > 1.  The ``+1`` floors keep the ratio finite and pin
    constant (all-zero-XOR) stacks exactly at 1.0, so fault-free
    uniform-coherence inputs produce no threshold adjustment at all.

    Returns:
        float64 array of shape ``(Υ, n_coords)`` (``n_coords = 1`` for
        1-D stacks), scores > 0.
    """
    upsilon = matrix.upsilon
    flat = matrix.xors.reshape(upsilon, matrix.n_variants, -1)
    mag = np.median(flat.astype(np.float64), axis=1)
    scale = np.sqrt(np.abs(np.asarray(matrix.offsets, dtype=np.float64)))
    sigma_w = mag / MAD_SCALE / scale[:, None]
    ref = np.median(sigma_w, axis=0)
    return (sigma_w + 1.0) / (ref[None, :] + 1.0)


def adaptive_thresholds(
    base: np.ndarray,
    scores: np.ndarray,
    *,
    beta: float,
    prune_ratio: float,
    nbits: int,
) -> np.ndarray:
    """Rescale the Φ(Λ) thresholds by incoherence score.

    Each threshold is multiplied by ``2**round(β·log2(score))`` and
    clipped to ``[1, 2**nbits]`` — always a power of two, as the
    bit-window derivation requires.  ``2**nbits`` exceeds every
    representable XOR magnitude, so a way pushed there abstains at that
    column (and, through the window max, narrows window A there: lost
    confidence in a way also tightens the relaxed Υ−1 vote).  All
    arithmetic is exact in float64 (powers of two well below 2**52), so
    ``β = 0`` reproduces ``base`` bit for bit.

    Args:
        base: uint64 thresholds of shape ``(Υ,)`` or ``(Υ,) + coords``.
        scores: from :func:`incoherence_scores`, shape ``(Υ, n_coords)``.
        beta: shift gain; 0 disables the adjustment.
        prune_ratio: score at or above which a way abstains; 0 = off.
        nbits: pixel width in bits.

    Returns:
        uint64 thresholds of shape ``(Υ, n_coords)``.
    """
    upsilon = scores.shape[0]
    base2d = np.asarray(base, dtype=np.uint64).reshape(upsilon, -1)
    shift = np.rint(beta * np.log2(scores)).astype(np.int64)
    shift = np.clip(shift, -nbits, nbits)
    adjusted = base2d.astype(np.float64) * np.exp2(shift.astype(np.float64))
    adjusted = np.clip(adjusted, 1.0, np.exp2(nbits))
    if prune_ratio:
        adjusted = np.where(scores >= prune_ratio, np.exp2(nbits), adjusted)
    return adjusted.astype(np.uint64)


def region_mask(coord_shape: tuple[int, ...], cfg: NGSTConfig) -> np.ndarray | None:
    """Per-region sensitivity map over the image coordinates.

    ``True`` marks high-sensitivity coordinates (full preprocessing),
    ``False`` low-sensitivity ones (cheap unanimous-vote path):

    * ``science_fast`` starts the whole field low-sensitivity;
    * ``margin`` marks a border of that width along every spatial axis
      low-sensitivity (overscan/calibration margins);
    * ``header_rows`` forces the leading rows of the first spatial axis
      back to high sensitivity (telemetry/header region), overriding
      both of the above.

    Returns ``None`` for coordinate-less (1-D temporal) stacks — there
    are no regions to distinguish, so every pixel is sensitive.
    """
    if not coord_shape:
        return None
    mask = np.ones(coord_shape, dtype=bool)
    if cfg.science_fast:
        mask[...] = False
    if cfg.margin > 0:
        for axis, length in enumerate(coord_shape):
            sl = [slice(None)] * len(coord_shape)
            sl[axis] = slice(0, min(cfg.margin, length))
            mask[tuple(sl)] = False
            sl[axis] = slice(max(length - cfg.margin, 0), None)
            mask[tuple(sl)] = False
    if cfg.header_rows > 0:
        sl = [slice(None)] * len(coord_shape)
        sl[0] = slice(0, min(cfg.header_rows, coord_shape[0]))
        mask[tuple(sl)] = True
    return mask


def _unanimous_corrections(pixels: np.ndarray, cfg: NGSTConfig) -> tuple[np.ndarray, BitWindows]:
    """The cheap low-sensitivity path: global thresholds, unanimity only.

    Skips both the per-coordinate threshold scan and the GRT combiner —
    a correction is applied only where *all* Υ pruned voters agree,
    within window B/C bounds (``corr = unanimous & LSB-MASK``; no
    window-A relaxation without the Υ−1 vote).
    """
    matrix = VoterMatrix(pixels, cfg.upsilon)
    thresholds = matrix.thresholds(cfg.sensitivity, per_coordinate=False)
    nbits = bitops.bit_width(pixels.dtype)
    windows = BitWindows.from_thresholds(thresholds, nbits)
    # Prune in the voters' own dtype (as VoterMatrix.pruned does), with
    # the global per-way thresholds broadcast over every trailing axis.
    thr = np.asarray(thresholds, dtype=np.uint64).reshape(
        (cfg.upsilon,) + (1,) * pixels.ndim
    )
    dtype_max = np.uint64(np.iinfo(matrix.xors.dtype).max)
    capped = np.minimum(thr, dtype_max).astype(matrix.xors.dtype)
    pruned = np.where(matrix.xors > capped, matrix.xors, np.zeros_like(matrix.xors))
    unanimous = VoterMatrix.unanimous(
        pruned.reshape(cfg.upsilon, -1).astype(np.uint64)
    )
    lsb = np.asarray(windows.lsb_mask, dtype=np.uint64).reshape(-1)
    corr = (unanimous & lsb[0]).reshape(pixels.shape).astype(pixels.dtype)
    return corr, windows


class FixedStrategy:
    """Algorithm 1 exactly as the paper states it."""

    name = "fixed"

    def run(self, pixels: np.ndarray, cfg: NGSTConfig) -> NGSTResult:
        return run_fixed(pixels, cfg)


class AdaptiveVotingStrategy:
    """Incoherence-scored adaptive voting (see module docstring)."""

    name = "adaptive"

    def run(self, pixels: np.ndarray, cfg: NGSTConfig) -> NGSTResult:
        matrix = VoterMatrix(pixels, cfg.upsilon)
        base = matrix.thresholds(
            cfg.sensitivity, per_coordinate=cfg.per_coordinate_thresholds
        )
        scores = incoherence_scores(matrix)
        adjusted = adaptive_thresholds(
            base,
            scores,
            beta=cfg.coherence_beta,
            prune_ratio=cfg.coherence_prune_ratio,
            nbits=bitops.bit_width(pixels.dtype),
        )
        if pixels.ndim > 1:
            adjusted = adjusted.reshape((cfg.upsilon,) + pixels.shape[1:])
        else:
            adjusted = adjusted.reshape(cfg.upsilon)
        return correct_with_thresholds(pixels, cfg, matrix, adjusted)


class SelectiveProtectionStrategy:
    """Application-aware selective protection (see module docstring)."""

    name = "selective"

    def run(self, pixels: np.ndarray, cfg: NGSTConfig) -> NGSTResult:
        mask = region_mask(pixels.shape[1:], cfg)
        if mask is None or bool(mask.all()):
            # Everything is high-sensitivity: the full path on the intact
            # array, byte-identical to the fixed strategy by construction.
            return run_fixed(pixels, cfg)
        n = pixels.shape[0]
        flat = pixels.reshape(n, -1)
        flat_mask = mask.reshape(-1)
        sens_idx = np.nonzero(flat_mask)[0]
        fast_idx = np.nonzero(~flat_mask)[0]
        corr = np.zeros(flat.shape, dtype=pixels.dtype)
        windows: BitWindows | None = None
        if sens_idx.size:
            # Per-coordinate thresholds are column-independent, so the
            # sensitive columns correct exactly as they would in a
            # full-image run when per_coordinate_thresholds is set.
            full = run_fixed(np.ascontiguousarray(flat[:, sens_idx]), cfg)
            corr[:, sens_idx] = full.correction_vectors
            windows = full.windows
        if fast_idx.size:
            fast_corr, fast_windows = _unanimous_corrections(
                np.ascontiguousarray(flat[:, fast_idx]), cfg
            )
            corr[:, fast_idx] = fast_corr
            if windows is None:
                windows = fast_windows
        corr = corr.reshape(pixels.shape)
        corrected = np.bitwise_xor(pixels, corr)
        assert windows is not None  # sens_idx or fast_idx is non-empty
        return NGSTResult(
            corrected=corrected,
            correction_vectors=corr,
            windows=windows,
            n_pixels_corrected=int(np.count_nonzero(corr)),
            n_bits_corrected=int(bitops.popcount(corr).sum()),
        )


_STRATEGIES = {
    "fixed": FixedStrategy(),
    "adaptive": AdaptiveVotingStrategy(),
    "selective": SelectiveProtectionStrategy(),
}


def resolve_strategy(cfg: NGSTConfig):
    """The strategy object selected by ``cfg.strategy``."""
    try:
        return _STRATEGIES[cfg.strategy]
    except KeyError:
        raise ConfigurationError(
            f"strategy must be one of {STRATEGY_CHOICES}, got {cfg.strategy!r}"
        ) from None
