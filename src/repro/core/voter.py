"""The Υ-way XOR voter matrix of Algorithm 1 (§3.3).

Each pixel in the temporal stack is bit-compared (XOR) with its Υ/2
immediately preceding and Υ/2 immediately following temporal variants —
the pairing with the least average distance from the Υ neighbours that
the paper prescribes.  The resulting per-pixel voters are then pruned by
a dynamic, sensitivity-derived threshold: XOR magnitudes at or below the
``V_val`` of their pairing way are natural variation and are zeroed, so
they vote for no correction at any bit.
"""

from __future__ import annotations

import numpy as np

from repro.core import bitops
from repro.core.sensitivity import phi_rank
from repro.exceptions import ConfigurationError, DataFormatError
from repro.native import dispatch as _dispatch
from repro.native import kernels as _native_kernels


def reflect_index(index: int, length: int) -> int:
    """Mirror *index* into ``[0, length)`` without repeating the edge.

    >>> [reflect_index(i, 5) for i in (-2, -1, 0, 4, 5, 6)]
    [2, 1, 0, 4, 3, 2]
    """
    if length < 2:
        raise ConfigurationError(f"length must be >= 2, got {length}")
    period = 2 * (length - 1)
    index %= period
    if index < 0:
        index += period
    return index if index < length else period - index


def neighbour_indices(n: int, offset: int) -> np.ndarray:
    """Indices of the neighbour at signed *offset* for each of n pixels.

    Out-of-range neighbours reflect at the boundaries so every pixel has a
    full complement of Υ voters.
    """
    if n < 2:
        raise ConfigurationError(f"length must be >= 2, got {n}")
    period = 2 * (n - 1)
    idx = (np.arange(n, dtype=np.intp) + offset) % period
    return np.where(idx < n, idx, period - idx).astype(np.intp)


def _reference_neighbour_indices(n: int, offset: int) -> np.ndarray:
    """Pre-vectorization oracle for :func:`neighbour_indices`."""
    return np.array([reflect_index(i + offset, n) for i in range(n)], dtype=np.intp)


def _leave_one_out_union(voters: np.ndarray) -> np.ndarray:
    """``OR_k ( AND_{j != k} voters[j] )`` in O(Υ) AND/OR operations.

    A bit is in some leave-one-out AND exactly when at most one voter
    has it clear, so a two-level saturating zero counter — ``zero1``
    marks bits cleared by at least one voter, ``zero2`` bits cleared by
    at least two — computes the union in one pass with two plane-sized
    accumulators.  (A prefix/suffix AND scheme has the same O(Υ) op
    count but allocates a Υ-plane prefix array; on large stacks that
    allocation alone cost more than the saved ANDs.)
    """
    zero1 = ~voters[0]
    zero2 = np.zeros_like(zero1)
    for k in range(1, voters.shape[0]):
        cleared = ~voters[k]
        zero2 |= zero1 & cleared
        zero1 |= cleared
    return ~zero2


def _reference_unanimous(voters: np.ndarray) -> np.ndarray:
    """Pre-vectorization oracle for :meth:`VoterMatrix.unanimous`."""
    out = voters[0].copy()
    for way in range(1, voters.shape[0]):
        out &= voters[way]
    return out


def _reference_grt(voters: np.ndarray) -> np.ndarray:
    """Pre-vectorization O(Υ²) oracle for :meth:`VoterMatrix.grt`."""
    upsilon = voters.shape[0]
    if upsilon == 2:
        return _reference_unanimous(voters)
    out = np.zeros_like(voters[0])
    for k in range(upsilon):
        acc: np.ndarray | None = None
        for j in range(upsilon):
            if j == k:
                continue
            acc = voters[j].copy() if acc is None else acc & voters[j]
        if acc is not None:
            out |= acc
    return out


class VoterMatrix:
    """Voter matrix over a temporal stack of unsigned pixels.

    Args:
        pixels: array of shape ``(N, ...)`` with an unsigned dtype; axis 0
            is the temporal axis (the N variants of §2.2.1).  Trailing
            axes, if any, are independent image coordinates.
        upsilon: Υ, positive even number of neighbours per pixel.

    Attributes:
        xors: array of shape ``(Υ, N, ...)``; ``xors[w, i]`` is the XOR of
            pixel ``i`` with its ``w``-th neighbour.  Ways are ordered
            ``+1, -1, +2, -2, …`` (forward/backward alternating).
        offsets: the signed temporal offset of each way.
    """

    def __init__(self, pixels: np.ndarray, upsilon: int) -> None:
        bitops.require_unsigned(pixels, "pixels")
        if upsilon <= 0 or upsilon % 2 != 0:
            raise ConfigurationError(
                f"upsilon must be a positive even integer, got {upsilon}"
            )
        n = pixels.shape[0]
        if n <= upsilon // 2:
            raise DataFormatError(
                f"need more than upsilon/2={upsilon // 2} temporal variants, got {n}"
            )
        self.pixels = pixels
        self.upsilon = upsilon
        self.n_variants = n
        self.offsets = []
        for d in range(1, upsilon // 2 + 1):
            self.offsets.extend((d, -d))
        self.xors = np.empty((upsilon,) + pixels.shape, dtype=pixels.dtype)
        for way, offset in enumerate(self.offsets):
            idx = neighbour_indices(n, offset)
            self.xors[way] = np.bitwise_xor(pixels, pixels[idx])

    def thresholds(self, sensitivity: float, per_coordinate: bool = True) -> np.ndarray:
        """Dynamic pruning thresholds ``V_val`` per way (and coordinate).

        The Φ(Λ)-th greatest XOR magnitude of each way is located and
        rounded up to the nearest power of two.  With ``per_coordinate``
        the statistic is taken independently for every image coordinate,
        which is what makes the algorithm's bounds *regional*: quiet
        regions get tight thresholds, turbulent ones get loose thresholds.

        Returns:
            uint64 array of shape ``(Υ,)`` (global) or ``(Υ,) + coord
            shape`` (per coordinate), each element a power of two.
        """
        phi = phi_rank(sensitivity, self.n_variants)
        # Φ-th greatest == (N - Φ)-th smallest (0-indexed) along the
        # temporal axis of each way.
        kth = self.n_variants - phi
        if per_coordinate and self.xors.ndim > 2:
            part = np.partition(self.xors, kth, axis=1)
            selected = part[:, kth]
        else:
            flat = self.xors.reshape(self.upsilon, -1)
            # Rank Φ is defined over N statistics; for the global variant
            # scale the rank to the flattened length to keep the same
            # quantile.
            total = flat.shape[1]
            kth_flat = min(total - 1, max(0, round(kth * total / self.n_variants)))
            part = np.partition(flat, kth_flat, axis=1)
            selected = part[:, kth_flat]
        return np.asarray(bitops.ceil_pow2(selected), dtype=np.uint64)

    def pruned(self, thresholds: np.ndarray) -> np.ndarray:
        """Voters with natural-variation entries zeroed.

        ``thresholds`` must come from :meth:`thresholds`; entries whose XOR
        magnitude is <= the threshold of their way (and coordinate) are
        discarded (set to zero ⇒ they vote for nothing).
        """
        thresholds = np.asarray(thresholds, dtype=np.uint64)
        if thresholds.shape[0] != self.upsilon:
            raise DataFormatError(
                f"expected {self.upsilon} way thresholds, got {thresholds.shape[0]}"
            )
        # Broadcast (Υ, ...) thresholds against (Υ, N, ...) voters.  The
        # comparison runs in the voters' own dtype: a threshold above the
        # dtype's maximum (e.g. 2**16 for uint16) prunes everything, which
        # clamping to the maximum reproduces without materializing a
        # uint64 copy of the whole voter array.
        expanded = np.expand_dims(thresholds, axis=1)
        dtype_max = np.uint64(np.iinfo(self.xors.dtype).max)
        capped = np.minimum(expanded, dtype_max).astype(self.xors.dtype)
        keep = self.xors > capped
        return np.where(keep, self.xors, np.zeros_like(self.xors))

    @staticmethod
    def unanimous(voters: np.ndarray) -> np.ndarray:
        """Bits asserted by *all* Υ voters (the Ξ combiner of Algorithm 1)."""
        return _dispatch.call("unanimous", voters)

    @staticmethod
    def grt(voters: np.ndarray) -> np.ndarray:
        """The GRT combiner: bits asserted by at least Υ−1 of the Υ voters.

        The union over k of the AND of all voters except k, exactly the
        ``Max / Ξ`` construction in Algorithm 1, computed in O(Υ) bit ops
        (see :func:`_leave_one_out_union`; the C tier uses the same
        two-level zero-counter blocked for L1).  For Υ = 2 the
        leave-one-out AND degenerates to a single voter — any lone
        disagreement would trigger a window-A correction — so the
        combiner falls back to unanimity, the only meaningful consensus
        two voters can express.
        """
        upsilon = voters.shape[0]
        if upsilon == 2:
            return VoterMatrix.unanimous(voters)
        return _dispatch.call("grt", voters)


# ndim >= 2: reducing a single (Υ,) vector returns a NumPy scalar, a
# shape the bytewise C combiners do not reproduce.
_dispatch.register(
    "unanimous",
    numpy_impl=lambda voters: np.bitwise_and.reduce(voters, axis=0),
    reference_impl=_reference_unanimous,
    native_impl=_native_kernels.unanimous,
    accepts=lambda voters: voters.ndim >= 2,
)
# The Υ = 2 degeneration to unanimity happens before dispatch, so every
# tier's grt implementation only ever sees Υ >= 3.
_dispatch.register(
    "grt",
    numpy_impl=_leave_one_out_union,
    reference_impl=_reference_grt,
    native_impl=_native_kernels.grt,
    accepts=lambda voters: voters.ndim >= 2,
)
