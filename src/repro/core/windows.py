"""Bit windows A, B and C and their delimiting masks (§3.1).

A pixel's binary representation is partitioned into three contiguous
windows:

* **A** — the most significant bits; so stable across close temporal
  variants that a bitwise inconsistency with the neighbours is very
  likely a flip.  Corrections here need only Υ−1 of the Υ voters.
* **B** — the middle bits; significant enough to matter but not as
  consistent as A.  Corrections require a unanimous vote.
* **C** — the least significant bits, naturally changing with every
  reading; masked off from any change because flips there are
  indistinguishable from natural variation (and cost little anyway).

The delimiters are *dynamic*: they derive from the pruning thresholds
``V_val`` of the voter matrix.  LSB-MASK (the B/C boundary) keeps bits of
weight >= the minimum ``V_val`` over all pairing ways; MSB-MASK (the A/B
boundary) keeps bits of weight >= the maximum ``V_val``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class BitWindows:
    """The pair of masks delimiting windows A/B/C for one dataset.

    Both masks may be scalars (global thresholds) or arrays matching the
    image-coordinate shape (per-coordinate thresholds).  Invariant:
    ``msb_mask`` is always a subset of ``lsb_mask`` (window A lies inside
    the correctable region).
    """

    msb_mask: np.ndarray
    lsb_mask: np.ndarray
    nbits: int

    @classmethod
    def from_thresholds(cls, thresholds: np.ndarray, nbits: int) -> "BitWindows":
        """Derive the masks from per-way ``V_val`` thresholds.

        Args:
            thresholds: uint64 array of shape ``(Υ,)`` or ``(Υ,) + coords``,
                powers of two from :meth:`VoterMatrix.thresholds`.
            nbits: pixel width in bits (16 for NGST, 32 for OTIS patterns).
        """
        thresholds = np.asarray(thresholds, dtype=np.uint64)
        if thresholds.ndim < 1:
            raise DataFormatError("thresholds must have a leading way axis")
        low = np.min(thresholds, axis=0)
        high = np.max(thresholds, axis=0)
        lsb = np.asarray(bitops.mask_at_or_above(low, nbits), dtype=np.uint64)
        msb = np.asarray(bitops.mask_at_or_above(high, nbits), dtype=np.uint64)
        return cls(msb_mask=msb, lsb_mask=lsb, nbits=nbits)

    def window_a(self) -> np.ndarray:
        """Mask of window A bits (most significant, Υ−1 vote rule)."""
        return self.msb_mask

    def window_b(self) -> np.ndarray:
        """Mask of window B bits (unanimity rule)."""
        return self.lsb_mask & ~self.msb_mask

    def window_c(self) -> np.ndarray:
        """Mask of window C bits (never corrected)."""
        full = np.uint64((1 << self.nbits) - 1)
        return full & ~self.lsb_mask

    def combine(self, unanimous: np.ndarray, grt: np.ndarray) -> np.ndarray:
        """Build the final correction vector from the two vote combiners.

        ``Corr = (unanimous | (grt & MSB-MASK)) & LSB-MASK`` — window A
        accepts the relaxed Υ−1 vote, window B requires unanimity, and
        window C is excluded entirely (Algorithm 1's final combination).
        """
        una = unanimous.astype(np.uint64)
        aux = grt.astype(np.uint64)
        corr = (una | (aux & self.msb_mask)) & self.lsb_mask
        return corr
