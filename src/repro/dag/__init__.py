"""Filesystem-recoverable campaign orchestration as a task DAG.

This subsystem generalizes the plan-fusion pass into a real task
graph: every dataset, fault realization, arm score, aggregate, and
figure table is a :class:`TaskNode` with a declared, content-addressed
output artifact, a :class:`TaskGraph` wires them with cycle detection
and derived-key chaining, and a :class:`DagScheduler` walks the graph
in ready-set waves on the :class:`~repro.runtime.Executor` seam.

State is never held in memory between runs: the scheduler reconstructs
completion from the artifact store (one output artifact per node,
payload-hash verified), so a killed campaign resumes exactly at the
frontier and replays bit-identically.  See docs/ORCHESTRATION.md for
the graph model, recovery semantics, and the backend seam.

``repro.dag.report`` (imported explicitly, not re-exported here — it
pulls in every experiment module) materializes the paper's full
reproduction as one graph behind the ``repro report`` CLI.
"""

from repro.dag.build import (
    add_arm_sweep,
    add_pipeline_nodes,
    aggregate_means,
    aggregate_values,
    json_artifact,
    json_payload,
)
from repro.dag.graph import TaskGraph
from repro.dag.node import NODE_KINDS, TaskContext, TaskNode
from repro.dag.scheduler import DagScheduler, DagSurvey

__all__ = [
    "DagScheduler",
    "DagSurvey",
    "NODE_KINDS",
    "TaskContext",
    "TaskGraph",
    "TaskNode",
    "add_arm_sweep",
    "add_pipeline_nodes",
    "aggregate_means",
    "aggregate_values",
    "json_artifact",
    "json_payload",
]
