"""Graph builders: campaign sweeps as dataset→fault→score→aggregate DAGs.

These helpers turn the declarative fusion vocabulary
(:class:`~repro.runtime.DatasetSpec` / :class:`~repro.runtime.FaultSpec`
/ :class:`~repro.runtime.Arm`) into :class:`~repro.dag.TaskNode`
subgraphs that replay the canonical trial protocol *exactly*:

* the dataset node builds from ``default_rng(trial_seed)`` and stores
  the post-generation RNG state, under the **same**
  ``pristine``/``realization`` content keys the fused
  :class:`~repro.runtime.ArtifactPipeline` uses — DAG and fused runs
  share one artifact namespace, so either can warm the other;
* the fault node restores that captured state before drawing the
  injector seed, keeping hits and misses on identical streams;
* score nodes are pure arm evaluations; the aggregate node stacks
  per-trial values per arm, from which means come out bit-identical
  to the fused/unfused paths.

Trial seeds come from ``SeedSequence(seed).spawn(n_trials)`` — the
same spawn tree as :class:`~repro.runtime.TrialPlan` — so a graph run
is bit-identical to the trial-loop run it replaces.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

import numpy as np

from repro.cache.store import CachedArtifact
from repro.dag.graph import TaskGraph
from repro.dag.node import TaskContext, TaskNode
from repro.exceptions import ConfigurationError
from repro.faults.injector import FaultInjector, derive_injector_seed
from repro.runtime.fusion import Arm, ArtifactPipeline, DatasetSpec, FaultSpec


def _dataset_run(dataset: DatasetSpec):
    def run(ctx: TaskContext) -> CachedArtifact:
        rng = ctx.rng
        pristine = dataset.build(rng)
        return CachedArtifact.build(
            {"pristine": pristine}, {"rng_state": rng.bit_generator.state}
        )

    return run


def _fault_run(fault: FaultSpec, dataset_node: str):
    def run(ctx: TaskContext) -> CachedArtifact:
        upstream = ctx.input(dataset_node)
        rng = ctx.rng
        rng.bit_generator.state = upstream.meta["rng_state"]
        injector = FaultInjector(fault.model, seed=derive_injector_seed(rng))
        corrupted, _ = injector.inject(np.asarray(upstream.arrays["pristine"]))
        return CachedArtifact.build({"corrupted": corrupted})

    return run


def add_pipeline_nodes(
    graph: TaskGraph,
    pipeline: ArtifactPipeline,
    trial_seed: np.random.SeedSequence,
) -> tuple[str, str]:
    """Add one trial's dataset (and fault) nodes; idempotent.

    Returns ``(dataset_node, corrupted_node)`` — the same name twice
    when the pipeline has no fault spec (arms then score the pristine
    array, matching :meth:`ArtifactPipeline.produce`).  Node names are
    prefixes of the artifact content keys, so two figures sharing a
    (config, seed) trial share one node via :meth:`TaskGraph.ensure`.
    """
    pristine_key = pipeline.pristine_key(trial_seed)
    dataset_node = f"dataset/{pristine_key[:12]}"
    graph.ensure(
        TaskNode(
            name=dataset_node,
            kind="dataset",
            run=_dataset_run(pipeline.dataset),
            key_parts=("pristine", pipeline.dataset.key_parts),
            seed=trial_seed,
            explicit_key=pristine_key,
        )
    )
    if pipeline.fault is None:
        return dataset_node, dataset_node
    realization_key = pipeline.realization_key(trial_seed)
    fault_node = f"fault/{realization_key[:12]}"
    graph.ensure(
        TaskNode(
            name=fault_node,
            kind="fault",
            run=_fault_run(pipeline.fault, dataset_node),
            inputs=(dataset_node,),
            key_parts=("realization", pipeline.fault.key_parts),
            seed=trial_seed,
            explicit_key=realization_key,
        )
    )
    return dataset_node, fault_node


def _score_run(arm: Arm, dataset_node: str, corrupted_node: str):
    def run(ctx: TaskContext) -> CachedArtifact:
        pristine = ctx.array(dataset_node, "pristine")
        if corrupted_node == dataset_node:
            corrupted = pristine
        else:
            corrupted = ctx.array(corrupted_node, "corrupted")
        value = arm.evaluate(corrupted, pristine)
        return CachedArtifact.build(
            {"value": np.asarray(value, dtype=np.float64)}
        )

    return run


def _aggregate_run(arm_names: tuple[str, ...], score_nodes: dict):
    def run(ctx: TaskContext) -> CachedArtifact:
        arrays = {}
        n_trials = len(score_nodes[arm_names[0]])
        for index, arm_name in enumerate(arm_names):
            arrays[f"values_{index}"] = np.stack(
                [
                    ctx.array(node_name, "value")
                    for node_name in score_nodes[arm_name]
                ]
            )
        return CachedArtifact.build(
            arrays, {"arms": list(arm_names), "n_trials": n_trials}
        )

    return run


def add_arm_sweep(
    graph: TaskGraph,
    prefix: str,
    arms: Sequence[Arm],
    dataset: DatasetSpec,
    fault: FaultSpec | object | None,
    n_trials: int,
    seed: int,
) -> str:
    """Add a full averaged-arm sweep subgraph; returns its aggregate node.

    One dataset + fault node pair per trial (shared across arms — the
    explicit point of the DAG, as of fusion before it), one pure score
    node per (trial, arm), and one aggregate node stacking each arm's
    per-trial values.  *fault* may be a :class:`FaultSpec`, a bare
    fault model exposing ``cache_key_parts()``, or None for pristine
    evaluation.
    """
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    arms = tuple(arms)
    names = [arm.name for arm in arms]
    if not arms or len(set(names)) != len(names):
        raise ConfigurationError(
            f"arm sweep needs uniquely named arms, got {names}"
        )
    if fault is not None and not isinstance(fault, FaultSpec):
        fault = FaultSpec.of(fault)
    pipeline = ArtifactPipeline(dataset=dataset, fault=fault)
    trial_seeds = np.random.SeedSequence(seed).spawn(n_trials)
    score_nodes: dict[str, list[str]] = {name: [] for name in names}
    for trial, trial_seed in enumerate(trial_seeds):
        dataset_node, corrupted_node = add_pipeline_nodes(
            graph, pipeline, trial_seed
        )
        inputs = (
            (dataset_node,)
            if corrupted_node == dataset_node
            else (dataset_node, corrupted_node)
        )
        for arm in arms:
            score_node = f"{prefix}/t{trial:03d}/{arm.name}"
            graph.add(
                TaskNode(
                    name=score_node,
                    kind="score",
                    run=_score_run(arm, dataset_node, corrupted_node),
                    inputs=inputs,
                    key_parts=("score", arm.name),
                )
            )
            score_nodes[arm.name].append(score_node)
    aggregate_node = f"{prefix}/aggregate"
    graph.add(
        TaskNode(
            name=aggregate_node,
            kind="aggregate",
            run=_aggregate_run(tuple(names), score_nodes),
            inputs=tuple(
                node for arm_name in names for node in score_nodes[arm_name]
            ),
            key_parts=("aggregate", tuple(names), n_trials, seed),
        )
    )
    return aggregate_node


def aggregate_values(artifact: CachedArtifact) -> dict[str, np.ndarray]:
    """Per-arm stacked trial values from an aggregate node's artifact."""
    return {
        arm_name: artifact.arrays[f"values_{index}"]
        for index, arm_name in enumerate(artifact.meta["arms"])
    }


def aggregate_means(artifact: CachedArtifact) -> dict[str, float]:
    """Per-arm mean values — the classic ``averaged_arms`` result shape."""
    return {
        arm_name: float(np.mean(values))
        for arm_name, values in aggregate_values(artifact).items()
    }


def json_artifact(payload, meta: dict | None = None) -> CachedArtifact:
    """Wrap a JSON-able *payload* as a content-verifiable artifact.

    Figure tables and experiment panels store their results this way:
    the canonical UTF-8 JSON bytes live in a uint8 array, so the disk
    tier's payload hash covers the table content itself and a resumed
    report is byte-comparable to a fresh one.
    """
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return CachedArtifact.build(
        {"json": np.frombuffer(encoded, dtype=np.uint8)}, meta
    )


def json_payload(artifact: CachedArtifact):
    """The JSON payload stored by :func:`json_artifact`."""
    return json.loads(bytes(artifact.arrays["json"]).decode("utf-8"))
