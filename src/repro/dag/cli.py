"""The ``repro report`` and ``repro dag`` subcommands.

``repro report`` materializes the paper — all 15 experiments, or a
``--only`` subset — as **one DAG run**:

    repro report [--quick] [--only fig2,fig4] [--jobs N | --threads N]
                 [--backend serial|thread|process|cluster]
                 [--workers host:port,host:port]
                 [--resume] [--plan] [--progress]
                 [--cache-dir DIR] [--out REPORT.md] [--json PANELS.json]
    repro report --from-json PANELS.json --out REPORT.md   # render only

``--resume`` recovers completed nodes from the artifact store (state
is purely the filesystem — kill the run anywhere, run again with
``--resume``, get byte-identical output); ``--plan`` prints the graph
and its cache temperature without executing anything; ``--from-json``
renders an existing panels dump (the legacy ``repro report`` mode).

``repro dag show`` inspects any campaign graph without running it:

    repro dag show [report|EXPERIMENT] [--quick] [--only IDS]
                   [--dot] [--cache-dir DIR]

``--dot`` emits Graphviz (completed nodes double-bordered when the
cache already holds their artifacts).  See docs/ORCHESTRATION.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cache.store import ArtifactCache
from repro.dag.report import PANELS_NODE, build_report_graph
from repro.dag.scheduler import DagScheduler, DagSurvey
from repro.exceptions import ReproError
from repro.runtime import (
    BACKEND_CHOICES,
    ProgressPrinter,
    Telemetry,
    resolve_backend,
)

#: Default on-disk artifact store, shared with ``repro cache`` and the
#: experiment commands' ``--cache-dir``.
DEFAULT_CACHE_DIR = ".repro-cache"


def _parse_only(value: str | None) -> list[str] | None:
    if value is None:
        return None
    ids = [entry.strip() for entry in value.split(",") if entry.strip()]
    return ids or None


def _survey_cache(cache_dir: str) -> ArtifactCache:
    """A read-only-ish cache for surveys: disk tier only, no LRU churn."""
    directory = Path(cache_dir)
    if directory.is_dir():
        return ArtifactCache(max_memory_bytes=0, directory=directory)
    return ArtifactCache(max_memory_bytes=0)


def format_plan(survey: DagSurvey, cache_dir: str | None = None) -> str:
    """The dry-run rendering of a survey: totals, kinds, waves."""
    graph = survey.graph
    lines = [
        f"DAG {graph.name!r}: {survey.n_nodes} node(s), "
        f"{survey.n_done} done, {survey.n_pending} pending "
        f"(cache temperature {survey.temperature:.0%}"
        + (f", store: {cache_dir})" if cache_dir else ")")
    ]
    by_kind = survey.by_kind()
    if by_kind:
        width = max(len(kind) for kind in by_kind)
        lines.append(f"  {'kind':<{width}}  done  pending")
        for kind, (done, pending) in by_kind.items():
            lines.append(f"  {kind:<{width}}  {done:>4}  {pending:>7}")
    for index, wave in enumerate(survey.waves()):
        kinds: dict[str, int] = {}
        for name in wave:
            kind = graph.node(name).kind
            kinds[kind] = kinds.get(kind, 0) + 1
        summary = ", ".join(f"{count} {kind}" for kind, count in kinds.items())
        lines.append(f"  wave {index}: {len(wave)} node(s) ready ({summary})")
    if not survey.pending():
        lines.append("  nothing to execute: a run would replay from the store")
    return "\n".join(lines)


def report_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro report``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Reproduce the paper's experiments as one resumable "
        "DAG run and render the result tables.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced grids for a fast run"
    )
    parser.add_argument(
        "--only",
        metavar="IDS",
        help="comma-separated experiment ids (default: every experiment)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for graph nodes (default 1 = serial; "
        "results are bit-identical at any N)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=0,
        metavar="N",
        help="worker threads instead of processes (mutually exclusive "
        "with --jobs)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="execution backend (default: inferred from --jobs/--threads/"
        "--workers; results are bit-identical for every choice)",
    )
    parser.add_argument(
        "--workers",
        metavar="ADDRS",
        default=None,
        help="cluster worker addresses as host:port[,host:port…] "
        "(start workers with 'repro worker'; implies --backend cluster)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="recover nodes whose output artifacts already verify in the "
        "store instead of re-running them (state is purely the "
        "filesystem: kill anywhere, rerun with --resume, get "
        "byte-identical output)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="print the graph and cache temperature, execute nothing",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-node telemetry to stderr",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="artifact store directory (default: %(default)s)",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the Markdown report to PATH"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="dump the panels as JSON to PATH"
    )
    parser.add_argument(
        "--from-json",
        dest="from_json",
        metavar="PATH",
        help="render an existing panels dump (a 'repro all --json' or "
        "'repro report --json' file) to --out without running anything",
    )
    parser.add_argument(
        "--title",
        default="Regenerated results",
        help="report title for --out (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.threads < 0:
        print(f"--threads must be >= 1, got {args.threads}", file=sys.stderr)
        return 2
    if args.threads and args.jobs > 1:
        print("--threads and --jobs are mutually exclusive", file=sys.stderr)
        return 2

    if args.from_json:
        from repro.experiments.report import write_report

        if not args.out:
            print(
                "report --from-json requires --out REPORT.md", file=sys.stderr
            )
            return 2
        try:
            count = write_report(args.from_json, args.out, title=args.title)
        except (OSError, ReproError) as exc:
            print(f"report failed: {exc}", file=sys.stderr)
            return 2
        print(f"rendered {count} panel(s) to {args.out}")
        return 0

    only = _parse_only(args.only)
    try:
        graph = build_report_graph(only, quick=args.quick)
    except ReproError as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 2

    if args.plan:
        scheduler = DagScheduler(cache=_survey_cache(args.cache_dir))
        survey = scheduler.survey(graph, targets=(PANELS_NODE,))
        print(format_plan(survey, args.cache_dir))
        return 0

    from repro.cli import probe_writable

    problem = probe_writable(Path(args.cache_dir))
    if problem:
        print(
            problem.replace("--checkpoint-dir", "--cache-dir"), file=sys.stderr
        )
        return 2

    telemetry = None
    if args.progress:
        telemetry = Telemetry()
        telemetry.subscribe(ProgressPrinter())
    try:
        backend = resolve_backend(
            args.backend, jobs=args.jobs, threads=args.threads,
            workers=args.workers,
        )
    except ReproError as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 2
    scheduler = DagScheduler(
        cache=ArtifactCache(directory=Path(args.cache_dir)),
        backend=backend,
        telemetry=telemetry,
    )
    try:
        outputs = scheduler.run(
            graph, targets=(PANELS_NODE,), recover=args.resume
        )
    except ReproError as exc:
        print(f"report failed: {exc}", file=sys.stderr)
        return 2
    finally:
        stats = getattr(backend, "stats", None)
        if callable(stats):
            for label, worker in sorted(stats().items()):
                w = worker.as_dict()
                print(
                    f"worker {label}: {w['shards']} shard(s), "
                    f"{w['bytes_sent']}B out / {w['bytes_received']}B in, "
                    f"{w['artifact_pulls']} pull(s) "
                    f"({w['pulled_bytes']}B), cache hit rate "
                    f"{w['cache_hit_rate']:.0%}, "
                    f"{w['redispatches']} re-dispatch(es)",
                    file=sys.stderr,
                )
        close = getattr(backend, "close", None)
        if callable(close):
            close()

    from repro.dag.build import json_payload
    from repro.experiments.common import ExperimentResult
    from repro.experiments.report import results_to_markdown

    panels = json_payload(outputs[PANELS_NODE])
    results = [ExperimentResult.from_dict(panel) for panel in panels]
    for result in results:
        print(result.to_table())
        print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(panels, fh, indent=2)
        print(f"wrote {len(panels)} result panel(s) to {args.json}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(results_to_markdown(results, title=args.title))
            fh.write("\n")
        print(f"rendered {len(panels)} panel(s) to {args.out}")
    return 0


def dag_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro dag``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro dag",
        description="Inspect campaign task graphs without running them.",
    )
    parser.add_argument("action", choices=("show",))
    parser.add_argument(
        "target",
        nargs="?",
        default="report",
        help="'report' (the full-paper graph) or one experiment id "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="build the graph with the --quick parameter overrides",
    )
    parser.add_argument(
        "--only",
        metavar="IDS",
        help="('report' target only) comma-separated experiment ids",
    )
    parser.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT on stdout instead of a text summary",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="artifact store to survey for completed nodes "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.target == "report":
        only = _parse_only(args.only)
    elif args.only:
        print("--only applies to the 'report' target", file=sys.stderr)
        return 2
    else:
        only = [args.target]
    try:
        graph = build_report_graph(only, quick=args.quick)
        scheduler = DagScheduler(cache=_survey_cache(args.cache_dir))
        survey = scheduler.survey(graph, targets=(PANELS_NODE,))
    except ReproError as exc:
        print(f"dag show failed: {exc}", file=sys.stderr)
        return 2
    if args.dot:
        print(graph.to_dot(done=survey.done), end="")
        return 0
    print(format_plan(survey, args.cache_dir))
    return 0
