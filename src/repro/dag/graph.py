"""The campaign task graph: nodes, edges, keys, and topology.

A :class:`TaskGraph` is a named collection of :class:`TaskNode` entries
whose ``inputs`` reference other nodes by name.  It owns the two
derived structures everything else builds on:

* **output keys** — each node's content address in the artifact store.
  Dataset/fault nodes carry explicit keys (shared with the fused
  pipeline); every other node's key is derived by hashing its kind,
  key parts, and seed together with its dependencies' output keys, so
  changing any upstream spec transparently re-addresses (and therefore
  invalidates) the whole downstream subtree.
* **topological order** — Kahn's algorithm over the declared edges,
  stable in insertion order; a cycle raises
  :class:`~repro.exceptions.ConfigurationError` naming the offending
  path.

Graphs are cheap, in-memory descriptions; nothing here touches the
filesystem.  Execution and recovery live in
:mod:`repro.dag.scheduler`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cache.fingerprint import fingerprint
from repro.dag.node import TaskNode
from repro.exceptions import ConfigurationError


class TaskGraph:
    """A named DAG of :class:`TaskNode` entries.

    Args:
        name: graph name, used in telemetry and display.
    """

    def __init__(self, name: str = "dag") -> None:
        if not name:
            raise ConfigurationError("graph name must be non-empty")
        self.name = name
        self._nodes: dict[str, TaskNode] = {}
        self._keys: dict[str, str] = {}
        self._order: tuple[str, ...] | None = None

    # -- construction -----------------------------------------------------

    def add(self, node: TaskNode) -> TaskNode:
        """Add *node*; duplicate names are a configuration error.

        Dependencies may be added in any order — unknown input names
        are tolerated until :meth:`validate` (or any traversal) runs.
        """
        if node.name in self._nodes:
            raise ConfigurationError(
                f"graph {self.name!r} already has a node named {node.name!r}"
            )
        self._nodes[node.name] = node
        self._invalidate()
        return node

    def ensure(self, node: TaskNode) -> TaskNode:
        """Add *node*, or return the existing node of the same name.

        Shared upstream work (a dataset consumed by several figures)
        is deduplicated here: re-adding a structurally identical node
        is a no-op, while a name collision between *different* nodes —
        same name, different identity — is a configuration error.
        """
        existing = self._nodes.get(node.name)
        if existing is None:
            return self.add(node)
        if existing.identity() != node.identity():
            raise ConfigurationError(
                f"graph {self.name!r}: node name {node.name!r} reused for a "
                f"structurally different node"
            )
        return existing

    def merge(self, other: "TaskGraph") -> None:
        """Fold every node of *other* into this graph via :meth:`ensure`."""
        for name in other:
            self.ensure(other.node(name))

    def _invalidate(self) -> None:
        self._keys.clear()
        self._order = None

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[str]:
        """Node names in insertion order."""
        return iter(self._nodes)

    def node(self, name: str) -> TaskNode:
        """The node called *name* (loud on typos)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(
                f"graph {self.name!r} has no node named {name!r}"
            ) from None

    def dependents(self) -> dict[str, tuple[str, ...]]:
        """Reverse adjacency: node name → names that consume its output."""
        out: dict[str, list[str]] = {name: [] for name in self._nodes}
        for name, node in self._nodes.items():
            for dep in node.inputs:
                if dep in out:
                    out[dep].append(name)
        return {name: tuple(consumers) for name, consumers in out.items()}

    def sinks(self) -> tuple[str, ...]:
        """Names of nodes nothing consumes, in insertion order."""
        consumed = {dep for node in self._nodes.values() for dep in node.inputs}
        return tuple(name for name in self._nodes if name not in consumed)

    def kind_counts(self) -> dict[str, int]:
        """Node count per kind, in first-seen order."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    # -- topology ---------------------------------------------------------

    def validate(self) -> "TaskGraph":
        """Check edges resolve and the graph is acyclic; returns self."""
        for node in self._nodes.values():
            for dep in node.inputs:
                if dep not in self._nodes:
                    raise ConfigurationError(
                        f"node {node.name!r} depends on unknown node {dep!r}"
                    )
        self.topo_order()
        return self

    def topo_order(self) -> tuple[str, ...]:
        """Topological node order (Kahn), stable in insertion order."""
        if self._order is not None:
            return self._order
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                if dep not in self._nodes:
                    raise ConfigurationError(
                        f"node {node.name!r} depends on unknown node {dep!r}"
                    )
                indegree[node.name] += 1
        dependents = self.dependents()
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for consumer in dependents[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            raise ConfigurationError(
                f"graph {self.name!r} has a cycle: {' -> '.join(self._find_cycle())}"
            )
        self._order = tuple(order)
        return self._order

    def _find_cycle(self) -> list[str]:
        """One concrete cycle path, for the error message."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._nodes}
        parent: dict[str, str] = {}
        for start in self._nodes:
            if color[start] != WHITE:
                continue
            stack = [(start, iter(self._nodes[start].inputs))]
            color[start] = GREY
            while stack:
                name, deps = stack[-1]
                advanced = False
                for dep in deps:
                    if color[dep] == GREY:
                        # Found it: walk parents back from name to dep.
                        path = [dep, name]
                        cursor = name
                        while cursor != dep:
                            cursor = parent[cursor]
                            path.append(cursor)
                        path.reverse()
                        return path
                    if color[dep] == WHITE:
                        color[dep] = GREY
                        parent[dep] = name
                        stack.append((dep, iter(self._nodes[dep].inputs)))
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    stack.pop()
        return []  # pragma: no cover - only called when a cycle exists

    # -- content addressing -----------------------------------------------

    def output_key(self, name: str) -> str:
        """The content key node *name*'s output artifact is stored under.

        Derived keys chain structurally: they hash the node's kind,
        key parts, and seed together with the output keys of every
        dependency (in declared order), so any change anywhere upstream
        re-addresses this node and its whole subtree.
        """
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.explicit_key is not None:
            key = node.explicit_key
        else:
            key = fingerprint(
                "dag-node",
                node.kind,
                node.key_parts,
                node.seed,
                [self.output_key(dep) for dep in node.inputs],
            )
        self._keys[name] = key
        return key

    # -- rendering --------------------------------------------------------

    def to_dot(self, done: frozenset[str] | set[str] | None = None) -> str:
        """Graphviz DOT rendering, one subgraph-free digraph.

        Nodes are shaded by kind; when *done* is given (a set of node
        names, typically from a recovery survey), completed nodes get a
        double border so cache temperature is visible at a glance.
        """
        palette = {
            "dataset": "#cfe8ff",
            "fault": "#ffd9cc",
            "score": "#e4d9ff",
            "aggregate": "#d5f0d5",
            "figure": "#fff3bf",
            "experiment": "#f5d5e8",
        }
        done = done or frozenset()
        lines = [
            f'digraph "{self.name}" {{',
            "  rankdir=LR;",
            '  node [shape=box, style=filled, fontname="monospace"];',
        ]
        for name in self.topo_order():
            node = self._nodes[name]
            fill = palette.get(node.kind, "#eeeeee")
            peripheries = ", peripheries=2" if name in done else ""
            lines.append(
                f'  "{name}" [label="{name}\\n({node.kind})", '
                f'fillcolor="{fill}"{peripheries}];'
            )
        for name in self.topo_order():
            for dep in self._nodes[name].inputs:
                lines.append(f'  "{dep}" -> "{name}";')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(f"{k}={n}" for k, n in self.kind_counts().items())
        return f"TaskGraph({self.name!r}, {len(self)} nodes: {kinds})"
