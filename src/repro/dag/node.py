"""Task nodes: the unit of work in a campaign graph.

A :class:`TaskNode` declares everything the scheduler needs to run it
— its dependencies (by node name), the canonical identity of its
output artifact (reusing :mod:`repro.cache` content addressing), its
``SeedSequence`` entropy when the work consumes randomness — plus a
pure run function that maps the dependency artifacts to one output
:class:`~repro.cache.CachedArtifact`.  One node, one output artifact:
that invariant is what makes a killed campaign recoverable purely from
the filesystem (see :mod:`repro.dag.scheduler`).

Run functions must be *pure* in the same sense as fused arms: the
output must be a deterministic function of the input artifacts, the
node's key parts, and its declared seed.  Anything else that changes
the output must be folded into ``key_parts``, or a stale artifact will
be served where a fresh run was needed.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.cache.fingerprint import fingerprint
from repro.cache.store import CachedArtifact
from repro.exceptions import ConfigurationError, DagError

#: Canonical node kinds, in rough pipeline order.  Kinds drive display
#: grouping and the ``repro cache stats`` breakdown; they are labels,
#: not behavior — any non-empty string is accepted.
NODE_KINDS = ("dataset", "fault", "score", "aggregate", "figure", "experiment")


@dataclass
class TaskContext:
    """What a node's run function sees: its inputs, resolved and loaded.

    Attributes:
        node: the node being run.
        inputs: dependency name → that dependency's output artifact.
        output_key: the content key the node's output will be stored
            under (useful for logging; the scheduler handles storage).
        rng: ``default_rng(node.seed)`` when the node declared entropy,
            else a generator seeded from the node's output key (so an
            undeclared draw is at least deterministic, though declared
            seeds are the supported protocol).
    """

    node: "TaskNode"
    inputs: Mapping[str, CachedArtifact]
    output_key: str
    rng: np.random.Generator

    def input(self, name: str) -> CachedArtifact:
        """The artifact produced by dependency *name* (loud on typos)."""
        try:
            return self.inputs[name]
        except KeyError:
            raise DagError(
                f"node {self.node.name!r} asked for input {name!r} but "
                f"declared inputs {list(self.node.inputs)}"
            ) from None

    def array(self, dep: str, name: str) -> np.ndarray:
        """Array *name* from dependency *dep*'s output artifact."""
        artifact = self.input(dep)
        try:
            return artifact.arrays[name]
        except KeyError:
            raise DagError(
                f"input {dep!r} of node {self.node.name!r} has no array "
                f"{name!r} (has {sorted(artifact.arrays)})"
            ) from None


#: A node's run function: context in, output artifact out.  Returning a
#: plain ``{name: array}`` mapping is accepted and normalised.
RunFn = Callable[[TaskContext], "CachedArtifact | Mapping[str, np.ndarray]"]


@dataclass(frozen=True)
class TaskNode:
    """One unit of work with a declared, content-addressed output.

    Attributes:
        name: unique node name within its graph (also the display and
            dependency-reference handle).
        kind: coarse node category — see :data:`NODE_KINDS`.
        run: pure run function, see :data:`RunFn`.
        inputs: names of the nodes whose outputs this node consumes, in
            the order the run function expects to find them.
        key_parts: canonical identity of the node's own configuration
            (everything that changes the output and is not an input
            artifact or the seed), in :func:`repro.cache.canonicalize`
            vocabulary.
        seed: the node's ``SeedSequence`` entropy when the run function
            draws randomness; None for pure transforms.
        explicit_key: fixed output content key, overriding derivation.
            The dataset/fault builders use this to store under the same
            ``pristine``/``realization`` keys as the fused pipeline, so
            DAG and fused runs share one artifact namespace.
    """

    name: str
    kind: str
    run: RunFn
    inputs: tuple[str, ...] = ()
    key_parts: tuple = ()
    seed: np.random.SeedSequence | None = None
    explicit_key: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"node name must be a non-empty string, got {self.name!r}")
        if not self.kind or not isinstance(self.kind, str):
            raise ConfigurationError(
                f"node {self.name!r}: kind must be a non-empty string, got {self.kind!r}"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise ConfigurationError(
                f"node {self.name!r} declares duplicate inputs: {list(self.inputs)}"
            )
        if self.name in self.inputs:
            raise ConfigurationError(f"node {self.name!r} depends on itself")

    def identity(self) -> str:
        """Structural fingerprint used to deduplicate merged graphs.

        Two nodes are interchangeable when their kind, key parts, seed,
        dependency list, and explicit key all match — the run function
        is deliberately excluded, mirroring :class:`DatasetSpec`'s
        contract that ``key_parts`` fully determine the output.
        """
        return fingerprint(
            "node-identity",
            self.kind,
            self.key_parts,
            self.seed,
            list(self.inputs),
            self.explicit_key,
        )


def normalize_output(node: TaskNode, out: object) -> CachedArtifact:
    """Coerce a run function's return value into a :class:`CachedArtifact`."""
    if isinstance(out, CachedArtifact):
        return out
    if isinstance(out, Mapping):
        return CachedArtifact.build(out)
    raise DagError(
        f"node {node.name!r} returned {type(out).__name__}; run functions "
        f"must return a CachedArtifact or a name->array mapping"
    )
