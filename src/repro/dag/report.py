"""The full paper as one task graph: every experiment, one DAG run.

:func:`build_report_graph` assembles all 15 registered experiments
into a single :class:`~repro.dag.TaskGraph`.  Figures with graph
builders (fig2, fig4) expand fine-grained — per-trial dataset/fault
nodes, per-arm score nodes — so a kill mid-figure resumes mid-figure;
the remaining experiments run as one coarse ``experiment`` node each
(their ``run()`` loops are already deterministic and cached
internally), which still gives per-experiment recovery and cross-
experiment parallelism under ``--jobs``.  A final ``report/panels``
node concatenates every panel, in registry order, into one canonical
JSON artifact — the content the ``repro report`` CLI renders to
Markdown.

Because every node's output lives in the artifact store under a
content key, a report run killed at any point restarts as a survey
plus the remaining frontier and produces byte-identical panels; see
docs/ORCHESTRATION.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.dag.build import json_artifact, json_payload
from repro.dag.graph import TaskGraph
from repro.dag.node import TaskNode
from repro.dag.scheduler import DagScheduler
from repro.exceptions import ConfigurationError

#: The sink node every report graph ends in.
PANELS_NODE = "report/panels"

#: Experiments with fine-grained graph builders; everything else runs
#: as one coarse ``experiment`` node.
_FINE_GRAINED = ("fig2", "fig4")


def quick_overrides(experiment_id: str) -> dict:
    """The ``--quick`` parameter overrides for *experiment_id*."""
    from repro.cli import _QUICK_OVERRIDES

    return dict(_QUICK_OVERRIDES.get(experiment_id, {}))


def _experiment_run(experiment_id: str, overrides: dict):
    def run(ctx) -> object:
        from repro.experiments.registry import run_experiment

        results = run_experiment(experiment_id, **overrides)
        return json_artifact([result.to_dict() for result in results])

    return run


def _panels_run(terminals: tuple[str, ...]):
    def run(ctx) -> object:
        panels = []
        for terminal in terminals:
            panels.extend(json_payload(ctx.input(terminal)))
        return json_artifact(panels)

    return run


def _figure_subgraph(experiment_id: str, overrides: dict):
    if experiment_id == "fig2":
        from repro.experiments import figure2

        return figure2.graph(**overrides), figure2.TABLE_NODE
    from repro.experiments import figure4

    return figure4.graph(**overrides), figure4.TABLE_NODE


def build_report_graph(
    experiment_ids: Iterable[str] | None = None, quick: bool = False
) -> TaskGraph:
    """Every requested experiment as one graph ending in :data:`PANELS_NODE`.

    Args:
        experiment_ids: which experiments to include, in the given
            order after deduplication; default is every registered
            experiment in sorted-id order (the ``repro all`` order).
        quick: apply the CLI's ``--quick`` parameter overrides; the
            overrides are folded into the experiment nodes' content
            keys, so quick and full artifacts never collide.
    """
    from repro.experiments.registry import REGISTRY

    if experiment_ids is None:
        ids = sorted(REGISTRY)
    else:
        ids = list(dict.fromkeys(experiment_ids))
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        raise ConfigurationError(
            f"unknown experiment(s): {unknown}; choose from {sorted(REGISTRY)}"
        )
    if not ids:
        raise ConfigurationError("need at least one experiment id")
    graph = TaskGraph("report")
    terminals = []
    for experiment_id in ids:
        overrides = quick_overrides(experiment_id) if quick else {}
        if experiment_id in _FINE_GRAINED:
            subgraph, table = _figure_subgraph(experiment_id, overrides)
            graph.merge(subgraph)
            terminals.append(table)
        else:
            node = f"{experiment_id}/experiment"
            graph.add(
                TaskNode(
                    name=node,
                    kind="experiment",
                    run=_experiment_run(experiment_id, overrides),
                    key_parts=("experiment", experiment_id, overrides),
                )
            )
            terminals.append(node)
    graph.add(
        TaskNode(
            name=PANELS_NODE,
            kind="aggregate",
            run=_panels_run(tuple(terminals)),
            inputs=tuple(terminals),
            key_parts=("report-panels", tuple(ids)),
        )
    )
    return graph


def run_report(
    scheduler: DagScheduler,
    experiment_ids: Iterable[str] | None = None,
    quick: bool = False,
    recover: bool = True,
) -> "list":
    """Run the report graph; returns the panels as ExperimentResults."""
    from repro.experiments.common import ExperimentResult

    graph = build_report_graph(experiment_ids, quick)
    outputs = scheduler.run(graph, targets=(PANELS_NODE,), recover=recover)
    return [
        ExperimentResult.from_dict(panel)
        for panel in json_payload(outputs[PANELS_NODE])
    ]


def panels_to_results(panels: Sequence[dict]) -> "list":
    """Decode raw panel dicts into ExperimentResults."""
    from repro.experiments.common import ExperimentResult

    return [ExperimentResult.from_dict(panel) for panel in panels]
