"""Ready-set DAG execution with filesystem-recoverable state.

The scheduler never holds campaign state in memory between runs.  At
startup it *surveys* the artifact store: a node is done exactly when
its output artifact exists and verifies (payload SHA-256, checked by
:meth:`~repro.cache.ArtifactCache.contains`) **and** every ancestor is
done too.  The recursive condition is what gives subtree-precise
recovery: corrupt or delete one artifact and only that node and its
descendants re-execute, while unrelated branches replay as no-ops.  A
campaign killed at any instant therefore restarts as a survey plus
live execution of the remaining frontier, bit-identical to an
uninterrupted run — there is no session file to lose or mismatch.

Execution walks the graph in ready-set waves on the existing
:class:`~repro.runtime.Executor` seam: every node whose dependencies
are done is dispatched as a one-trial shard, so the serial, thread,
and process-pool backends (and any future multi-host backend speaking
the same interface) run graphs unchanged.  Workers return the output
artifact's arrays and metadata; **publication happens only in the
parent**, after the worker result is consumed, so a crash anywhere
between node start and publication simply re-runs the node — the
atomic payload-then-sidecar publication in :mod:`repro.cache.store`
guarantees a torn write reads as absent.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.cache.store import ArtifactCache, CachedArtifact
from repro.dag.graph import TaskGraph
from repro.dag.node import TaskContext, TaskNode, normalize_output
from repro.exceptions import DagError
from repro.runtime.backend import Executor, SerialBackend
from repro.runtime.plan import Shard
from repro.runtime.telemetry import (
    DagCompleted,
    DagStarted,
    NodeCompleted,
    Telemetry,
)


@dataclass(frozen=True)
class DagSurvey:
    """What the artifact store says about a graph's completion state.

    Attributes:
        graph: the surveyed graph.
        order: the surveyed nodes in topological order (the ancestor
            closure of the run's targets).
        done: names of nodes that will replay as no-ops — their output
            artifact verified *and* all their ancestors are done.
    """

    graph: TaskGraph
    order: tuple[str, ...]
    done: frozenset[str]

    @property
    def n_nodes(self) -> int:
        return len(self.order)

    @property
    def n_done(self) -> int:
        return len(self.done)

    @property
    def n_pending(self) -> int:
        return self.n_nodes - self.n_done

    @property
    def temperature(self) -> float:
        """Fraction of the run already materialised (0 cold … 1 warm)."""
        return self.n_done / self.n_nodes if self.order else 1.0

    def pending(self) -> tuple[str, ...]:
        """Nodes that will execute, in topological order."""
        return tuple(name for name in self.order if name not in self.done)

    def by_kind(self) -> dict[str, tuple[int, int]]:
        """Per-kind ``(done, pending)`` counts, in first-seen order."""
        out: dict[str, list[int]] = {}
        for name in self.order:
            kind = self.graph.node(name).kind
            slot = out.setdefault(kind, [0, 0])
            slot[0 if name in self.done else 1] += 1
        return {kind: (d, p) for kind, (d, p) in out.items()}

    def waves(self) -> list[list[str]]:
        """Pending nodes grouped into dispatch waves.

        Wave *i* holds the pending nodes whose pending ancestors all
        sit in earlier waves — the order the scheduler will actually
        release work, useful for ``--plan`` output.
        """
        level: dict[str, int] = {}
        waves: list[list[str]] = []
        for name in self.order:
            if name in self.done:
                continue
            deps = [
                level[dep]
                for dep in self.graph.node(name).inputs
                if dep in level
            ]
            depth = (max(deps) + 1) if deps else 0
            level[name] = depth
            while len(waves) <= depth:
                waves.append([])
            waves[depth].append(name)
        return waves


@dataclass(frozen=True)
class _NodeFailure:
    """Picklable marker a worker ships back instead of an artifact."""

    name: str
    error: str
    details: str


def _context_rng(node: TaskNode, output_key: str) -> np.random.Generator:
    if node.seed is not None:
        return np.random.default_rng(node.seed)
    # Seedless nodes should not draw, but give them a deterministic
    # stream derived from their content address rather than a footgun.
    return np.random.default_rng(int(output_key[:16], 16))


class _NodeShardFn:
    """A :data:`~repro.runtime.ShardFn` running one graph node per shard.

    *batch* maps shard index → (node, input keys, output key).  Inputs
    travel as content addresses, not payloads: in-process backends (and
    fork-inherited pool workers) resolve them through the scheduler's
    own cache reference, while cluster workers — which receive this
    object with the cache stripped via :meth:`for_cluster` — resolve
    them through their :func:`~repro.cluster.store.current_store`
    (local cache first, coordinator pull on miss) and publish their
    computed output locally so later waves hit without a transfer.
    Node exceptions come back as :class:`_NodeFailure` values so
    sibling nodes in the same wave still publish before the run aborts.
    """

    def __init__(
        self,
        batch: dict[int, tuple[TaskNode, dict[str, str], str]],
        cache: ArtifactCache | None = None,
    ) -> None:
        self.batch = batch
        self.cache = cache

    def for_cluster(self) -> "_NodeShardFn":
        """The shippable form: keys only, no cache reference (locks
        don't pickle; workers bring their own store)."""
        return _NodeShardFn(self.batch, cache=None)

    def _resolve(self, name: str, key: str) -> CachedArtifact:
        if self.cache is not None:
            artifact = self.cache.get(key)
            if artifact is None:
                raise DagError(
                    f"artifact for node {name!r} (key {key[:12]}…) vanished "
                    f"from the cache between publication and use; raise the "
                    f"cache's memory/disk caps or give it a directory"
                )
            return artifact
        from repro.cluster.store import current_store

        store = current_store()
        if store is None:
            raise DagError(
                f"no artifact source in this process for node {name!r}: "
                f"the shard function was shipped without its cache but no "
                f"worker store is active"
            )
        return store.fetch(key)

    def __call__(self, shard: Shard) -> list:
        node, input_keys, output_key = self.batch[shard.index]
        try:
            inputs = {
                dep: self._resolve(dep, key) for dep, key in input_keys.items()
            }
            ctx = TaskContext(
                node=node,
                inputs=inputs,
                output_key=output_key,
                rng=_context_rng(node, output_key),
            )
            artifact = normalize_output(node, node.run(ctx))
        except Exception as exc:
            return [
                _NodeFailure(
                    name=node.name,
                    error=f"{type(exc).__name__}: {exc}",
                    details=traceback.format_exc(),
                )
            ]
        meta = dict(artifact.meta)
        meta["node_kind"] = node.kind
        arrays = dict(artifact.arrays)
        if self.cache is None:
            from repro.cluster.store import current_store

            store = current_store()
            if store is not None:
                store.publish(output_key, CachedArtifact.build(arrays, meta))
        return [(arrays, meta)]


class DagScheduler:
    """Walks a :class:`TaskGraph` over a runtime backend, recoverably.

    Args:
        cache: the artifact store holding every node's output; doubles
            as the recovery journal.  Defaults to a fresh in-memory
            cache (no cross-run recovery without a ``directory``).
        backend: any :class:`~repro.runtime.Executor`; defaults to
            serial execution.
        telemetry: optional hub receiving :class:`DagStarted` /
            :class:`NodeCompleted` / :class:`DagCompleted` events.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        backend: Executor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.backend = backend if backend is not None else SerialBackend()
        self.telemetry = telemetry

    @classmethod
    def for_runtime(cls, runtime) -> "DagScheduler":
        """A scheduler sharing a :class:`TrialRuntime`'s seams.

        Reuses the runtime's backend, telemetry hub, and artifact
        cache (creating a private in-memory cache when the runtime has
        none), so experiments accept one ``runtime=`` argument whether
        they run trial plans or task graphs.
        """
        return cls(
            cache=getattr(runtime, "cache", None) or ArtifactCache(),
            backend=getattr(runtime, "backend", None) or SerialBackend(),
            telemetry=getattr(runtime, "telemetry", None),
        )

    # -- recovery survey --------------------------------------------------

    def survey(
        self, graph: TaskGraph, targets: Iterable[str] | None = None
    ) -> DagSurvey:
        """Reconstruct completion state purely from the artifact store.

        Walks the ancestor closure of *targets* (default: every sink)
        in topological order, asking the store for each node's output
        key.  No artifact payload is loaded and no cache counters move.
        """
        graph.validate()
        order = self._closure_order(graph, self._resolve_targets(graph, targets))
        done: dict[str, bool] = {}
        for name in order:
            node = graph.node(name)
            done[name] = self.cache.contains(graph.output_key(name)) and all(
                done[dep] for dep in node.inputs
            )
        return DagSurvey(
            graph=graph,
            order=order,
            done=frozenset(name for name, ok in done.items() if ok),
        )

    @staticmethod
    def _resolve_targets(
        graph: TaskGraph, targets: Iterable[str] | None
    ) -> tuple[str, ...]:
        if targets is None:
            return graph.sinks()
        resolved = tuple(targets)
        for name in resolved:
            graph.node(name)  # loud on unknown names
        return resolved

    @staticmethod
    def _closure_order(
        graph: TaskGraph, targets: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Topological order of the targets' ancestor closure."""
        needed: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            needed.add(name)
            frontier.extend(graph.node(name).inputs)
        return tuple(name for name in graph.topo_order() if name in needed)

    # -- execution --------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        targets: Iterable[str] | None = None,
        recover: bool = True,
    ) -> dict[str, CachedArtifact]:
        """Run the graph (or the ancestor closure of *targets*).

        With ``recover=True`` (the default) the run starts from a
        :meth:`survey` of the artifact store, replaying completed nodes
        as no-ops; ``recover=False`` executes every node, overwriting
        whatever the store held (useful for forcing a fresh
        recomputation — the keys are identical either way).

        Returns ``{target name: output artifact}``.
        """
        start = time.perf_counter()
        graph.validate()
        bind = getattr(self.backend, "bind_artifact_source", None)
        if callable(bind):
            # Multi-host backends serve worker artifact pulls from the
            # scheduler's own cache; in-process backends have no hook.
            bind(self.cache)
        resolved = self._resolve_targets(graph, targets)
        order = self._closure_order(graph, resolved)
        if recover:
            done = set(self.survey(graph, resolved).done)
        else:
            done = set()
        self._emit(
            DagStarted(
                dag=graph.name,
                n_nodes=len(order),
                n_restored=len(done),
                backend=self.backend.describe(),
            )
        )
        position = 0
        for name in order:
            if name in done:
                position += 1
                self._emit_node(graph, name, position, len(order), 0.0, True)
        n_run = 0
        pending = [name for name in order if name not in done]
        while pending:
            ready = [
                name
                for name in pending
                if all(dep in done for dep in graph.node(name).inputs)
            ]
            assert ready, "acyclic graph must always have a ready node"
            batch = {
                index: (
                    graph.node(name),
                    {
                        dep: graph.output_key(dep)
                        for dep in graph.node(name).inputs
                    },
                    graph.output_key(name),
                )
                for index, name in enumerate(ready)
            }
            shards = [
                Shard(index=index, start=index, stop=index + 1, seeds=())
                for index in batch
            ]
            failures: list[_NodeFailure] = []
            for result in self.backend.run_shards(
                _NodeShardFn(batch, cache=self.cache), shards
            ):
                node, _, key = batch[result.index]
                payload = result.values[0]
                if isinstance(payload, _NodeFailure):
                    failures.append(payload)
                    continue
                arrays, meta = payload
                self.cache.put(key, CachedArtifact.build(arrays, meta))
                done.add(node.name)
                n_run += 1
                position += 1
                self._emit_node(
                    graph, node.name, position, len(order), result.elapsed_s, False
                )
            if failures:
                first = failures[0]
                names = ", ".join(f.name for f in failures)
                raise DagError(
                    f"{len(failures)} node(s) failed in graph "
                    f"{graph.name!r}: {names}\n"
                    f"first failure ({first.name}): {first.error}\n"
                    f"{first.details}"
                )
            pending = [name for name in pending if name not in done]
        outputs = {name: self._load(graph, name) for name in resolved}
        self._emit(
            DagCompleted(
                dag=graph.name,
                n_nodes=len(order),
                n_run=n_run,
                n_restored=len(order) - n_run,
                elapsed_s=time.perf_counter() - start,
            )
        )
        return outputs

    def _load(self, graph: TaskGraph, name: str) -> CachedArtifact:
        key = graph.output_key(name)
        artifact = self.cache.get(key)
        if artifact is None:
            raise DagError(
                f"artifact for node {name!r} (key {key[:12]}…) vanished from "
                f"the cache between completion and use; raise the cache's "
                f"memory/disk caps or give it a directory"
            )
        return artifact

    # -- telemetry --------------------------------------------------------

    def _emit(self, event) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event)

    def _emit_node(
        self,
        graph: TaskGraph,
        name: str,
        position: int,
        n_nodes: int,
        elapsed_s: float,
        from_store: bool,
    ) -> None:
        self._emit(
            NodeCompleted(
                dag=graph.name,
                name=name,
                kind=graph.node(name).kind,
                index=position,
                n_nodes=n_nodes,
                elapsed_s=elapsed_s,
                from_store=from_store,
            )
        )
