"""Synthetic dataset generators standing in for the paper's data sources.

* :mod:`repro.data.ngst` — the Eq. (1) Gaussian-random-walk model that
  the paper itself uses for its NGST simulations (substitute for the
  NGST Mission Simulator).
* :mod:`repro.data.otis` — 2-D radiance fields with the morphologies of
  the paper's three OTIS datasets: "Blob", "Stripe" and "Spots".
* :mod:`repro.data.gamut` — mean-intensity sweep datasets for Figure 5.
"""

from repro.data.gamut import gamut_dataset, gamut_means
from repro.data.ngst import generate_image_stack, generate_walk, synthetic_sky
from repro.data.otis import blob, make_dataset, spots, stripe

__all__ = [
    "blob",
    "gamut_dataset",
    "gamut_means",
    "generate_image_stack",
    "generate_walk",
    "make_dataset",
    "spots",
    "stripe",
    "synthetic_sky",
]
