"""Mean-intensity gamut datasets for the Figure 5 experiment.

Figure 5 studies preprocessing performance "when the mean intensity of
a dataset of N pixels varies across the entire gamut of possible
values".  Detector background noise guarantees non-zero reads, so the
relative-error denominator is always defined.
"""

from __future__ import annotations

import numpy as np

from repro.config import NGSTDatasetConfig
from repro.data.ngst import U16_MAX, generate_walk
from repro.exceptions import ConfigurationError

#: Minimum read level: "there will always be some background noise
#: present at the detector causing non-zero reads" (§5).
BACKGROUND_FLOOR = 32


def gamut_means(n_points: int = 16) -> np.ndarray:
    """Evenly spaced mean intensities spanning the 16-bit gamut."""
    if n_points < 2:
        raise ConfigurationError(f"need at least 2 gamut points, got {n_points}")
    return np.linspace(BACKGROUND_FLOOR, U16_MAX, n_points).round().astype(np.int64)


def gamut_dataset(
    mean_intensity: int,
    rng: np.random.Generator,
    n_variants: int = 64,
    sigma: float = 250.0,
    shape: tuple[int, ...] = (),
) -> np.ndarray:
    """A temporal walk whose initial value sits at *mean_intensity*.

    The walk is floored at the detector background level so that every
    read is non-zero even at the bottom of the gamut.
    """
    if not 0 <= mean_intensity <= U16_MAX:
        raise ConfigurationError(
            f"mean_intensity must be within [0, {U16_MAX}], got {mean_intensity}"
        )
    start = max(int(mean_intensity), BACKGROUND_FLOOR)
    config = NGSTDatasetConfig(
        n_variants=n_variants, sigma=sigma, initial_value=start
    )
    walk = generate_walk(config, rng, shape)
    return np.maximum(walk, np.uint16(BACKGROUND_FLOOR))
