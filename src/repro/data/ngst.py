"""NGST dataset generation — the Eq. (1) analytical model (§2.2.1).

Each image coordinate carries N pristine temporal variants

    Π(i+1) = Π(i) + Θᵢ,   Θᵢ ~ N(0, σ)

with σ representative of the NGST Mission Simulator datasets.  Values
are 16-bit unsigned; overflows are truncated to the representable
maximum and underflows to zero, per the §6 convention for extremely
turbulent synthetic datasets.
"""

from __future__ import annotations

import numpy as np

from repro.config import NGSTDatasetConfig
from repro.exceptions import ConfigurationError

U16_MAX = np.iinfo(np.uint16).max


def generate_walk(
    config: NGSTDatasetConfig,
    rng: np.random.Generator,
    shape: tuple[int, ...] = (),
) -> np.ndarray:
    """Generate pristine temporal variants, shape ``(N,) + shape`` uint16.

    Every trailing coordinate runs its own independent Gaussian walk
    starting at ``config.initial_value``.
    """
    n = config.n_variants
    steps = rng.normal(0.0, config.sigma, size=(n - 1,) + shape)
    walk = np.empty((n,) + shape, dtype=np.float64)
    walk[0] = float(config.initial_value)
    walk[1:] = float(config.initial_value) + np.cumsum(steps, axis=0)
    return np.clip(np.rint(walk), config.background_floor, U16_MAX).astype(np.uint16)


def synthetic_sky(
    height: int,
    width: int,
    rng: np.random.Generator,
    background: float = 1200.0,
    n_sources: int = 24,
    peak: float = 30000.0,
    psf_sigma: float = 1.8,
) -> np.ndarray:
    """A synthetic infrared sky frame: flat background plus point sources.

    Point sources get Gaussian point-spread functions, approximating what
    an NGST detector would integrate; returned as float64 (a base image
    that :func:`generate_image_stack` turns into temporal variants).
    """
    if height < 1 or width < 1:
        raise ConfigurationError(f"frame must be non-empty, got {height}x{width}")
    frame = np.full((height, width), background, dtype=np.float64)
    ys, xs = np.mgrid[0:height, 0:width]
    for _ in range(n_sources):
        cy = rng.uniform(0, height)
        cx = rng.uniform(0, width)
        amplitude = rng.uniform(0.05, 1.0) * peak
        frame += amplitude * np.exp(
            -((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * psf_sigma**2)
        )
    return frame


def generate_image_stack(
    config: NGSTDatasetConfig,
    rng: np.random.Generator,
    height: int,
    width: int,
    base: np.ndarray | None = None,
) -> np.ndarray:
    """N temporal variants of a 2-D frame, shape ``(N, height, width)``.

    Each pixel follows Eq. (1) starting from the *base* image (a
    synthetic sky by default), so spatially distinct regions keep their
    own intensities while exhibiting the temporal correlation model.
    """
    if base is None:
        base = synthetic_sky(height, width, rng)
    if base.shape != (height, width):
        raise ConfigurationError(
            f"base shape {base.shape} does not match {height}x{width}"
        )
    n = config.n_variants
    steps = rng.normal(0.0, config.sigma, size=(n - 1, height, width))
    walk = np.empty((n, height, width), dtype=np.float64)
    walk[0] = base
    walk[1:] = base[None] + np.cumsum(steps, axis=0)
    return np.clip(np.rint(walk), config.background_floor, U16_MAX).astype(np.uint16)
