"""Synthetic OTIS radiance fields with the §7.3 morphologies.

The paper evaluates on three datasets chosen for their physical
characteristics, which "exemplify nearly the entire gamut of variations
likely to be encountered on site":

* **Blob** — broad areas of unchanging temperature with a few dark
  spots scattered in the plot (representative of most OTIS data);
* **Stripe** — a prominent vertical region of turbulent data through
  the centre, calm elsewhere;
* **Spots** — a plethora of conspicuous spots, large and small, spread
  over the entire region.

Fields are float32 "radiance-like" values in a physically plausible
band (nominally spectral radiance integrated over an OTIS channel); the
absolute scale only matters relative to the bounds configured for
``Algo_OTIS``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

#: Nominal background radiance level and gentle large-scale variation.
BACKGROUND = 95.0
LARGE_SCALE_AMPLITUDE = 6.0
#: Default physical ceiling used when deriving OTIS bounds for these
#: fields (values can never naturally exceed this).  Deliberately below
#: the fixed-point encoding's full scale (≈262 at the default dn_scale)
#: so the bounds screen has impossible headroom to catch flips into.
PHYSICAL_MAX = 200.0

DATASET_NAMES = ("blob", "stripe", "spots")


def _large_scale(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth low-frequency background undulation."""
    ys, xs = np.mgrid[0:rows, 0:cols]
    phase_y = rng.uniform(0, 2 * np.pi)
    phase_x = rng.uniform(0, 2 * np.pi)
    wave = np.sin(2 * np.pi * ys / max(rows, 2) + phase_y) * np.cos(
        2 * np.pi * xs / max(cols, 2) + phase_x
    )
    return LARGE_SCALE_AMPLITUDE * wave


def _disc(rows: int, cols: int, cy: float, cx: float, radius: float) -> np.ndarray:
    ys, xs = np.mgrid[0:rows, 0:cols]
    return ((ys - cy) ** 2 + (xs - cx) ** 2) <= radius**2


def _validate(rows: int, cols: int) -> None:
    if rows < 8 or cols < 8:
        raise ConfigurationError(
            f"OTIS fields must be at least 8x8, got {rows}x{cols}"
        )


def blob(rows: int = 64, cols: int = 64, rng: np.random.Generator | None = None) -> np.ndarray:
    """The "Blob" dataset: broad unchanging areas with a few dark spots."""
    _validate(rows, cols)
    rng = rng or np.random.default_rng(0)
    field = BACKGROUND + _large_scale(rows, cols, rng)
    field += rng.normal(0.0, 0.4, size=(rows, cols))
    n_spots = max(3, (rows * cols) // 1200)
    for _ in range(n_spots):
        cy = rng.uniform(0, rows)
        cx = rng.uniform(0, cols)
        radius = rng.uniform(1.5, max(2.0, rows / 16))
        depth = rng.uniform(15.0, 35.0)
        field[_disc(rows, cols, cy, cx, radius)] -= depth
    return np.clip(field, 1.0, PHYSICAL_MAX).astype(np.float32)


def stripe(rows: int = 64, cols: int = 64, rng: np.random.Generator | None = None) -> np.ndarray:
    """The "Stripe" dataset: a turbulent vertical band through the centre."""
    _validate(rows, cols)
    rng = rng or np.random.default_rng(1)
    field = BACKGROUND + _large_scale(rows, cols, rng)
    field += rng.normal(0.0, 0.4, size=(rows, cols))
    half_width = max(2, cols // 8)
    lo = cols // 2 - half_width
    hi = cols // 2 + half_width
    band = rng.normal(0.0, 25.0, size=(rows, hi - lo))
    field[:, lo:hi] += band
    return np.clip(field, 1.0, PHYSICAL_MAX).astype(np.float32)


def spots(rows: int = 64, cols: int = 64, rng: np.random.Generator | None = None) -> np.ndarray:
    """The "Spots" dataset: many conspicuous spots across the whole plot."""
    _validate(rows, cols)
    rng = rng or np.random.default_rng(2)
    field = BACKGROUND + _large_scale(rows, cols, rng)
    field += rng.normal(0.0, 0.6, size=(rows, cols))
    n_spots = max(16, (rows * cols) // 100)
    for _ in range(n_spots):
        cy = rng.uniform(0, rows)
        cx = rng.uniform(0, cols)
        radius = rng.uniform(1.0, max(1.5, rows / 10))
        delta = rng.uniform(-45.0, 70.0)
        field[_disc(rows, cols, cy, cx, radius)] += delta
    return np.clip(field, 1.0, PHYSICAL_MAX).astype(np.float32)


def make_dataset(
    name: str,
    rows: int = 64,
    cols: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate one of the three named OTIS datasets by name."""
    generators = {"blob": blob, "stripe": stripe, "spots": spots}
    try:
        generator = generators[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown OTIS dataset {name!r}; choose from {sorted(generators)}"
        ) from None
    return generator(rows, cols, rng)
