"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate on the specific
failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Raised, e.g., for an odd ``upsilon``, a sensitivity outside [0, 100],
    or a fault probability outside [0, 1].
    """


class DataFormatError(ReproError, ValueError):
    """Input data has the wrong dtype, shape, or structure."""


class FITSFormatError(DataFormatError):
    """A FITS byte stream or header violates the FITS standard."""


class HeaderSanityError(FITSFormatError):
    """A FITS header failed sanity analysis and could not be repaired."""


class CodecError(ReproError):
    """Rice codec failure (corrupt bitstream, parameter mismatch)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ALFTError(ReproError):
    """The ALFT executor could not produce any acceptable output."""


class StreamError(ReproError):
    """The streaming pipeline reached an inconsistent state."""


class BufferOverflowError(StreamError):
    """A bounded stream buffer received more frames than it can hold.

    Raised by :class:`repro.stream.RingBuffer` under the ``error``
    backpressure policy, and by the pipeline's internal alignment buffer
    if a stage ever buffers more frames than its declared lag (a broken
    memory-bound invariant, never expected in normal operation).
    """


class CheckpointMismatchError(StreamError):
    """A resume found checkpoint records, but none match this pipeline.

    Raised under strict resume when the checkpoint store holds records
    for *other* fingerprints only — the stream's source or stage
    configuration changed since the interrupted run.  Restarting
    silently would discard the recorded progress, so strict consumers
    (the ``repro stream`` CLI, the serve layer) abort loudly instead.
    """


class DagError(ReproError):
    """A task graph run failed or the graph itself is unrunnable.

    Raised by :mod:`repro.dag` when a node's run function fails, when a
    published artifact cannot be read back for a downstream node, or
    when a run is asked for a target node the graph does not contain.
    Structural problems detected at build time (duplicate node names,
    unknown dependencies, cycles) raise
    :class:`ConfigurationError` instead, like every other bad-parameter
    path in the library.
    """


class ServeError(ReproError):
    """The streaming service refused or could not complete a request.

    Covers protocol violations on the ingest socket (bad message types,
    malformed frame payloads), unknown or busy tenant streams, and
    sessions rejected during a graceful drain.
    """
