"""Experiment harness: one module per paper figure, plus ablations.

Every experiment returns an :class:`~repro.experiments.common.ExperimentResult`
whose series can be rendered as the table/plot the paper reports.  The
registry maps experiment ids (``fig2`` … ``fig9``, ``ablate-*``) to
runnable callables; the CLI and the benchmark suite both go through it.
"""

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "Series", "run_experiment"]
