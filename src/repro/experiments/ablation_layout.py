"""Ablation — §8's memory-layout recommendation.

"We recommend the technique of storing the neighboring pixels using a
preset mapping into different physical regions in the memory
organization, so that ... the correlated block faults occurring in
contiguous regions in memory will not affect the temporal or spatial
redundancy preserved elsewhere."

Two panels:

1. **memory block faults** (Eq. 2): row-major vs interleaved placement.
   The Eq. 2 run-length distribution is short-tailed, so this panel is a
   near-null result — recorded honestly.
2. **transit bursts** (Gilbert–Elliott): the regime where placement
   decides everything.  A pixel-major serialisation (each pixel's N
   temporal variants contiguous — the naive cache-friendly choice) lets
   one burst wipe a whole redundancy group; time-major or interleaved
   serialisation confines the burst to at most one variant per pixel
   and preprocessing recovers fully.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import CorrelatedFaultConfig, NGSTDatasetConfig
from repro.data.ngst import generate_walk
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    averaged,
    best_sensitivity,
)
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector
from repro.faults.layout import InterleavedLayout, PixelMajorLayout, RowMajorLayout
from repro.faults.transit import GilbertElliottConfig, TransitFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime

DEFAULT_GAMMA_INI_GRID = (0.02, 0.05, 0.1, 0.15, 0.2)
DEFAULT_BURST_RATE_GRID = (1e-5, 5e-5, 2e-4)
#: Mean burst length of ~250 bits (~15 words) at the default escape rate.
BURST_ESCAPE = 0.004
BURST_FLIP = 0.5


def run(
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    burst_rate_grid: Sequence[float] = DEFAULT_BURST_RATE_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> list[ExperimentResult]:
    """Both layout panels: Eq. 2 memory faults and transit bursts."""
    return [
        _memory_panel(
            gamma_ini_grid, lambdas, sigma, n_variants, shape, n_repeats, seed, runtime
        ),
        _transit_panel(
            burst_rate_grid, lambdas, sigma, n_variants, shape, n_repeats, seed, runtime
        ),
    ]


def _memory_panel(
    gamma_ini_grid, lambdas, sigma, n_variants, shape, n_repeats, seed, runtime=None
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablate-layout",
        title="Memory layout under Eq.2 correlated faults (post-Algo_NGST Psi)",
        x_label="Gamma_ini",
        y_label="avg relative error Psi",
    )
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    layouts = {
        "row-major raw": ("none", RowMajorLayout()),
        "interleaved raw": ("none", InterleavedLayout()),
        "row-major + Algo_NGST": ("algo", RowMajorLayout()),
        "interleaved + Algo_NGST": ("algo", InterleavedLayout()),
    }
    curves: dict[str, list[float]] = {label: [] for label in layouts}

    for gamma_ini in gamma_ini_grid:

        def one_point(rng: np.random.Generator, which: str, layout) -> float:
            pristine = generate_walk(dataset_cfg, rng, shape)
            model = CorrelatedFaultModel(
                CorrelatedFaultConfig(gamma_ini=gamma_ini), layout=layout
            )
            injector = FaultInjector(model, seed=int(rng.integers(2**31)))
            corrupted, _ = injector.inject(pristine)
            if which == "none":
                return psi(corrupted, pristine)
            _, best = best_sensitivity(corrupted, pristine, lambdas)
            return best

        for label, (which, layout) in layouts.items():
            curves[label].append(
                averaged(
                    lambda rng: one_point(rng, which, layout),
                    n_repeats,
                    seed,
                    runtime,
                )
            )

    for label, ys in curves.items():
        result.add(label, list(gamma_ini_grid), ys)
    result.note(f"sigma={sigma}, N={n_variants}, coords={shape}")
    result.note(
        "Eq.2 runs are short (mean < 2 bits), so placement barely matters "
        "here — see the transit panel for the regime where it does"
    )
    return result


def _transit_panel(
    burst_rate_grid, lambdas, sigma, n_variants, shape, n_repeats, seed, runtime=None
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablate-layout-transit",
        title="Serialisation layout under transit bursts (post-Algo_NGST Psi)",
        x_label="burst initiation rate",
        y_label="avg relative error Psi",
    )
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    layouts = {
        "raw (any layout)": ("none", None),
        "pixel-major + Algo_NGST": ("algo", PixelMajorLayout(n_variants)),
        "time-major + Algo_NGST": ("algo", None),
        "interleaved + Algo_NGST": ("algo", InterleavedLayout()),
    }
    curves: dict[str, list[float]] = {label: [] for label in layouts}

    for rate in burst_rate_grid:
        channel = GilbertElliottConfig(
            p_good_to_bad=rate, p_bad_to_good=BURST_ESCAPE, flip_prob_bad=BURST_FLIP
        )

        def one_point(rng: np.random.Generator, which: str, layout) -> float:
            pristine = generate_walk(dataset_cfg, rng, shape)
            model = TransitFaultModel(channel, layout=layout)
            injector = FaultInjector(model, seed=int(rng.integers(2**31)))
            corrupted, _ = injector.inject(pristine)
            if which == "none":
                return psi(corrupted, pristine)
            _, best = best_sensitivity(corrupted, pristine, lambdas)
            return best

        for label, (which, layout) in layouts.items():
            curves[label].append(
                averaged(
                    lambda rng: one_point(rng, which, layout),
                    n_repeats,
                    seed,
                    runtime,
                )
            )

    for label, ys in curves.items():
        result.add(label, list(burst_rate_grid), ys)
    result.note(
        f"mean burst ~{1 / BURST_ESCAPE:.0f} bits; sigma={sigma}, "
        f"N={n_variants}, coords={shape}"
    )
    result.note(
        "pixel-major serialisation lets one burst erase a pixel's whole "
        "temporal redundancy group; interleaving (the §8 recommendation) "
        "makes the damage recoverable again"
    )
    return result
