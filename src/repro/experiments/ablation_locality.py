"""Ablation — spatial vs spectral locality for OTIS (§7.1).

"Our experiments have shown that the former [the spatial locality
model] yields better expediency to our approach than the latter [the
spectral locality model], as spectral correlation falls drastically on
either side of a band of wavelengths."

The spectral variant reuses the temporal machinery of ``Algo_NGST``
with the cube's band axis playing the role of time: each sample is
XOR-paired with its Υ spectral neighbours.  Because the Planck curve
slopes steeply across the 8–12 µm window, spectral neighbours differ
far more than spatial ones, and the voter loses discriminating power —
reproducing the paper's preference for the spatial model.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTConfig, OTISBounds, OTISConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.algo_otis import AlgoOTIS
from repro.experiments.common import ExperimentResult, averaged
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn
from repro.otis.spectrometer import Spectrometer, default_bands
from repro.runtime import TrialRuntime


def _scene(side: int, rng: np.random.Generator) -> np.ndarray:
    """A smooth 290 K landscape with mild structure."""
    ys, xs = np.mgrid[0:side, 0:side]
    scene = 290.0 + 5.0 * np.sin(ys / 7.0) * np.cos(xs / 9.0)
    return scene + rng.normal(0.0, 0.4, size=(side, side))


def spectral_preprocess(
    dn_cube: np.ndarray, sensitivity: float, upsilon: int = 4
) -> np.ndarray:
    """Voting along the spectral (band) axis — the §7.1 alternative."""
    algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=sensitivity))
    return algo(dn_cube).corrected


def run(
    gamma0_grid: Sequence[float] = (0.005, 0.01, 0.025, 0.05),
    lambdas: Sequence[float] = (40.0, 60.0, 80.0, 100.0),
    n_bands: int = 10,
    side: int = 32,
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Ψ after spatial vs spectral preprocessing of a sensed DN cube."""
    result = ExperimentResult(
        experiment_id="ablate-locality",
        title="OTIS: spatial vs spectral locality model",
        x_label="Gamma0",
        y_label="avg relative error Psi",
    )
    bands = default_bands(n_bands)
    instrument = Spectrometer(bands)
    labels = ("no-preprocessing", "spatial (Algo_OTIS)", "spectral (band-axis voting)")
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma0 in gamma0_grid:

        def one_point(rng: np.random.Generator, which: str) -> float:
            scene = _scene(side, rng)
            dn = instrument.sense_dn(scene, emissivity=0.97, rng=rng)
            pristine = decode_dn(dn, instrument.dn_scale)
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(dn)
            if which == "none":
                return psi(decode_dn(corrupted, instrument.dn_scale), pristine)
            best = None
            for lam in lambdas:
                if which == "spatial":
                    config = OTISConfig(
                        sensitivity=lam,
                        bounds=OTISBounds(lower=0.0, upper=25.0),
                        dn_scale=instrument.dn_scale,
                    )
                    repaired = AlgoOTIS(config)(corrupted).corrected
                else:
                    repaired = spectral_preprocess(corrupted, lam)
                value = psi(decode_dn(repaired, instrument.dn_scale), pristine)
                best = value if best is None else min(best, value)
            return best

        for label, which in zip(labels, ("none", "spatial", "spectral")):
            curves[label].append(
                averaged(lambda rng: one_point(rng, which), n_repeats, seed, runtime)
            )

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    result.note(
        f"{n_bands} bands over 8-12um, {side}x{side} scene, optimum L per point"
    )
    return result
