"""Ablation — OTIS storage representation: 16-bit DN vs raw float32.

§7.1 says OTIS data "is stored in the form of simple 32-bit floating
point representation", yet §8's error levels (~12 % at Γ₀ = 0.05) are
only reachable if faults strike a fixed-point encoding: a bit-flip in a
float32 *exponent* multiplies the value by up to 2±¹²⁸, so raw-float
storage yields astronomically larger input errors.  DESIGN.md §2
therefore substitutes a 16-bit DN detector encoding as the fault
surface.  This ablation quantifies that decision on both
representations, with per-element relative error capped at 10⁶ so the
float panel stays printable.

Expected shape: float32 raw error is orders of magnitude above DN raw
error at every Γ₀; preprocessing (bounds screen + voter) tames both,
and the bounds screen does most of the work on floats (non-finite and
out-of-range values are unmissable).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import OTISConfig
from repro.core.algo_otis import AlgoOTIS
from repro.data.otis import make_dataset
from repro.experiments.common import ExperimentResult, averaged
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn
from repro.runtime import TrialRuntime


def run(
    gamma0_grid: Sequence[float] = (0.005, 0.01, 0.025, 0.05),
    sensitivity: float = 60.0,
    rows: int = 48,
    cols: int = 48,
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Ψ under each storage representation, raw and preprocessed."""
    result = ExperimentResult(
        experiment_id="ablate-storage",
        title="OTIS storage: 16-bit DN vs raw float32 as the fault surface",
        x_label="Gamma0",
        y_label="avg relative error Psi (capped at 1e6/element)",
    )
    labels = (
        "DN raw",
        "DN + Algo_OTIS",
        "float32 raw",
        "float32 + Algo_OTIS",
    )
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma0 in gamma0_grid:

        def one_point(rng: np.random.Generator, which: str) -> float:
            field = make_dataset("blob", rows, cols, rng)
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            if which.startswith("dn"):
                dn = encode_dn(field)
                pristine = decode_dn(dn)
                corrupted, _ = injector.inject(dn)
                if which == "dn-raw":
                    return psi(decode_dn(corrupted), pristine)
                repaired = AlgoOTIS(OTISConfig(sensitivity=sensitivity))(
                    corrupted
                ).corrected
                return psi(decode_dn(repaired), pristine)
            corrupted, _ = injector.inject(field)
            if which == "f32-raw":
                return psi(corrupted, field)
            repaired = AlgoOTIS(OTISConfig(sensitivity=sensitivity))(
                corrupted
            ).corrected
            return psi(repaired, field)

        for label, which in zip(
            labels, ("dn-raw", "dn-algo", "f32-raw", "f32-algo")
        ):
            curves[label].append(
                averaged(lambda rng: one_point(rng, which), n_repeats, seed, runtime)
            )

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    result.note(
        "per-element relative error capped at 1e6 (float exponent flips "
        "otherwise overflow the mean); see DESIGN.md S2"
    )
    return result
