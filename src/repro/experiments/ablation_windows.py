"""Ablation — the bit-window design choices of §3.1/§3.3.

Algorithm 1 treats the three bit windows differently: window A accepts
a Υ−1 vote (GRT), window B demands unanimity, and window C is masked
off.  This ablation disables each rule in turn:

* ``full``           — the published combination (reference);
* ``no-window-A``    — unanimity required everywhere (GRT disabled);
* ``grt-everywhere`` — the relaxed Υ−1 vote applied to window B too;
* ``no-window-C``    — corrections allowed below the LSB mask.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTDatasetConfig
from repro.core import bitops
from repro.core.voter import VoterMatrix
from repro.core.windows import BitWindows
from repro.data.ngst import generate_walk
from repro.experiments.common import ExperimentResult, averaged
from repro.exceptions import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime

VARIANTS = ("full", "no-window-A", "grt-everywhere", "no-window-C")


def preprocess_variant(
    corrupted: np.ndarray,
    variant: str,
    sensitivity: float = 80.0,
    upsilon: int = 4,
) -> np.ndarray:
    """Run Algo_NGST with one window rule disabled (see module docs)."""
    if variant not in VARIANTS:
        raise ConfigurationError(f"unknown variant {variant!r}; choose {VARIANTS}")
    matrix = VoterMatrix(corrupted, upsilon)
    thresholds = matrix.thresholds(sensitivity, per_coordinate=True)
    voters = matrix.pruned(thresholds)
    nbits = bitops.bit_width(corrupted.dtype)
    windows = BitWindows.from_thresholds(thresholds, nbits)
    unanimous = VoterMatrix.unanimous(voters)
    grt = VoterMatrix.grt(voters)
    una64 = unanimous.astype(np.uint64)
    grt64 = grt.astype(np.uint64)
    full_mask = np.uint64((1 << nbits) - 1)
    if variant == "full":
        corr = (una64 | (grt64 & windows.msb_mask)) & windows.lsb_mask
    elif variant == "no-window-A":
        corr = una64 & windows.lsb_mask
    elif variant == "grt-everywhere":
        corr = grt64 & windows.lsb_mask
    else:  # no-window-C
        corr = (una64 | (grt64 & windows.msb_mask)) & full_mask
    return np.bitwise_xor(corrupted, corr.astype(corrupted.dtype))


def run(
    gamma0_grid: Sequence[float] = (0.001, 0.005, 0.01, 0.025, 0.05),
    sensitivity: float = 80.0,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Psi of each window-rule variant across Γ₀."""
    result = ExperimentResult(
        experiment_id="ablate-windows",
        title="Bit-window rule ablation for Algo_NGST",
        x_label="Gamma0",
        y_label="avg relative error Psi",
    )
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    curves: dict[str, list[float]] = {"no-preprocessing": []}
    curves.update({v: [] for v in VARIANTS})

    for gamma0 in gamma0_grid:

        def one_point(rng: np.random.Generator, variant: str | None) -> float:
            pristine = generate_walk(dataset_cfg, rng, shape)
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(pristine)
            if variant is None:
                return psi(corrupted, pristine)
            return psi(preprocess_variant(corrupted, variant, sensitivity), pristine)

        curves["no-preprocessing"].append(
            averaged(lambda rng: one_point(rng, None), n_repeats, seed, runtime)
        )
        for variant in VARIANTS:
            curves[variant].append(
                averaged(lambda rng: one_point(rng, variant), n_repeats, seed, runtime)
            )

    for label, ys in curves.items():
        result.add(label, list(gamma0_grid), ys)
    result.note(f"L={sensitivity}, sigma={sigma}, N={n_variants}, coords={shape}")
    return result
