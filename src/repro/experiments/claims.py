"""Machine-checkable reproduction claims.

EXPERIMENTS.md records paper-vs-measured verdicts as prose; this module
encodes each verdict as an executable check over the result panels, so
a full regeneration (``repro all --json results.json``) can be verified
mechanically (``repro claims --json results.json``).  A claim failing
after a code change means the change altered a reproduced shape.

Checks are written against the *default full-scale* panels; running
them on ``--quick`` output will usually fail on missing grid points.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentResult

Panels = dict[str, ExperimentResult]


@dataclass(frozen=True)
class Claim:
    """One executable reproduction claim."""

    claim_id: str
    description: str
    panel_ids: tuple[str, ...]
    check: Callable[[Panels], bool]


@dataclass(frozen=True)
class ClaimVerdict:
    claim_id: str
    description: str
    passed: bool
    detail: str = ""


def _y_at(panel: ExperimentResult, label: str, x: float) -> float:
    series = panel.series_by_label(label)
    for xx, yy in zip(series.x, series.y):
        if abs(xx - x) <= 1e-12:
            return yy
    raise KeyError(f"{panel.experiment_id}/{label}: no x={x}")


def _best_algo_ngst(panel: ExperimentResult, x: float) -> float:
    values = [
        _y_at(panel, s.label, x)
        for s in panel.series
        if s.label.startswith("Algo_NGST")
    ]
    if not values:
        raise KeyError("no Algo_NGST series")
    return min(values)


def _check_fig2_gain(panels: Panels) -> bool:
    panel = panels["fig2"]
    for gamma0 in (0.005, 0.01):
        if _best_algo_ngst(panel, gamma0) > _y_at(panel, "no-preprocessing", gamma0) / 10:
            return False
    return True


def _check_fig2_lambda_crossover(panels: Panels) -> bool:
    """Low Γ₀ favours a low Λ; moderate Γ₀ favours a high Λ."""
    panel = panels["fig2"]
    lows = [s for s in panel.series if s.label.startswith("Algo_NGST")]

    def optimum_lambda(x):
        best = min(lows, key=lambda s: _y_at(panel, s.label, x))
        return float(best.label.split("=")[1])

    return optimum_lambda(0.0005) < optimum_lambda(0.025)


def _check_fig3_overhead(panels: Panels) -> bool:
    algo = panels["fig3"].series_by_label("Algo_NGST")
    return algo.y[0] < algo.y[-1] / 10 and algo.y[-1] > algo.y[1]


def _check_fig4_ordering(panels: Panels) -> bool:
    panel = panels["fig4"]
    for gamma_ini in (0.005, 0.01, 0.025):
        algo = _y_at(panel, "Algo_NGST (opt L)", gamma_ini)
        if algo >= _y_at(panel, "median-w3", gamma_ini):
            return False
        if algo >= _y_at(panel, "majority-w3", gamma_ini):
            return False
    return True


def _check_fig5_wins(panels: Panels) -> bool:
    panel = panels["fig5"]
    raw = panel.series_by_label("no-preprocessing")
    algo = panel.series_by_label("Algo_NGST (opt L)")
    return all(a < r for a, r in zip(algo.y, raw.y))


def _check_fig6_crossover(panels: Panels) -> bool:
    panel = panels["fig6-sigma250"]
    u4_low = _y_at(panel, "upsilon=4", 0.001)
    u6_low = _y_at(panel, "upsilon=6", 0.001)
    u4_high = _y_at(panel, "upsilon=4", 0.04)
    u6_high = _y_at(panel, "upsilon=6", 0.04)
    return u6_low < u4_low and u4_high < u6_high


def _check_fig6_sigma0(panels: Panels) -> bool:
    panel = panels["fig6-sigma0"]
    return _y_at(panel, "upsilon=4", 0.01) <= _y_at(panel, "upsilon=2", 0.01)


def _check_fig7_raw_level(panels: Panels) -> bool:
    return all(
        0.05 < _y_at(panels[f"fig7-{name}"], "no-preprocessing", 0.05) < 0.25
        for name in ("blob", "stripe", "spots")
    )


def _check_fig7_below_one_percent(panels: Panels) -> bool:
    return _y_at(panels["fig7-blob"], "Algo_OTIS (opt L)", 0.05) < 0.01


def _check_fig7_ordering(panels: Panels) -> bool:
    for name in ("blob", "stripe", "spots"):
        panel = panels[f"fig7-{name}"]
        algo = _y_at(panel, "Algo_OTIS (opt L)", 0.025)
        if algo >= _y_at(panel, "median-3x3", 0.025):
            return False
        if algo >= _y_at(panel, "majority-3", 0.025):
            return False
    return True


def _check_fig8_morphology(panels: Panels) -> bool:
    panel = panels["fig8"]
    std = panel.series_by_label("std")
    concentration = panel.series_by_label("centre-band concentration")
    blob_i, stripe_i, spots_i = 0, 1, 2
    return (
        std.y[spots_i] > std.y[stripe_i] > std.y[blob_i]
        and concentration.y[stripe_i] > 3 * concentration.y[spots_i]
    )


def _check_fig9_breakdown(panels: Panels) -> bool:
    for name in ("blob", "stripe", "spots"):
        pseudo = panels[f"fig9-{name}"].series_by_label(
            "Algo_OTIS pseudo-corr fraction"
        )
        low = _y_at(panels[f"fig9-{name}"], "Algo_OTIS pseudo-corr fraction", 0.1)
        high = _y_at(panels[f"fig9-{name}"], "Algo_OTIS pseudo-corr fraction", 0.4)
        if not (high > 1.5 * low and high > 0.3):
            return False
    return True


def _check_layout_transit(panels: Panels) -> bool:
    panel = panels["ablate-layout-transit"]
    pixel = panel.series_by_label("pixel-major + Algo_NGST")
    inter = panel.series_by_label("interleaved + Algo_NGST")
    return all(i < p / 3 for i, p in zip(inter.y, pixel.y))


def _check_locality(panels: Panels) -> bool:
    panel = panels["ablate-locality"]
    spatial = panel.series_by_label("spatial (Algo_OTIS)")
    spectral = panel.series_by_label("spectral (band-axis voting)")
    return all(sp < sc for sp, sc in zip(spatial.y, spectral.y))


def _check_motivation(panels: Panels) -> bool:
    panel = panels["motivation"]
    raw = panel.series_by_label("ABFT (raw input)")
    pre = panel.series_by_label("ABFT (preprocessed)")
    return all(p < r for p, r in zip(pre.y, raw.y)) and any(
        "100%" in note for note in panel.notes
    )


def _check_storage(panels: Panels) -> bool:
    panel = panels["ablate-storage"]
    dn_raw = panel.series_by_label("DN raw")
    f32_raw = panel.series_by_label("float32 raw")
    dn_algo = panel.series_by_label("DN + Algo_OTIS")
    return all(f > 100 * d for f, d in zip(f32_raw.y, dn_raw.y)) and all(
        a < r for a, r in zip(dn_algo.y, dn_raw.y)
    )


def _check_compression(panels: Panels) -> bool:
    panel = panels["compression"]
    clean = panel.series_by_label("clean reference")
    corrupted = panel.series_by_label("corrupted")
    preprocessed = panel.series_by_label("preprocessed")
    return corrupted.y[-1] < clean.y[-1] * 0.95 and preprocessed.y[-1] > corrupted.y[-1]


def _check_fig1_scaling(panels: Panels) -> bool:
    panel = panels["fig1"]
    plain = panel.series_by_label("no preprocessing")
    pre = [s for s in panel.series if s.label.startswith("with Algo_NGST")][0]
    return plain.y[-1] < plain.y[0] and all(
        p > n for p, n in zip(pre.y, plain.y)
    )


CLAIMS: tuple[Claim, ...] = (
    Claim("fig1-scaling", "cluster scales with workers; preprocessing costs bounded time", ("fig1",), _check_fig1_scaling),
    Claim("fig2-gain", ">=10x Psi reduction at practical Gamma0", ("fig2",), _check_fig2_gain),
    Claim("fig2-lambda-crossover", "optimum Lambda grows with Gamma0", ("fig2",), _check_fig2_lambda_crossover),
    Claim("fig3-overhead", "overhead ~0 at Lambda=0, grows with Lambda", ("fig3",), _check_fig3_overhead),
    Claim("fig4-ordering", "Algo_NGST beats both smoothers under correlated faults (Gamma_ini<=0.025)", ("fig4",), _check_fig4_ordering),
    Claim("fig5-wins", "preprocessing wins across the intensity gamut", ("fig5",), _check_fig5_wins),
    Claim("fig6-sigma0", "calm data: more neighbours never hurt", ("fig6-sigma0",), _check_fig6_sigma0),
    Claim("fig6-crossover", "Upsilon 4/6 optimality crossover near Gamma0~0.04 at sigma=250", ("fig6-sigma250",), _check_fig6_crossover),
    Claim("fig7-raw-level", "OTIS raw error ~12% at Gamma0=0.05", ("fig7-blob", "fig7-stripe", "fig7-spots"), _check_fig7_raw_level),
    Claim("fig7-below-1pct", "preprocessed Blob below 1% at Gamma0=0.05", ("fig7-blob",), _check_fig7_below_one_percent),
    Claim("fig7-ordering", "Algo_OTIS beats both baselines at Gamma0=0.025 on all datasets", ("fig7-blob", "fig7-stripe", "fig7-spots"), _check_fig7_ordering),
    Claim("fig8-morphology", "Blob/Stripe/Spots morphologies as published", ("fig8",), _check_fig8_morphology),
    Claim("fig9-breakdown", "pseudo-corrections take over past Gamma_ini~0.2", ("fig9-blob", "fig9-stripe", "fig9-spots"), _check_fig9_breakdown),
    Claim("layout-transit", "interleaving defeats transit bursts (S8)", ("ablate-layout-transit",), _check_layout_transit),
    Claim("locality", "spatial beats spectral locality (S7.1)", ("ablate-locality",), _check_locality),
    Claim("motivation", "ABFT/NVP certify wrong outputs; preprocessing fixes inputs (S1)", ("motivation",), _check_motivation),
    Claim("compression", "faults cost compression ratio; preprocessing recovers it (S2)", ("compression",), _check_compression),
    Claim("storage", "raw-float32 fault surface contradicts S8 error levels (DESIGN S2)", ("ablate-storage",), _check_storage),
)


def verify_claims(panels: Sequence[ExperimentResult]) -> list[ClaimVerdict]:
    """Evaluate every claim against the given panels."""
    by_id = {p.experiment_id: p for p in panels}
    verdicts = []
    for claim in CLAIMS:
        missing = [pid for pid in claim.panel_ids if pid not in by_id]
        if missing:
            verdicts.append(
                ClaimVerdict(
                    claim.claim_id,
                    claim.description,
                    passed=False,
                    detail=f"missing panels: {missing}",
                )
            )
            continue
        try:
            passed = bool(claim.check(by_id))
            detail = "" if passed else "check returned False"
        except (KeyError, IndexError, ValueError) as exc:
            passed = False
            detail = f"panel incomplete: {exc}"
        verdicts.append(
            ClaimVerdict(claim.claim_id, claim.description, passed, detail)
        )
    return verdicts


def render_verdicts(verdicts: Sequence[ClaimVerdict]) -> str:
    """ASCII report of the claim verdicts."""
    if not verdicts:
        raise ConfigurationError("no verdicts to render")
    lines = []
    for verdict in verdicts:
        mark = "PASS" if verdict.passed else "FAIL"
        line = f"[{mark}] {verdict.claim_id:<22} {verdict.description}"
        if verdict.detail:
            line += f"  ({verdict.detail})"
        lines.append(line)
    n_pass = sum(v.passed for v in verdicts)
    lines.append(f"-- {n_pass}/{len(verdicts)} claims reproduced --")
    return "\n".join(lines)
