"""Shared experiment machinery: result containers, averaging sweeps,
fused multi-arm sweeps, optimal-sensitivity search, and ASCII
rendering."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cache import ArtifactCache
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError
from repro.metrics.relative_error import psi
from repro.runtime import (
    Arm,
    ArmRequest,
    ArtifactPipeline,
    DatasetSpec,
    FaultSpec,
    TrialRuntime,
    fuse,
)


@dataclass
class Series:
    """One labelled curve: y values over the experiment's x grid."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: {len(self.x)} x vs {len(self.y)} y values"
            )


@dataclass
class ExperimentResult:
    """The data behind one regenerated figure/table."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(Series(label, list(x), list(y)))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_table(self) -> str:
        """Render every series against the x grid as an ASCII table."""
        if not self.series:
            return f"[{self.experiment_id}] (no data)"
        xs = self.series[0].x
        header = [self.x_label] + [s.label for s in self.series]
        widths = [max(14, len(h) + 2) for h in header]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for i, x in enumerate(xs):
            row = [_fmt(x)]
            for s in self.series:
                row.append(_fmt(s.y[i]) if i < len(s.y) else "-")
            lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"label": s.label, "x": s.x, "y": s.y} for s in self.series
            ],
            "notes": list(self.notes),
        }

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.5f}"


def averaged(
    runner: Callable[[np.random.Generator], float],
    n_repeats: int,
    seed: int,
    runtime: TrialRuntime | None = None,
) -> float:
    """Mean of *runner* over ``n_repeats`` independently seeded runs.

    Delegates the repeat loop to :class:`repro.runtime.TrialRuntime`,
    so passing a runtime with a process-pool backend parallelises the
    repeats (and one with a checkpoint store makes them resumable)
    without changing the result: per-repeat seeds are the
    ``SeedSequence.spawn`` children of *seed* on every backend.
    """
    if n_repeats < 1:
        raise ConfigurationError(f"n_repeats must be >= 1, got {n_repeats}")
    runtime = runtime if runtime is not None else TrialRuntime()
    return float(np.mean(runtime.run(runner, n_repeats, seed)))


def experiment_runtime(runtime: TrialRuntime | None = None) -> TrialRuntime:
    """The runtime an experiment sweep should use.

    Passes a caller-provided runtime through untouched; otherwise
    builds a serial runtime with a fresh in-memory
    :class:`~repro.cache.ArtifactCache`, so every grid point of the
    sweep shares pristine datasets (identical across fault-parameter
    points of the same seed) instead of regenerating them.
    """
    if runtime is not None:
        return runtime
    return TrialRuntime(cache=ArtifactCache())


def walk_dataset(
    config: NGSTDatasetConfig, shape: tuple[int, ...]
) -> DatasetSpec:
    """Cacheable :class:`DatasetSpec` for the NGST random-walk generator."""
    return DatasetSpec(
        build=lambda rng: generate_walk(config, rng, shape),
        key_parts=("ngst_walk", config, tuple(shape)),
    )


def averaged_arms(
    arms: Sequence[Arm],
    dataset: DatasetSpec,
    fault,
    n_repeats: int,
    seed: int,
    runtime: TrialRuntime | None = None,
) -> dict[str, float]:
    """Mean of every arm over ``n_repeats`` fused trials.

    The fused counterpart of calling :func:`averaged` once per arm:
    dataset generation and fault injection run **once per trial**
    through the runtime's artifact cache, and every arm evaluates the
    same read-only arrays.  Values — and therefore the means — are
    bit-identical to the per-arm :func:`averaged` calls, because fused
    production replays the canonical trial protocol exactly.

    Args:
        arms: the arms to evaluate; names key the returned dict.
        dataset: pristine-dataset spec (see :func:`walk_dataset`).
        fault: a :class:`~repro.runtime.FaultSpec`, a fault model
            exposing ``cache_key_parts()``, or None to run arms on
            pristine data.
        n_repeats: trials per arm (>= 1).
        seed: root seed shared by every arm.
        runtime: execution runtime; defaults to
            :func:`experiment_runtime`'s cached serial runtime.
    """
    if n_repeats < 1:
        raise ConfigurationError(f"n_repeats must be >= 1, got {n_repeats}")
    if fault is not None and not isinstance(fault, FaultSpec):
        fault = FaultSpec.of(fault)
    runtime = experiment_runtime(runtime)
    pipeline = ArtifactPipeline(dataset=dataset, fault=fault)
    (group,) = fuse(
        [ArmRequest(arm, pipeline, n_repeats, seed) for arm in arms]
    )
    values = runtime.run_fused(group)
    return {name: float(np.mean(values[name])) for name in values}


def best_sensitivity(
    corrupted: np.ndarray,
    pristine: np.ndarray,
    lambdas: Sequence[float],
    upsilon: int = 4,
) -> tuple[float, float]:
    """The Λ from *lambdas* minimising Ψ on this dataset, with its Ψ.

    Mirrors the paper's use of "experimentally optimized values of Υ and
    sensitivity Λ" — the designer tunes Λ to the environment.
    """
    if not lambdas:
        raise ConfigurationError("need at least one candidate sensitivity")
    best_lam, best_psi = None, None
    for lam in lambdas:
        algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
        value = psi(algo(corrupted).corrected, pristine)
        if best_psi is None or value < best_psi:
            best_lam, best_psi = lam, value
    return float(best_lam), float(best_psi)


#: Default Γ₀ grid for the uncorrelated-fault sweeps (log-spaced over
#: the paper's "range of practical interest", Γ₀ ≤ 10 %).
DEFAULT_GAMMA0_GRID = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1)

#: Default Λ candidates when an experiment optimises the sensitivity.
DEFAULT_LAMBDA_GRID = (10.0, 30.0, 50.0, 70.0, 80.0, 90.0, 100.0)
