"""Shared experiment machinery: result containers, averaging sweeps,
DAG-scheduled multi-arm sweeps, optimal-sensitivity search, and ASCII
rendering."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cache import ArtifactCache
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.dag import (
    DagScheduler,
    TaskGraph,
    TaskNode,
    add_arm_sweep,
    aggregate_means,
    json_artifact,
)
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError
from repro.metrics.relative_error import psi
from repro.runtime import Arm, DatasetSpec, TrialRuntime


@dataclass
class Series:
    """One labelled curve: y values over the experiment's x grid."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: {len(self.x)} x vs {len(self.y)} y values"
            )


@dataclass
class ExperimentResult:
    """The data behind one regenerated figure/table."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(Series(label, list(x), list(y)))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_table(self) -> str:
        """Render every series against the x grid as an ASCII table."""
        if not self.series:
            return f"[{self.experiment_id}] (no data)"
        xs = self.series[0].x
        header = [self.x_label] + [s.label for s in self.series]
        widths = [max(14, len(h) + 2) for h in header]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for i, x in enumerate(xs):
            row = [_fmt(x)]
            for s in self.series:
                row.append(_fmt(s.y[i]) if i < len(s.y) else "-")
            lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"label": s.label, "x": s.x, "y": s.y} for s in self.series
            ],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from its :meth:`to_dict` form.

        The inverse used by the DAG report path (panels travel between
        nodes as canonical JSON artifacts) and by the report renderer's
        ``--from-json`` mode.
        """
        result = cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
            notes=list(payload.get("notes", [])),
        )
        for entry in payload.get("series", []):
            result.add(entry["label"], entry["x"], entry["y"])
        return result

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.5f}"


def averaged(
    runner: Callable[[np.random.Generator], float],
    n_repeats: int,
    seed: int,
    runtime: TrialRuntime | None = None,
) -> float:
    """Mean of *runner* over ``n_repeats`` independently seeded runs.

    Delegates the repeat loop to :class:`repro.runtime.TrialRuntime`,
    so passing a runtime with a process-pool backend parallelises the
    repeats (and one with a checkpoint store makes them resumable)
    without changing the result: per-repeat seeds are the
    ``SeedSequence.spawn`` children of *seed* on every backend.
    """
    if n_repeats < 1:
        raise ConfigurationError(f"n_repeats must be >= 1, got {n_repeats}")
    runtime = runtime if runtime is not None else TrialRuntime()
    return float(np.mean(runtime.run(runner, n_repeats, seed)))


def experiment_runtime(runtime: TrialRuntime | None = None) -> TrialRuntime:
    """The runtime an experiment sweep should use.

    Passes a caller-provided runtime through untouched; otherwise
    builds a serial runtime with a fresh in-memory
    :class:`~repro.cache.ArtifactCache`, so every grid point of the
    sweep shares pristine datasets (identical across fault-parameter
    points of the same seed) instead of regenerating them.
    """
    if runtime is not None:
        return runtime
    return TrialRuntime(cache=ArtifactCache())


def walk_dataset(
    config: NGSTDatasetConfig, shape: tuple[int, ...]
) -> DatasetSpec:
    """Cacheable :class:`DatasetSpec` for the NGST random-walk generator."""
    return DatasetSpec(
        build=lambda rng: generate_walk(config, rng, shape),
        key_parts=("ngst_walk", config, tuple(shape)),
    )


def averaged_arms(
    arms: Sequence[Arm],
    dataset: DatasetSpec,
    fault,
    n_repeats: int,
    seed: int,
    runtime: TrialRuntime | None = None,
) -> dict[str, float]:
    """Mean of every arm over ``n_repeats`` shared-artifact trials.

    The DAG counterpart of calling :func:`averaged` once per arm: the
    sweep becomes a dataset → fault → per-arm score → aggregate task
    graph (:func:`repro.dag.add_arm_sweep`) scheduled on the runtime's
    backend, so generation and injection run **once per trial** and
    every arm evaluates the same read-only arrays.  Values — and
    therefore the means — are bit-identical to the per-arm
    :func:`averaged` calls, because the dataset/fault nodes replay the
    canonical trial protocol exactly (same ``SeedSequence`` children,
    same captured-RNG-state handoff, same artifact content keys as the
    fused pipeline).

    Args:
        arms: the arms to evaluate; names key the returned dict.
        dataset: pristine-dataset spec (see :func:`walk_dataset`).
        fault: a :class:`~repro.runtime.FaultSpec`, a fault model
            exposing ``cache_key_parts()``, or None to run arms on
            pristine data.
        n_repeats: trials per arm (>= 1).
        seed: root seed shared by every arm.
        runtime: execution runtime; defaults to
            :func:`experiment_runtime`'s cached serial runtime.
    """
    if n_repeats < 1:
        raise ConfigurationError(f"n_repeats must be >= 1, got {n_repeats}")
    runtime = experiment_runtime(runtime)
    graph = TaskGraph("arm-sweep")
    aggregate = add_arm_sweep(
        graph, "sweep", arms, dataset, fault, n_repeats, seed
    )
    scheduler = DagScheduler.for_runtime(runtime)
    outputs = scheduler.run(graph, targets=(aggregate,))
    return aggregate_means(outputs[aggregate])


def add_result_table(
    graph: TaskGraph,
    name: str,
    aggregates: Sequence[str],
    *,
    experiment_id: str,
    title: str,
    x_label: str,
    y_label: str,
    x: Sequence[float],
    notes: Sequence[str] = (),
) -> str:
    """Add the figure-table node closing an experiment's sweep subgraph.

    *aggregates* are arm-sweep aggregate nodes, one per x-grid point in
    order.  The node assembles the classic :class:`ExperimentResult`
    (one series per arm, arm order preserved) and stores it as a
    canonical-JSON panel artifact, so the rendered table is itself
    content-verified and byte-comparable across resumed runs.
    """
    aggregates = tuple(aggregates)
    x = [float(value) for value in x]
    notes = tuple(notes)
    if len(aggregates) != len(x):
        raise ConfigurationError(
            f"table {name!r}: {len(aggregates)} aggregate node(s) for "
            f"{len(x)} x value(s)"
        )

    def run(ctx):
        labels = list(ctx.input(aggregates[0]).meta["arms"])
        curves: dict[str, list[float]] = {label: [] for label in labels}
        for aggregate in aggregates:
            means = aggregate_means(ctx.input(aggregate))
            for label in labels:
                curves[label].append(means[label])
        result = ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            x_label=x_label,
            y_label=y_label,
        )
        for label in labels:
            result.add(label, x, curves[label])
        for note_text in notes:
            result.note(note_text)
        return json_artifact([result.to_dict()])

    graph.add(
        TaskNode(
            name=name,
            kind="figure",
            run=run,
            inputs=aggregates,
            key_parts=(
                "figure-table",
                experiment_id,
                title,
                x_label,
                y_label,
                tuple(x),
                notes,
            ),
        )
    )
    return name


def run_figure_graph(
    graph: TaskGraph,
    table: str,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Execute a figure graph and decode its table node's panel."""
    from repro.dag.build import json_payload

    runtime = experiment_runtime(runtime)
    scheduler = DagScheduler.for_runtime(runtime)
    outputs = scheduler.run(graph, targets=(table,))
    (panel,) = json_payload(outputs[table])
    return ExperimentResult.from_dict(panel)


def best_sensitivity(
    corrupted: np.ndarray,
    pristine: np.ndarray,
    lambdas: Sequence[float],
    upsilon: int = 4,
) -> tuple[float, float]:
    """The Λ from *lambdas* minimising Ψ on this dataset, with its Ψ.

    Mirrors the paper's use of "experimentally optimized values of Υ and
    sensitivity Λ" — the designer tunes Λ to the environment.
    """
    if not lambdas:
        raise ConfigurationError("need at least one candidate sensitivity")
    best_lam, best_psi = None, None
    for lam in lambdas:
        algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
        value = psi(algo(corrupted).corrected, pristine)
        if best_psi is None or value < best_psi:
            best_lam, best_psi = lam, value
    return float(best_lam), float(best_psi)


#: Default Γ₀ grid for the uncorrelated-fault sweeps (log-spaced over
#: the paper's "range of practical interest", Γ₀ ≤ 10 %).
DEFAULT_GAMMA0_GRID = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1)

#: Default Λ candidates when an experiment optimises the sensitivity.
DEFAULT_LAMBDA_GRID = (10.0, 30.0, 50.0, 70.0, 80.0, 90.0, 100.0)
