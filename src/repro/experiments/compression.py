"""Compression experiment — §2's downlink-budget angle.

The paper notes that cosmic rays cut the NGST data compression ratio by
about 12 % besides the outright data loss; random bit-flips do the same
to the Rice coder (they destroy the smoothness its difference predictor
feeds on).  This experiment measures the Rice compression ratio of a
detector frame as Γ₀ grows, raw vs preprocessed — preprocessing buys
downlink bandwidth back as well as accuracy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_image_stack, synthetic_sky
from repro.experiments.common import ExperimentResult, averaged
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.ngst.rice import compression_ratio
from repro.runtime import TrialRuntime


def run(
    gamma0_grid: Sequence[float] = (0.0, 0.001, 0.005, 0.01, 0.025, 0.05),
    sensitivity: float = 90.0,
    sigma: float = 25.0,
    n_variants: int = 16,
    side: int = 48,
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Rice compression ratio vs Γ₀, raw vs preprocessed readouts."""
    result = ExperimentResult(
        experiment_id="compression",
        title="Rice compression ratio under input bit-flips",
        x_label="Gamma0",
        y_label="compression ratio (x)",
    )
    labels = ("clean reference", "corrupted", "preprocessed")
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma0 in gamma0_grid:

        def one_point(rng: np.random.Generator, which: str) -> float:
            config = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
            # A mild sky (soft sources) keeps the clean frames in the
            # regime where Rice coding earns its keep, as on real
            # detector data.
            base = synthetic_sky(
                side, side, rng, background=1200.0, n_sources=6,
                peak=4000.0, psf_sigma=3.0,
            )
            stack = generate_image_stack(config, rng, side, side, base=base)
            if which == "clean":
                return compression_ratio(stack)
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(stack)
            if which == "corrupted":
                return compression_ratio(corrupted)
            repaired = AlgoNGST(NGSTConfig(sensitivity=sensitivity))(
                corrupted
            ).corrected
            return compression_ratio(repaired)

        for label, which in zip(labels, ("clean", "corrupted", "preprocessed")):
            curves[label].append(
                averaged(lambda rng: one_point(rng, which), n_repeats, seed, runtime)
            )

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    result.note(
        f"frame stack N={n_variants} x {side}x{side}, sigma={sigma}, "
        f"L={sensitivity}"
    )
    return result
