"""Figure 1 — the CR-rejection system architecture, exercised.

Figure 1 is a diagram, not a measurement: a master node fragments each
1024×1024 exposure into 128×128 segments for 15 slave workers over a
Myrinet-class network.  This experiment *runs* that architecture on the
discrete-event substrate and reports its operating characteristics —
makespan, slave utilisation and network volume — as the worker count
scales, with and without slave-side preprocessing.

Expected shape: makespan falls with workers until the master's fan-out
serialisation dominates; preprocessing adds a bounded, Λ-dependent
increment that the slack slave CPU absorbs (§2.1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTConfig
from repro.core.preprocessor import NGSTPreprocessor
from repro.experiments.common import ExperimentResult
from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline
from repro.ngst.ramp import RampModel
from repro.runtime import TrialRuntime


def run(
    n_slaves_grid: Sequence[int] = (1, 2, 4, 8, 15),
    sensitivity: float = 80.0,
    frame_side: int = 256,
    tile: int = 64,
    n_readouts: int = 16,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Makespan vs worker count, with/without preprocessing.

    ``runtime`` is accepted for interface uniformity with the other
    experiments but unused: the discrete-event simulation is a single
    deterministic pass per grid point, with no trial loop to shard.
    """
    del runtime
    rng = np.random.default_rng(seed)
    ramp = RampModel(n_readouts=n_readouts)
    flux = rng.uniform(1.0, 10.0, size=(frame_side, frame_side))
    stack = ramp.generate(flux, rng)

    result = ExperimentResult(
        experiment_id="fig1",
        title="Figure 1 architecture: makespan vs worker count",
        x_label="n_slaves",
        y_label="simulated makespan (s)",
    )
    plain_curve, pre_curve, util_curve = [], [], []
    static_het, dynamic_het = [], []
    for n_slaves in n_slaves_grid:
        cluster = ClusterConfig(n_slaves=n_slaves, tile=tile)
        plain = CRRejectionPipeline(ramp, cluster).run(stack)
        pre = CRRejectionPipeline(
            ramp, cluster, NGSTPreprocessor(NGSTConfig(sensitivity=sensitivity))
        ).run(stack)
        plain_curve.append(plain.makespan_s)
        pre_curve.append(pre.makespan_s)
        util_curve.append(plain.slave_utilisation)
        # Heterogeneous COTS nodes: the scheduling discipline matters.
        for curve, scheduling in ((static_het, "static"), (dynamic_het, "dynamic")):
            cfg = ClusterConfig(
                n_slaves=n_slaves,
                tile=tile,
                scheduling=scheduling,
                node_speed_spread=0.5,
                failure_seed=seed,
            )
            curve.append(CRRejectionPipeline(ramp, cfg).run(stack).makespan_s)
    xs = [float(n) for n in n_slaves_grid]
    result.add("no preprocessing", xs, plain_curve)
    result.add(f"with Algo_NGST (L={int(sensitivity)})", xs, pre_curve)
    result.add("slave utilisation (no prep)", xs, util_curve)
    result.add("heterogeneous, static sched", xs, static_het)
    result.add("heterogeneous, dynamic sched", xs, dynamic_het)
    result.note(
        f"{frame_side}x{frame_side} frame, {tile}x{tile} fragments, "
        f"N={n_readouts} readouts, Myrinet-class network; heterogeneous "
        f"rows use lognormal(0.5) node speeds"
    )
    return result
