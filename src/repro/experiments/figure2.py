"""Figure 2 — Ψ vs Γ₀ at varying sensitivities, Algo_NGST vs median
smoothing, under the uncorrelated fault model.

Paper shape: preprocessing cuts the average relative error by 1–3
orders of magnitude for Γ₀ in the practical range; pushing Λ beyond the
per-Γ₀ optimum *degrades* accuracy again (false alarms), so the curves
for different Λ cross.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.median import median_smooth_temporal
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.experiments.common import DEFAULT_GAMMA0_GRID, ExperimentResult, averaged
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime


def run(
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = (20.0, 50.0, 80.0, 95.0),
    upsilon: int = 4,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 2 curves.

    One pristine walk per repeat; each Γ₀ point corrupts it afresh and
    measures Ψ with no preprocessing, with Algo_NGST at each Λ, and with
    window-3 median smoothing.
    """
    result = ExperimentResult(
        experiment_id="fig2",
        title="Psi vs Gamma0, Algo_NGST at several sensitivities vs median",
        x_label="Gamma0",
        y_label="avg relative error Psi",
    )
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    labels = (
        ["no-preprocessing"]
        + [f"Algo_NGST L={int(lam)}" for lam in lambdas]
        + ["median-w3"]
    )
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma0 in gamma0_grid:

        def one_point(rng: np.random.Generator, which: str, lam: float | None = None) -> float:
            pristine = generate_walk(dataset_cfg, rng, shape)
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(pristine)
            if which == "none":
                return psi(corrupted, pristine)
            if which == "median":
                return psi(median_smooth_temporal(corrupted), pristine)
            algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
            return psi(algo(corrupted).corrected, pristine)

        curves["no-preprocessing"].append(
            averaged(lambda rng: one_point(rng, "none"), n_repeats, seed, runtime)
        )
        for lam in lambdas:
            curves[f"Algo_NGST L={int(lam)}"].append(
                averaged(
                    lambda rng: one_point(rng, "algo", lam), n_repeats, seed, runtime
                )
            )
        curves["median-w3"].append(
            averaged(lambda rng: one_point(rng, "median"), n_repeats, seed, runtime)
        )

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    result.note(
        f"sigma={sigma}, N={n_variants}, upsilon={upsilon}, coords={shape}, "
        f"{n_repeats} repeats"
    )
    return result
