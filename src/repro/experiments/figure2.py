"""Figure 2 — Ψ vs Γ₀ at varying sensitivities, Algo_NGST vs median
smoothing, under the uncorrelated fault model.

Paper shape: preprocessing cuts the average relative error by 1–3
orders of magnitude for Γ₀ in the practical range; pushing Λ beyond the
per-Γ₀ optimum *degrades* accuracy again (false alarms), so the curves
for different Λ cross.

The whole figure is one task graph (:func:`graph`): per trial, the
pristine walk and each Γ₀ point's fault realization are nodes whose
output artifacts every arm's score node shares, aggregates reduce each
grid point, and a figure node assembles the final table.  Values are
bit-identical to the historical per-arm loops, the artifacts carry the
same content keys as the fused pipeline, and a killed run resumes from
the artifact store (see :mod:`repro.dag`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.median import median_smooth_temporal
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.strategies import strategy_arm_config
from repro.dag import TaskGraph, add_arm_sweep
from repro.experiments.common import (
    DEFAULT_GAMMA0_GRID,
    ExperimentResult,
    add_result_table,
    run_figure_graph,
    walk_dataset,
)
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import Arm, TrialRuntime

#: The table node every fig2 graph ends in.
TABLE_NODE = "fig2/table"


def _arms(
    lambdas: Sequence[float],
    upsilon: int,
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
) -> list[Arm]:
    arms = [Arm("no-preprocessing", lambda corrupted, pristine: psi(corrupted, pristine))]
    for lam in lambdas:
        algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
        arms.append(
            Arm(
                f"Algo_NGST L={int(lam)}",
                lambda corrupted, pristine, algo=algo: psi(
                    algo(corrupted).corrected, pristine
                ),
            )
        )
    for strategy in strategies:
        algo = AlgoNGST(
            strategy_arm_config(
                strategy, upsilon=upsilon, sensitivity=strategy_lambda
            )
        )
        arms.append(
            Arm(
                f"Algo_NGST {strategy} L={int(strategy_lambda)}",
                lambda corrupted, pristine, algo=algo: psi(
                    algo(corrupted).corrected, pristine
                ),
            )
        )
    arms.append(
        Arm(
            "median-w3",
            lambda corrupted, pristine: psi(
                median_smooth_temporal(corrupted), pristine
            ),
        )
    )
    return arms


def graph(
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = (20.0, 50.0, 80.0, 95.0),
    upsilon: int = 4,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
) -> TaskGraph:
    """The Figure 2 campaign as a task graph ending in :data:`TABLE_NODE`.

    One arm sweep per Γ₀ point; the pristine-walk dataset nodes are
    shared across points (the walk does not depend on Γ₀), turning the
    artifact reuse the cache used to discover at runtime into explicit
    graph structure.  *strategies* appends one adaptive/selective
    Algo_NGST arm per named strategy, all operating at Λ =
    *strategy_lambda* (see
    :func:`repro.core.strategies.strategy_arm_config`).
    """
    result_graph = TaskGraph("fig2")
    dataset = walk_dataset(
        NGSTDatasetConfig(n_variants=n_variants, sigma=sigma), shape
    )
    arms = _arms(lambdas, upsilon, strategies, strategy_lambda)
    aggregates = [
        add_arm_sweep(
            result_graph,
            f"fig2/g{index:02d}",
            arms,
            dataset,
            UncorrelatedFaultModel(gamma0),
            n_repeats,
            seed,
        )
        for index, gamma0 in enumerate(gamma0_grid)
    ]
    add_result_table(
        result_graph,
        TABLE_NODE,
        aggregates,
        experiment_id="fig2",
        title="Psi vs Gamma0, Algo_NGST at several sensitivities vs median",
        x_label="Gamma0",
        y_label="avg relative error Psi",
        x=list(gamma0_grid),
        notes=[
            f"sigma={sigma}, N={n_variants}, upsilon={upsilon}, "
            f"coords={shape}, {n_repeats} repeats"
        ],
    )
    return result_graph


def run(
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = (20.0, 50.0, 80.0, 95.0),
    upsilon: int = 4,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 2 curves by running :func:`graph`."""
    figure_graph = graph(
        gamma0_grid=gamma0_grid,
        lambdas=lambdas,
        upsilon=upsilon,
        sigma=sigma,
        n_variants=n_variants,
        shape=shape,
        n_repeats=n_repeats,
        seed=seed,
        strategies=strategies,
        strategy_lambda=strategy_lambda,
    )
    return run_figure_graph(figure_graph, TABLE_NODE, runtime)
