"""Figure 2 — Ψ vs Γ₀ at varying sensitivities, Algo_NGST vs median
smoothing, under the uncorrelated fault model.

Paper shape: preprocessing cuts the average relative error by 1–3
orders of magnitude for Γ₀ in the practical range; pushing Λ beyond the
per-Γ₀ optimum *degrades* accuracy again (false alarms), so the curves
for different Λ cross.

Every Γ₀ point runs as one fused multi-arm group (see
:func:`repro.experiments.common.averaged_arms`): the pristine walk and
the fault realization are produced once per trial through the artifact
cache, and the no-preprocessing control, every Λ arm, and the median
baseline all score the same arrays — bit-identical to the historical
per-arm loops, several times faster.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.median import median_smooth_temporal
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.experiments.common import (
    DEFAULT_GAMMA0_GRID,
    ExperimentResult,
    averaged_arms,
    experiment_runtime,
    walk_dataset,
)
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import Arm, TrialRuntime


def run(
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = (20.0, 50.0, 80.0, 95.0),
    upsilon: int = 4,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 2 curves.

    One pristine walk per repeat; each Γ₀ point corrupts it afresh and
    measures Ψ with no preprocessing, with Algo_NGST at each Λ, and with
    window-3 median smoothing — all arms fused onto one artifact stream
    per point.
    """
    result = ExperimentResult(
        experiment_id="fig2",
        title="Psi vs Gamma0, Algo_NGST at several sensitivities vs median",
        x_label="Gamma0",
        y_label="avg relative error Psi",
    )
    runtime = experiment_runtime(runtime)
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    dataset = walk_dataset(dataset_cfg, shape)

    arms = [Arm("no-preprocessing", lambda corrupted, pristine: psi(corrupted, pristine))]
    for lam in lambdas:
        algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
        arms.append(
            Arm(
                f"Algo_NGST L={int(lam)}",
                lambda corrupted, pristine, algo=algo: psi(
                    algo(corrupted).corrected, pristine
                ),
            )
        )
    arms.append(
        Arm(
            "median-w3",
            lambda corrupted, pristine: psi(
                median_smooth_temporal(corrupted), pristine
            ),
        )
    )
    labels = [arm.name for arm in arms]
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma0 in gamma0_grid:
        means = averaged_arms(
            arms,
            dataset,
            UncorrelatedFaultModel(gamma0),
            n_repeats,
            seed,
            runtime,
        )
        for label in labels:
            curves[label].append(means[label])

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    result.note(
        f"sigma={sigma}, N={n_variants}, upsilon={upsilon}, coords={shape}, "
        f"{n_repeats} repeats"
    )
    return result
