"""Figure 3 — preprocessing execution overhead as a function of Λ.

Paper shape: overhead is negligible at Λ = 0 (header sanity only) and
grows with the sensitivity, since Λ widens window B — "which needs
maximum computational effort" — and admits more voters.  The generic
algorithms are fixed-cost reference lines.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.experiments.common import ExperimentResult
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.overhead import time_callable
from repro.runtime import TrialRuntime


def run(
    lambdas: Sequence[float] = (0.0, 10.0, 25.0, 50.0, 75.0, 100.0),
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (64, 64),
    gamma0: float = 0.01,
    repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 3 overhead curve (milliseconds per stack).

    ``runtime`` is accepted for interface uniformity but unused: this is
    a wall-clock timing experiment, and running timed repeats across a
    shared process pool would contaminate the measurement.
    """
    del runtime
    rng = np.random.default_rng(seed)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=n_variants, sigma=sigma), rng, shape
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(gamma0), seed=seed).inject(
        pristine
    )
    result = ExperimentResult(
        experiment_id="fig3",
        title="Preprocessing overhead vs sensitivity",
        x_label="sensitivity",
        y_label="milliseconds per stack",
    )

    algo_ms = []
    for lam in lambdas:
        if lam == 0:
            # Λ = 0 performs only the FITS-header sanity analysis; on a
            # bare stack that is a no-op pass-through.
            from repro.core.preprocessor import NGSTPreprocessor

            pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
            timing = time_callable(lambda: pre.process_stack(corrupted), repeats)
        else:
            algo = AlgoNGST(NGSTConfig(sensitivity=lam))
            timing = time_callable(lambda: algo(corrupted), repeats)
        algo_ms.append(timing.best_seconds * 1e3)
    result.add("Algo_NGST", list(lambdas), algo_ms)

    median_ms = time_callable(
        lambda: median_smooth_temporal(corrupted), repeats
    ).best_seconds * 1e3
    majority_ms = time_callable(
        lambda: majority_vote_temporal(corrupted), repeats
    ).best_seconds * 1e3
    result.add("median-w3 (flat)", list(lambdas), [median_ms] * len(lambdas))
    result.add("majority-w3 (flat)", list(lambdas), [majority_ms] * len(lambdas))
    result.note(f"stack: N={n_variants} x {shape}, best of {repeats} runs")
    return result
