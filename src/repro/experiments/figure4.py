"""Figure 4 — NGST datasets under the correlated fault model (§2.2.3).

Paper shape: Algo_NGST "does much better in combating the correlated
failures in a bit-locality than the two smoothing algorithms, both of
which show quite similar performance".

Each Γ_ini point runs as one fused multi-arm group (see
:func:`repro.experiments.common.averaged_arms`): the walk and its
correlated fault realization are produced once per trial, and all four
arms — no-preprocessing, Algo_NGST at the per-dataset optimal Λ, and
the two smoothing baselines — score the same cached arrays,
bit-identical to the historical per-arm loops.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.config import CorrelatedFaultConfig, NGSTDatasetConfig
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    averaged_arms,
    best_sensitivity,
    experiment_runtime,
    walk_dataset,
)
from repro.faults.correlated import CorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import Arm, TrialRuntime

DEFAULT_GAMMA_INI_GRID = (0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.2)


def run(
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 4 comparison (optimal Λ per point)."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="Correlated fault model: Algo_NGST vs median vs majority",
        x_label="Gamma_ini",
        y_label="avg relative error Psi",
    )
    runtime = experiment_runtime(runtime)
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    dataset = walk_dataset(dataset_cfg, shape)

    arms = [
        Arm("no-preprocessing", lambda corrupted, pristine: psi(corrupted, pristine)),
        Arm(
            "Algo_NGST (opt L)",
            lambda corrupted, pristine: best_sensitivity(
                corrupted, pristine, lambdas
            )[1],
        ),
        Arm(
            "median-w3",
            lambda corrupted, pristine: psi(
                median_smooth_temporal(corrupted), pristine
            ),
        ),
        Arm(
            "majority-w3",
            lambda corrupted, pristine: psi(
                majority_vote_temporal(corrupted), pristine
            ),
        ),
    ]
    labels = [arm.name for arm in arms]
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma_ini in gamma_ini_grid:
        model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=gamma_ini))
        means = averaged_arms(arms, dataset, model, n_repeats, seed, runtime)
        for label in labels:
            curves[label].append(means[label])

    for label in labels:
        result.add(label, list(gamma_ini_grid), curves[label])
    result.note(f"sigma={sigma}, N={n_variants}, coords={shape}, {n_repeats} repeats")
    return result
