"""Figure 4 — NGST datasets under the correlated fault model (§2.2.3).

Paper shape: Algo_NGST "does much better in combating the correlated
failures in a bit-locality than the two smoothing algorithms, both of
which show quite similar performance".
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.config import CorrelatedFaultConfig, NGSTDatasetConfig
from repro.data.ngst import generate_walk
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    averaged,
    best_sensitivity,
)
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime

DEFAULT_GAMMA_INI_GRID = (0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.2)


def run(
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 4 comparison (optimal Λ per point)."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="Correlated fault model: Algo_NGST vs median vs majority",
        x_label="Gamma_ini",
        y_label="avg relative error Psi",
    )
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
    labels = ("no-preprocessing", "Algo_NGST (opt L)", "median-w3", "majority-w3")
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for gamma_ini in gamma_ini_grid:

        def one_point(rng: np.random.Generator, which: str) -> float:
            pristine = generate_walk(dataset_cfg, rng, shape)
            model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=gamma_ini))
            injector = FaultInjector(model, seed=int(rng.integers(2**31)))
            corrupted, _ = injector.inject(pristine)
            if which == "none":
                return psi(corrupted, pristine)
            if which == "median":
                return psi(median_smooth_temporal(corrupted), pristine)
            if which == "majority":
                return psi(majority_vote_temporal(corrupted), pristine)
            _, best = best_sensitivity(corrupted, pristine, lambdas)
            return best

        for label, which in zip(labels, ("none", "algo", "median", "majority")):
            curves[label].append(
                averaged(lambda rng: one_point(rng, which), n_repeats, seed, runtime)
            )

    for label in labels:
        result.add(label, list(gamma_ini_grid), curves[label])
    result.note(f"sigma={sigma}, N={n_variants}, coords={shape}, {n_repeats} repeats")
    return result
