"""Figure 4 — NGST datasets under the correlated fault model (§2.2.3).

Paper shape: Algo_NGST "does much better in combating the correlated
failures in a bit-locality than the two smoothing algorithms, both of
which show quite similar performance".

The figure is one task graph (:func:`graph`): per trial, the walk and
each Γ_ini point's correlated fault realization are shared artifact
nodes scored by all four arms — no-preprocessing, Algo_NGST at the
per-dataset optimal Λ, and the two smoothing baselines — with
aggregates and a figure-table node on top.  Bit-identical to the
historical per-arm loops, resumable from the artifact store.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.config import CorrelatedFaultConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.strategies import strategy_arm_config
from repro.dag import TaskGraph, add_arm_sweep
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    add_result_table,
    best_sensitivity,
    run_figure_graph,
    walk_dataset,
)
from repro.faults.correlated import CorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import Arm, TrialRuntime

DEFAULT_GAMMA_INI_GRID = (0.005, 0.01, 0.025, 0.05, 0.1, 0.15, 0.2)

#: The table node every fig4 graph ends in.
TABLE_NODE = "fig4/table"


def _arms(
    lambdas: Sequence[float],
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
) -> list[Arm]:
    lambdas = tuple(lambdas)
    arms = [
        Arm("no-preprocessing", lambda corrupted, pristine: psi(corrupted, pristine)),
        Arm(
            "Algo_NGST (opt L)",
            lambda corrupted, pristine: best_sensitivity(
                corrupted, pristine, lambdas
            )[1],
        ),
    ]
    for strategy in strategies:
        algo = AlgoNGST(
            strategy_arm_config(strategy, sensitivity=strategy_lambda)
        )
        arms.append(
            Arm(
                f"Algo_NGST {strategy} L={int(strategy_lambda)}",
                lambda corrupted, pristine, algo=algo: psi(
                    algo(corrupted).corrected, pristine
                ),
            )
        )
    arms += [
        Arm(
            "median-w3",
            lambda corrupted, pristine: psi(
                median_smooth_temporal(corrupted), pristine
            ),
        ),
        Arm(
            "majority-w3",
            lambda corrupted, pristine: psi(
                majority_vote_temporal(corrupted), pristine
            ),
        ),
    ]
    return arms


def graph(
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
) -> TaskGraph:
    """The Figure 4 campaign as a task graph ending in :data:`TABLE_NODE`.

    *strategies* appends one adaptive/selective Algo_NGST arm per named
    strategy at Λ = *strategy_lambda*, mirroring figure 2.
    """
    result_graph = TaskGraph("fig4")
    dataset = walk_dataset(
        NGSTDatasetConfig(n_variants=n_variants, sigma=sigma), shape
    )
    arms = _arms(lambdas, strategies, strategy_lambda)
    aggregates = [
        add_arm_sweep(
            result_graph,
            f"fig4/g{index:02d}",
            arms,
            dataset,
            CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=gamma_ini)),
            n_repeats,
            seed,
        )
        for index, gamma_ini in enumerate(gamma_ini_grid)
    ]
    add_result_table(
        result_graph,
        TABLE_NODE,
        aggregates,
        experiment_id="fig4",
        title="Correlated fault model: Algo_NGST vs median vs majority",
        x_label="Gamma_ini",
        y_label="avg relative error Psi",
        x=list(gamma_ini_grid),
        notes=[
            f"sigma={sigma}, N={n_variants}, coords={shape}, "
            f"{n_repeats} repeats"
        ],
    )
    return result_graph


def run(
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    shape: tuple[int, ...] = (16, 16),
    n_repeats: int = 3,
    seed: int = 2003,
    strategies: Sequence[str] = (),
    strategy_lambda: float = 50.0,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 4 comparison by running :func:`graph`."""
    figure_graph = graph(
        gamma_ini_grid=gamma_ini_grid,
        lambdas=lambdas,
        sigma=sigma,
        n_variants=n_variants,
        shape=shape,
        n_repeats=n_repeats,
        seed=seed,
        strategies=strategies,
        strategy_lambda=strategy_lambda,
    )
    return run_figure_graph(figure_graph, TABLE_NODE, runtime)
