"""Figure 5 — performance across the entire gamut of mean intensities.

Γ₀ = 2.5 %, Υ = 4, optimum Λ per dataset, averaged over many datasets
(the paper uses 100).  Paper shape: preprocessing wins across the whole
gamut; the *relative* error of the unpreprocessed data falls with mean
intensity (a fixed bit-flip damage divided by a larger denominator),
and detector background noise keeps the bottom of the gamut non-zero.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.majority import majority_vote_temporal
from repro.baselines.median import median_smooth_temporal
from repro.data.gamut import gamut_dataset, gamut_means
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    averaged,
    best_sensitivity,
)
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime


def run(
    means: Sequence[int] | None = None,
    gamma0: float = 0.025,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    sigma: float = 25.0,
    n_variants: int = 64,
    n_datasets: int = 20,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Regenerate the Figure 5 gamut sweep.

    ``n_datasets`` plays the role of the paper's 100-dataset averaging;
    reduce it for quick runs, raise it for smoother curves.
    """
    if means is None:
        means = gamut_means(10).tolist()
    result = ExperimentResult(
        experiment_id="fig5",
        title="Performance across the gamut of mean intensities",
        x_label="mean intensity",
        y_label="avg relative error Psi",
    )
    labels = ("no-preprocessing", "Algo_NGST (opt L)", "median-w3", "majority-w3")
    curves: dict[str, list[float]] = {label: [] for label in labels}

    for mean in means:

        def one_point(rng: np.random.Generator, which: str) -> float:
            pristine = gamut_dataset(
                int(mean), rng, n_variants=n_variants, sigma=sigma
            )
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(pristine)
            if which == "none":
                return psi(corrupted, pristine)
            if which == "median":
                return psi(median_smooth_temporal(corrupted), pristine)
            if which == "majority":
                return psi(majority_vote_temporal(corrupted), pristine)
            _, best = best_sensitivity(corrupted, pristine, lambdas)
            return best

        for label, which in zip(labels, ("none", "algo", "median", "majority")):
            curves[label].append(
                averaged(lambda rng: one_point(rng, which), n_datasets, seed, runtime)
            )

    for label in labels:
        result.add(label, [float(m) for m in means], curves[label])
    result.note(
        f"Gamma0={gamma0}, upsilon=4, optimum L per dataset, "
        f"{n_datasets} datasets per point"
    )
    return result
