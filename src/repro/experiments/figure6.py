"""Figure 6 — quasi-NGST synthetic datasets with swept σ; Υ ∈ {2, 4, 6}.

Paper shapes, row by row:

* σ = 0 (constant pixel intensity): larger Υ is better (6 > 4 > 2),
  especially at higher Γ₀ — with no natural variation, more consulted
  neighbours can only help.
* moderate σ: a Υ = 4 / Υ = 6 optimality cross-over appears as Γ₀
  grows (the paper puts it near Γ₀ ≈ 0.04 at σ = 250).
* σ = 8000 (extremely turbulent, overflow-truncated): Υ = 6 is worst
  at low Γ₀ (false alarms dominate) yet best at very high Γ₀; Υ = 6
  has the flattest curve, Υ = 2 the steepest.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.experiments.common import (
    DEFAULT_LAMBDA_GRID,
    ExperimentResult,
    averaged,
)
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import TrialRuntime

DEFAULT_SIGMA_GRID = (0.0, 25.0, 250.0, 8000.0)
DEFAULT_GAMMA0_GRID = (0.001, 0.0025, 0.005, 0.01, 0.02, 0.04, 0.08)


def run(
    sigmas: Sequence[float] = DEFAULT_SIGMA_GRID,
    upsilons: Sequence[int] = (2, 4, 6),
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = DEFAULT_LAMBDA_GRID,
    n_variants: int = 64,
    shape: tuple[int, ...] = (12, 12),
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> list[ExperimentResult]:
    """Regenerate the Figure 6 panel grid: one result per σ.

    Every (σ, Υ, Γ₀) point uses the per-point optimal Λ, mirroring the
    paper's use of experimentally optimised parameters.
    """
    results = []
    for sigma in sigmas:
        result = ExperimentResult(
            experiment_id=f"fig6-sigma{int(sigma)}",
            title=f"Upsilon comparison at sigma={sigma:g} (Pi(1)=27000)",
            x_label="Gamma0",
            y_label="avg relative error Psi",
        )
        dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
        curves: dict[str, list[float]] = {f"upsilon={u}": [] for u in upsilons}
        none_curve: list[float] = []
        for gamma0 in gamma0_grid:

            def one_point(rng: np.random.Generator, upsilon: int | None) -> float:
                pristine = generate_walk(dataset_cfg, rng, shape)
                injector = FaultInjector(
                    UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
                )
                corrupted, _ = injector.inject(pristine)
                if upsilon is None:
                    return psi(corrupted, pristine)
                best = None
                for lam in lambdas:
                    algo = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))
                    value = psi(algo(corrupted).corrected, pristine)
                    best = value if best is None else min(best, value)
                return best

            none_curve.append(
                averaged(lambda rng: one_point(rng, None), n_repeats, seed, runtime)
            )
            for upsilon in upsilons:
                curves[f"upsilon={upsilon}"].append(
                    averaged(
                        lambda rng: one_point(rng, upsilon), n_repeats, seed, runtime
                    )
                )
        result.add("no-preprocessing", list(gamma0_grid), none_curve)
        for label, ys in curves.items():
            result.add(label, list(gamma0_grid), ys)
        result.note(f"optimum L per point, N={n_variants}, coords={shape}")
        results.append(result)
    return results
