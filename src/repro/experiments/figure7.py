"""Figures 7/8 — OTIS under the uncorrelated fault model: the three
characteristic datasets (Blob / Stripe / Spots), Algo_OTIS vs the two
adapted standard algorithms.

Paper shapes (§8): at Γ₀ = 0.05 the raw input error is ≈ 12 % and
preprocessing brings it well below one percent; bitwise majority voting
beats median smoothing overall; the custom Algo_OTIS performs far
better than either for Γ₀ ≥ 0.025.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.majority import majority_vote_spatial
from repro.baselines.median import median_smooth_spatial
from repro.config import OTISConfig
from repro.core.algo_otis import AlgoOTIS
from repro.data.otis import DATASET_NAMES, make_dataset
from repro.experiments.common import ExperimentResult, averaged
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn
from repro.runtime import TrialRuntime

DEFAULT_GAMMA0_GRID = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1)
DEFAULT_OTIS_LAMBDAS = (20.0, 40.0, 60.0, 80.0, 100.0)


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    gamma0_grid: Sequence[float] = DEFAULT_GAMMA0_GRID,
    lambdas: Sequence[float] = DEFAULT_OTIS_LAMBDAS,
    rows: int = 64,
    cols: int = 64,
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> list[ExperimentResult]:
    """Regenerate the Figure 7 panels: one result per OTIS dataset.

    Faults strike the 16-bit DN storage encoding; Ψ is measured on the
    decoded physical values (see DESIGN.md §2 for the substitution).
    """
    results = []
    for name in datasets:
        result = ExperimentResult(
            experiment_id=f"fig7-{name}",
            title=f"OTIS '{name}': uncorrelated faults",
            x_label="Gamma0",
            y_label="avg relative error Psi",
        )
        labels = ("no-preprocessing", "Algo_OTIS (opt L)", "median-3x3", "majority-3")
        curves: dict[str, list[float]] = {label: [] for label in labels}

        for gamma0 in gamma0_grid:

            def one_point(rng: np.random.Generator, which: str) -> float:
                field = make_dataset(name, rows, cols, rng)
                dn = encode_dn(field)
                pristine = decode_dn(dn)
                injector = FaultInjector(
                    UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
                )
                corrupted, _ = injector.inject(dn)
                if which == "none":
                    return psi(decode_dn(corrupted), pristine)
                if which == "median":
                    return psi(decode_dn(median_smooth_spatial(corrupted)), pristine)
                if which == "majority":
                    return psi(decode_dn(majority_vote_spatial(corrupted)), pristine)
                best = None
                for lam in lambdas:
                    algo = AlgoOTIS(OTISConfig(sensitivity=lam))
                    value = psi(decode_dn(algo(corrupted).corrected), pristine)
                    best = value if best is None else min(best, value)
                return best

            for label, which in zip(labels, ("none", "algo", "median", "majority")):
                curves[label].append(
                    averaged(
                        lambda rng: one_point(rng, which), n_repeats, seed, runtime
                    )
                )

        for label in labels:
            result.add(label, list(gamma0_grid), curves[label])
        result.note(f"{rows}x{cols} field, DN storage encoding, {n_repeats} repeats")
        results.append(result)
    return results
