"""Figure 8 — the three OTIS datasets, characterised.

Figure 8 displays the "Blob", "Stripe" and "Spots" fields themselves.
A table can't show pictures, so this experiment regenerates the figure
as the morphological statistics that motivated the paper's selection
(§7.3): overall variability, how concentrated the turbulence is, and
how far the extremes reach — verifying that our synthetic stand-ins
have the published characteristics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.otis import DATASET_NAMES, make_dataset
from repro.experiments.common import ExperimentResult


def _centre_band_concentration(field: np.ndarray) -> float:
    """Std of the central vertical band over the std of the flanks.

    ≫ 1 means the turbulence is concentrated in the centre (Stripe's
    signature); ≈ 1 means it is spread out.
    """
    cols = field.shape[1]
    lo, hi = cols // 2 - cols // 8, cols // 2 + cols // 8
    centre = field[:, lo:hi].std()
    flanks = np.concatenate([field[:, : cols // 4], field[:, -cols // 4 :]], axis=1).std()
    return float(centre / max(flanks, 1e-9))


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    rows: int = 64,
    cols: int = 64,
    n_repeats: int = 5,
    seed: int = 2003,
) -> ExperimentResult:
    """Morphology statistics per dataset (x axis indexes the datasets)."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="OTIS dataset morphologies (Blob / Stripe / Spots)",
        x_label="dataset#",
        y_label="per-statistic (see labels)",
    )
    stats: dict[str, list[float]] = {
        "std": [],
        "centre-band concentration": [],
        "extreme span": [],
        "deviant pixel fraction": [],
    }
    seeds = np.random.SeedSequence(seed).spawn(n_repeats)
    for name in datasets:
        per_stat = {key: [] for key in stats}
        for child in seeds:
            rng = np.random.default_rng(child)
            field = make_dataset(name, rows, cols, rng).astype(np.float64)
            per_stat["std"].append(field.std())
            per_stat["centre-band concentration"].append(
                _centre_band_concentration(field)
            )
            per_stat["extreme span"].append(field.max() - field.min())
            median = np.median(field)
            per_stat["deviant pixel fraction"].append(
                float(np.mean(np.abs(field - median) > 10.0))
            )
        for key in stats:
            stats[key].append(float(np.mean(per_stat[key])))
    xs = list(range(1, len(datasets) + 1))
    for key, values in stats.items():
        result.add(key, [float(x) for x in xs], values)
    result.note("dataset# " + ", ".join(f"{i + 1}={n}" for i, n in enumerate(datasets)))
    result.note(
        "expected: Stripe max centre-band concentration; Spots max overall "
        "std (more turbulent than Stripe but spread out); Blob flattest (§7.3)"
    )
    return result
