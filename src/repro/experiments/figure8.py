"""Figure 8 — the three OTIS datasets, characterised.

Figure 8 displays the "Blob", "Stripe" and "Spots" fields themselves.
A table can't show pictures, so this experiment regenerates the figure
as the morphological statistics that motivated the paper's selection
(§7.3): overall variability, how concentrated the turbulence is, and
how far the extremes reach — verifying that our synthetic stand-ins
have the published characteristics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.otis import DATASET_NAMES, make_dataset
from repro.experiments.common import ExperimentResult
from repro.runtime import TrialRuntime


def _centre_band_concentration(field: np.ndarray) -> float:
    """Std of the central vertical band over the std of the flanks.

    ≫ 1 means the turbulence is concentrated in the centre (Stripe's
    signature); ≈ 1 means it is spread out.
    """
    cols = field.shape[1]
    lo, hi = cols // 2 - cols // 8, cols // 2 + cols // 8
    centre = field[:, lo:hi].std()
    flanks = np.concatenate([field[:, : cols // 4], field[:, -cols // 4 :]], axis=1).std()
    return float(centre / max(flanks, 1e-9))


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    rows: int = 64,
    cols: int = 64,
    n_repeats: int = 5,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Morphology statistics per dataset (x axis indexes the datasets)."""
    runtime = runtime if runtime is not None else TrialRuntime()
    result = ExperimentResult(
        experiment_id="fig8",
        title="OTIS dataset morphologies (Blob / Stripe / Spots)",
        x_label="dataset#",
        y_label="per-statistic (see labels)",
    )
    stats: dict[str, list[float]] = {
        "std": [],
        "centre-band concentration": [],
        "extreme span": [],
        "deviant pixel fraction": [],
    }
    stat_keys = tuple(stats)
    for name in datasets:

        def one_field(rng: np.random.Generator) -> list[float]:
            field = make_dataset(name, rows, cols, rng).astype(np.float64)
            median = np.median(field)
            return [
                float(field.std()),
                _centre_band_concentration(field),
                float(field.max() - field.min()),
                float(np.mean(np.abs(field - median) > 10.0)),
            ]

        trials = runtime.run(one_field, n_repeats, seed)
        for key, column in zip(stat_keys, zip(*trials)):
            stats[key].append(float(np.mean(column)))
    xs = list(range(1, len(datasets) + 1))
    for key, values in stats.items():
        result.add(key, [float(x) for x in xs], values)
    result.note("dataset# " + ", ".join(f"{i + 1}={n}" for i, n in enumerate(datasets)))
    result.note(
        "expected: Stripe max centre-band concentration; Spots max overall "
        "std (more turbulent than Stripe but spread out); Blob flattest (§7.3)"
    )
    return result
