"""Figure 9 — OTIS datasets under the correlated fault model.

Paper shape: all three preprocessing algorithms share a breakdown point
near Γ_ini ≈ 0.2; beyond it, preprocessing *deteriorates* the data
(corrupted bits pseudo-correct the remaining clean bits), since all
three schemes interpolate from neighbouring bits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.majority import majority_vote_spatial
from repro.baselines.median import median_smooth_spatial
from repro.config import CorrelatedFaultConfig, OTISConfig
from repro.core.algo_otis import AlgoOTIS
from repro.data.otis import DATASET_NAMES, make_dataset
from repro.experiments.common import ExperimentResult, averaged
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn
from repro.runtime import TrialRuntime

DEFAULT_GAMMA_INI_GRID = (0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4)
DEFAULT_OTIS_LAMBDAS = (20.0, 40.0, 60.0, 80.0, 100.0)


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    gamma_ini_grid: Sequence[float] = DEFAULT_GAMMA_INI_GRID,
    lambdas: Sequence[float] = DEFAULT_OTIS_LAMBDAS,
    rows: int = 48,
    cols: int = 48,
    n_repeats: int = 2,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> list[ExperimentResult]:
    """Regenerate the Figure 9 panels: one result per OTIS dataset."""
    results = []
    for name in datasets:
        result = ExperimentResult(
            experiment_id=f"fig9-{name}",
            title=f"OTIS '{name}': correlated faults (run model)",
            x_label="Gamma_ini",
            y_label="avg relative error Psi",
        )
        labels = ("no-preprocessing", "Algo_OTIS (opt L)", "median-3x3", "majority-3")
        curves: dict[str, list[float]] = {label: [] for label in labels}

        for gamma_ini in gamma_ini_grid:

            def one_point(rng: np.random.Generator, which: str) -> float:
                field = make_dataset(name, rows, cols, rng)
                dn = encode_dn(field)
                pristine = decode_dn(dn)
                model = CorrelatedFaultModel(
                    CorrelatedFaultConfig(gamma_ini=gamma_ini)
                )
                injector = FaultInjector(model, seed=int(rng.integers(2**31)))
                corrupted, _ = injector.inject(dn)
                if which == "none":
                    return psi(decode_dn(corrupted), pristine)
                if which == "median":
                    return psi(decode_dn(median_smooth_spatial(corrupted)), pristine)
                if which == "majority":
                    return psi(decode_dn(majority_vote_spatial(corrupted)), pristine)
                if which == "fp-ratio":
                    # The breakdown mechanism the paper describes:
                    # corrupted bits pseudo-correcting clean bits.  The
                    # fraction is weighted by binary significance (a
                    # falsely flipped high bit harms far more than a
                    # repaired low bit helps); crossing 0.5 means net
                    # harm at the bit level.
                    algo = AlgoOTIS(OTISConfig())
                    processed = algo(corrupted).corrected
                    injected = np.bitwise_xor(dn, corrupted)
                    residual = np.bitwise_xor(dn, processed)
                    good = float((injected & ~residual).astype(np.float64).sum())
                    harm = float((~injected & residual).astype(np.float64).sum())
                    return harm / (good + harm) if good + harm else 0.0
                best = None
                for lam in lambdas:
                    algo = AlgoOTIS(OTISConfig(sensitivity=lam))
                    value = psi(decode_dn(algo(corrupted).corrected), pristine)
                    best = value if best is None else min(best, value)
                return best

            for label, which in zip(labels, ("none", "algo", "median", "majority")):
                curves[label].append(
                    averaged(
                        lambda rng: one_point(rng, which), n_repeats, seed, runtime
                    )
                )
            curves.setdefault("Algo_OTIS pseudo-corr fraction", []).append(
                averaged(
                    lambda rng: one_point(rng, "fp-ratio"), n_repeats, seed, runtime
                )
            )

        for label in labels:
            result.add(label, list(gamma_ini_grid), curves[label])
        result.add(
            "Algo_OTIS pseudo-corr fraction",
            list(gamma_ini_grid),
            curves["Algo_OTIS pseudo-corr fraction"],
        )
        result.note(f"{rows}x{cols} field, DN storage, {n_repeats} repeats")
        result.note(
            "pseudo-corr fraction = significance-weighted false-alarm share "
            "of the algorithm's bit-flips at the default sensitivity; it "
            "rises sharply past Gamma_ini ~ 0.2 (the paper's breakdown point)"
        )
        results.append(result)
    return results


def breakdown_point(result: ExperimentResult, algorithm_label: str) -> float | None:
    """First Γ_ini at which *algorithm_label* stops improving the data.

    Returns None if the algorithm still helps across the whole grid —
    useful for asserting the "≈ 0.2 for all three algorithms" claim.
    """
    raw = result.series_by_label("no-preprocessing")
    algo = result.series_by_label(algorithm_label)
    for x, y_raw, y_algo in zip(raw.x, raw.y, algo.y):
        if y_algo >= y_raw:
            return float(x)
    return None
