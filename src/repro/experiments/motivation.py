"""Motivation experiment — §1's argument, made quantitative.

The classic software-redundancy schemes guard the *computation*:

* ABFT checksums verify a matrix product;
* NVP voting masks version-local failures;

but none of them can help when the *input data* is what got corrupted:
the checksums are computed over the corrupted operands, and all N
versions agree on the same wrong answer.  This experiment runs a
calibration-matrix product over an NGST frame under input bit-flips and
measures, per scheme, the error of the *certified* output — with and
without input preprocessing in front.

Expected shape: the schemes certify wrong outputs at full fault impact
(error tracks the raw input error), while preprocessing cuts the
certified-output error by an order of magnitude; certification rates
stay near 100 % throughout, which is exactly the danger.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.experiments.common import ExperimentResult
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.ft.abft import abft_matmul
from repro.ft.nvp import NVPVoter
from repro.runtime import TrialRuntime


def _calibration_matrix(size: int) -> np.ndarray:
    """A fixed, well-conditioned flat-field calibration operator."""
    rng = np.random.default_rng(424242)
    return np.eye(size) + 0.01 * rng.standard_normal((size, size))


def _relative_error(observed: np.ndarray, reference: np.ndarray) -> float:
    denom = max(1e-9, float(np.abs(reference).mean()))
    return float(np.abs(observed - reference).mean()) / denom


def run(
    gamma0_grid: Sequence[float] = (0.001, 0.005, 0.01, 0.025, 0.05),
    sensitivity: float = 90.0,
    sigma: float = 25.0,
    n_variants: int = 32,
    side: int = 16,
    n_repeats: int = 3,
    seed: int = 2003,
    runtime: TrialRuntime | None = None,
) -> ExperimentResult:
    """Certified-output error of ABFT / NVP with raw vs preprocessed input.

    Each trial returns ``[error, certified]`` so the certification
    verdicts travel with the trial values — they survive process-pool
    workers and checkpoint resume, unlike an accumulator side effect.
    """
    runtime = runtime if runtime is not None else TrialRuntime()
    result = ExperimentResult(
        experiment_id="motivation",
        title="Input faults defeat computation-level FT (ABFT/NVP)",
        x_label="Gamma0",
        y_label="certified-output relative error",
    )
    calibration = _calibration_matrix(side)
    labels = (
        "ABFT (raw input)",
        "ABFT (preprocessed)",
        "NVP 3-version (raw input)",
        "NVP 3-version (preprocessed)",
    )
    curves: dict[str, list[float]] = {label: [] for label in labels}
    certified = {label: [] for label in ("ABFT", "NVP")}

    for gamma0 in gamma0_grid:

        def one_point(
            rng: np.random.Generator, scheme: str, preprocess: bool
        ) -> list[float]:
            dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=sigma)
            stack = generate_walk(dataset_cfg, rng, (side, side))
            reference_frame = stack.mean(axis=0)
            reference = reference_frame @ calibration
            injector = FaultInjector(
                UncorrelatedFaultModel(gamma0), seed=int(rng.integers(2**31))
            )
            corrupted, _ = injector.inject(stack)
            if preprocess:
                corrupted = AlgoNGST(NGSTConfig(sensitivity=sensitivity))(
                    corrupted
                ).corrected
            frame = corrupted.astype(np.float64).mean(axis=0)

            if scheme == "abft":
                product, report = abft_matmul(frame, calibration)
                return [
                    _relative_error(product, reference),
                    float(report.consistent),
                ]

            # Three "independently developed" versions of the product.
            versions = [
                lambda x: x @ calibration,
                lambda x: (calibration.T @ x.T).T,
                lambda x: np.einsum("ij,jk->ik", x, calibration),
            ]
            voter = NVPVoter(versions, atol=1e-6)
            outcome = voter.run(frame)
            output = outcome.output if outcome.output is not None else frame
            return [_relative_error(output, reference), float(outcome.agreed)]

        for label, (scheme, pre) in zip(
            labels,
            (("abft", False), ("abft", True), ("nvp", False), ("nvp", True)),
        ):
            trials = runtime.run(
                lambda rng: one_point(rng, scheme, pre), n_repeats, seed
            )
            curves[label].append(float(np.mean([error for error, _ in trials])))
            certified["ABFT" if scheme == "abft" else "NVP"].extend(
                bool(flag) for _, flag in trials
            )

    for label in labels:
        result.add(label, list(gamma0_grid), curves[label])
    for scheme, verdicts in certified.items():
        rate = float(np.mean(verdicts)) if verdicts else 0.0
        result.note(
            f"{scheme} certified its output in {rate:.0%} of runs — the "
            "schemes cannot see input corruption"
        )
    result.note(f"L={sensitivity}, sigma={sigma}, frame={side}x{side}")
    return result
