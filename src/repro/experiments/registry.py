"""Experiment registry: id → runnable.

Ids mirror the paper's figure numbering; ``run_experiment`` normalises
single results and panel lists into a list of results.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ConfigurationError
from repro.runtime import TrialRuntime
from repro.experiments import (
    ablation_layout,
    ablation_locality,
    ablation_storage,
    ablation_windows,
    compression,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    motivation,
)
from repro.experiments.common import ExperimentResult

REGISTRY: dict[str, Callable] = {
    "fig1": figure1.run,
    "fig2": figure2.run,
    "fig3": figure3.run,
    "fig4": figure4.run,
    "fig5": figure5.run,
    "fig6": figure6.run,
    "fig7": figure7.run,
    "fig8": figure8.run,
    "fig9": figure9.run,
    "ablate-layout": ablation_layout.run,
    "ablate-locality": ablation_locality.run,
    "ablate-storage": ablation_storage.run,
    "ablate-windows": ablation_windows.run,
    "compression": compression.run,
    "motivation": motivation.run,
}


def run_experiment(
    experiment_id: str,
    runtime: TrialRuntime | None = None,
    **kwargs,
) -> list[ExperimentResult]:
    """Run one registered experiment; returns its result panels.

    Args:
        experiment_id: a key of :data:`REGISTRY`.
        runtime: optional :class:`repro.runtime.TrialRuntime` that the
            experiment's trial loops run on — the hook through which
            ``--jobs``/``--resume`` parallelise and checkpoint every
            figure.  Serial in-process execution when omitted.
        **kwargs: forwarded to the experiment's ``run``.
    """
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(REGISTRY)}"
        ) from None
    if runtime is not None:
        kwargs = {**kwargs, "runtime": runtime}
    outcome = runner(**kwargs)
    if isinstance(outcome, ExperimentResult):
        return [outcome]
    return list(outcome)
