"""Fault models of §2.2: uncorrelated (Γ₀) and run-correlated (Γ_ini)
bit-flips, memory-layout mapping, and seeded injection campaigns.
"""

from repro.faults.campaign import Campaign, CampaignSummary
from repro.faults.correlated import CorrelatedFaultModel, correlated_flip_grid
from repro.faults.injector import FaultInjector, InjectionReport
from repro.faults.layout import (
    InterleavedLayout,
    MemoryLayout,
    PixelMajorLayout,
    RowMajorLayout,
)
from repro.faults.transit import GilbertElliottConfig, TransitFaultModel
from repro.faults.uncorrelated import UncorrelatedFaultModel, uncorrelated_flip_mask

__all__ = [
    "Campaign",
    "CampaignSummary",
    "CorrelatedFaultModel",
    "FaultInjector",
    "GilbertElliottConfig",
    "InjectionReport",
    "InterleavedLayout",
    "MemoryLayout",
    "PixelMajorLayout",
    "RowMajorLayout",
    "TransitFaultModel",
    "UncorrelatedFaultModel",
    "correlated_flip_grid",
    "uncorrelated_flip_mask",
]
