"""Multi-trial fault-injection campaigns with summary statistics.

The paper's evaluation averages each point over many datasets (Figure 5
uses 100).  :class:`Campaign` makes that workflow first-class: it wires
a dataset generator, a fault model, a preprocessing algorithm and a
metric together, runs N independently seeded trials, and reports the
mean with a normal-approximation confidence interval, so experiment
code states *what* is averaged instead of re-implementing the loop.

The trial loop itself is delegated to
:class:`repro.runtime.TrialRuntime`: trial seeds are the
``SeedSequence.spawn`` children of the campaign seed regardless of
backend or sharding, so a campaign run across a process pool — or
killed and resumed from a checkpoint — produces bit-identical values
to a serial run.  Multi-arm comparisons (:meth:`Campaign.run_arms`)
additionally emit a dataset → fault → score → aggregate task graph
(:meth:`Campaign.graph`) scheduled by :class:`repro.dag.DagScheduler`,
whose completed-work state lives in the artifact store rather than a
checkpoint file.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.runtime import Arm, DatasetSpec, FaultSpec, TrialRuntime

#: z-scores for the supported confidence levels.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}

#: Process-unique tokens for campaigns run without an explicit dataset
#: cache key: distinct campaigns must never share cache entries.
_UNKEYED_DATASETS = itertools.count()


@dataclass(frozen=True)
class CampaignSummary:
    """Statistics over one campaign's trials.

    Attributes:
        mean: sample mean of the metric.
        std: sample standard deviation (ddof=1; 0 for a single trial).
        ci_half_width: half-width of the confidence interval around the
            mean (normal approximation).
        n_trials: number of trials aggregated.
        values: the raw per-trial metric values.
    """

    mean: float
    std: float
    ci_half_width: float
    n_trials: int
    values: tuple[float, ...]

    @property
    def ci(self) -> tuple[float, float]:
        return (self.mean - self.ci_half_width, self.mean + self.ci_half_width)

    @classmethod
    def from_values(
        cls, values: "list[float] | tuple[float, ...]", confidence: float = 0.95
    ) -> "CampaignSummary":
        """Summarise raw per-trial values at the given confidence level."""
        if confidence not in _Z_SCORES:
            raise ConfigurationError(
                f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
            )
        if not values:
            raise ConfigurationError("need at least one trial value")
        mean = float(np.mean(values))
        std = float(np.std(values, ddof=1)) if len(values) > 1 else 0.0
        half = _Z_SCORES[confidence] * std / math.sqrt(len(values))
        return cls(
            mean=mean,
            std=std,
            ci_half_width=half,
            n_trials=len(values),
            values=tuple(float(v) for v in values),
        )


class Campaign:
    """A repeatable generate → corrupt → preprocess → measure loop.

    Args:
        generate: ``rng -> pristine dataset``.
        fault_model: object with ``corrupt(data, rng)`` (any of the
            :mod:`repro.faults` models).
        preprocess: ``corrupted -> repaired``; identity when None (the
            no-preprocessing arm).
        metric: ``(processed, pristine) -> float`` (e.g.
            :func:`repro.metrics.relative_error.psi`).
        confidence: confidence level for the interval (0.90/0.95/0.99).
    """

    def __init__(
        self,
        generate: Callable[[np.random.Generator], np.ndarray],
        fault_model,
        metric: Callable[[np.ndarray, np.ndarray], float],
        preprocess: Callable[[np.ndarray], np.ndarray] | None = None,
        confidence: float = 0.95,
    ) -> None:
        if confidence not in _Z_SCORES:
            raise ConfigurationError(
                f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
            )
        if not hasattr(fault_model, "corrupt"):
            raise ConfigurationError("fault_model must expose corrupt(data, rng)")
        self.generate = generate
        self.fault_model = fault_model
        self.metric = metric
        self.preprocess = preprocess
        self.confidence = confidence

    def _trial(self, rng: np.random.Generator) -> float:
        """One generate → corrupt → preprocess → measure pass."""
        pristine = self.generate(rng)
        injector = FaultInjector(self.fault_model, seed=int(rng.integers(2**31)))
        corrupted, _ = injector.inject(pristine)
        processed = self.preprocess(corrupted) if self.preprocess else corrupted
        return float(self.metric(processed, pristine))

    def run(
        self,
        n_trials: int,
        seed: int = 0,
        runtime: TrialRuntime | None = None,
        key: str | None = None,
    ) -> CampaignSummary:
        """Run *n_trials* independently seeded trials and summarise.

        Args:
            n_trials: number of trials (>= 1).
            seed: root seed; per-trial seeds are its ``SeedSequence``
                children.
            runtime: execution runtime; a serial
                :class:`~repro.runtime.TrialRuntime` when omitted.
                Pass one with a :class:`~repro.runtime.ProcessPoolBackend`
                to parallelise, or with a checkpoint store to make the
                campaign resumable — the summary is identical either way.
            key: checkpoint identity for this run (see
                :meth:`TrialRuntime.run`).
        """
        if n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
        runtime = runtime if runtime is not None else TrialRuntime()
        values = runtime.run(self._trial, n_trials, seed, key=key)
        return CampaignSummary.from_values(values, self.confidence)

    def graph(
        self,
        arms: Mapping[str, Callable[[np.ndarray], np.ndarray] | None],
        n_trials: int,
        seed: int = 0,
        dataset_key: tuple | None = None,
    ):
        """This campaign's multi-arm sweep as a task graph.

        Returns ``(graph, aggregate_node)``: a
        :class:`~repro.dag.TaskGraph` with one dataset + fault node
        pair per trial, one pure score node per (trial, arm), and an
        aggregate node stacking each arm's per-trial metric values.
        :meth:`run_arms` schedules this graph; callers wanting to merge
        several campaigns into one run (or render it with
        ``repro dag show``) can build it directly.
        """
        from repro.dag import TaskGraph, add_arm_sweep

        if n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
        if not arms:
            raise ConfigurationError("need at least one arm")
        if dataset_key is None:
            dataset_key = ("campaign-unkeyed", next(_UNKEYED_DATASETS))
        if hasattr(self.fault_model, "cache_key_parts"):
            fault = FaultSpec.of(self.fault_model)
        else:
            fault = FaultSpec(
                model=self.fault_model,
                key_parts=(type(self.fault_model).__name__, dataset_key),
            )

        def make_evaluate(preprocess):
            def evaluate(corrupted, pristine):
                processed = preprocess(corrupted) if preprocess else corrupted
                return float(self.metric(processed, pristine))

            return evaluate

        task_graph = TaskGraph("campaign")
        aggregate = add_arm_sweep(
            task_graph,
            "campaign",
            [Arm(name, make_evaluate(fn)) for name, fn in arms.items()],
            DatasetSpec(build=self.generate, key_parts=dataset_key),
            fault,
            n_trials,
            seed,
        )
        return task_graph, aggregate

    def run_arms(
        self,
        arms: Mapping[str, Callable[[np.ndarray], np.ndarray] | None],
        n_trials: int,
        seed: int = 0,
        runtime: TrialRuntime | None = None,
        key: str | None = None,
        dataset_key: tuple | None = None,
    ) -> dict[str, CampaignSummary]:
        """Run several preprocessing arms over one shared artifact stream.

        Emits the campaign's task graph (:meth:`graph`) and schedules
        it on the runtime's backend: generation and injection run
        **once per trial** and every arm scores the same
        corrupted/pristine pair, so each summary is bit-identical to
        the corresponding unfused :meth:`run` — at roughly
        ``1/len(arms)`` the production cost, less again when the
        runtime carries a warm artifact cache.

        Args:
            arms: name → preprocessing callable (None for the
                no-preprocessing arm); names key the returned dict.
            n_trials: number of trials (>= 1).
            seed: root seed, as in :meth:`run`.
            runtime: execution runtime, as in :meth:`run`.
            key: accepted for signature compatibility with :meth:`run`;
                the DAG path needs no checkpoint identity because
                completed nodes are recovered from the artifact store.
            dataset_key: canonical cache identity of the generator
                configuration; when omitted, a process-unique key keeps
                the artifact cache correct but defeats cross-call reuse
                (and cross-run recovery).
        """
        from repro.dag import DagScheduler, aggregate_values

        del key  # recovery is filesystem-based; see the docstring
        runtime = runtime if runtime is not None else TrialRuntime()
        task_graph, aggregate = self.graph(
            arms, n_trials, seed, dataset_key=dataset_key
        )
        scheduler = DagScheduler.for_runtime(runtime)
        outputs = scheduler.run(task_graph, targets=(aggregate,))
        return {
            name: CampaignSummary.from_values(
                [float(v) for v in values], self.confidence
            )
            for name, values in aggregate_values(outputs[aggregate]).items()
        }

    def compare(
        self,
        other: "Campaign",
        n_trials: int,
        seed: int = 0,
        runtime: TrialRuntime | None = None,
    ) -> tuple[CampaignSummary, CampaignSummary, float]:
        """Run this and *other* on the same seeds; returns both summaries
        and the mean ratio (self / other), the paper's gain measure."""
        mine = self.run(n_trials, seed, runtime=runtime)
        theirs = other.run(n_trials, seed, runtime=runtime)
        ratio = mine.mean / theirs.mean if theirs.mean else float("inf")
        return mine, theirs, ratio
