"""The correlated fault model of §2.2.3, Eq. (2).

Memory upsets caused by alpha particles, polarisation, or power glitches
concentrate around a worst-hit centre: the probability of a bit flipping
grows with the length of the run of flipped bits immediately preceding
it, in both the horizontal and vertical dimensions of the memory grid —
the direction with the longer run dominates.

With a preceding run of length R the flip probability is

    Γcorr = Σ_{j=1..R+1} Γini^j          (Eq. 2, with Γ(0) = Γini)

which converges to Γini / (1 − Γini) < 1 for Γini < 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.config import CorrelatedFaultConfig
from repro.core import bitops
from repro.exceptions import ConfigurationError
from repro.faults.layout import MemoryLayout, RowMajorLayout
from repro.native import dispatch as _dispatch
from repro.native import kernels as _native_kernels


def run_probability_table(gamma_ini: float, max_terms: int) -> np.ndarray:
    """Γcorr(R) for R = 0 … max_terms−1 (cumulative geometric series).

    ``table[R]`` is the flip probability given a preceding run of R
    flipped bits.  Beyond ``max_terms`` the series has converged to its
    limit Γini/(1−Γini) to double precision, so callers clamp R.
    """
    if not 0.0 <= gamma_ini < 0.5:
        raise ConfigurationError(f"gamma_ini must be in [0, 0.5), got {gamma_ini}")
    powers = gamma_ini ** np.arange(1, max_terms + 1, dtype=np.float64)
    return np.cumsum(powers)


def _required_runs(draws: np.ndarray, table: np.ndarray) -> tuple[np.ndarray, int]:
    """Per-cell minimum preceding run length that would flip the cell.

    ``req[cell]`` is the smallest R with ``draw < table[R]`` — the number
    of table entries at or below the draw — computed by one thresholded
    byte accumulation per table level (cells whose draw is at or beyond
    the last entry can never flip and get the sentinel 255).  The level
    loop stops as soon as only never-flip cells remain above the current
    entry, so it runs to the largest finite requirement, not to
    ``max_terms``.

    Returns ``(req, req_max)`` where ``req_max`` bounds every finite
    requirement; run lengths can be clamped there during propagation.
    """
    never = draws >= table[-1]
    n_never = int(np.count_nonzero(never))
    req = np.zeros(draws.shape, dtype=np.uint8)
    at_or_above = draws >= table[0]
    level = 0
    dense_levels = min(len(table), 3)
    while True:
        req += at_or_above
        level += 1
        if level == dense_levels or np.count_nonzero(at_or_above) == n_never:
            break
        np.greater_equal(draws, table[level], out=at_or_above)
    req_max = min(level, len(table) - 1)
    if level < len(table) and np.count_nonzero(at_or_above) > n_never:
        # The geometric tail: cells needing runs past the dense levels
        # are exponentially rare, so their exact requirement is found by
        # a binary search over the gathered few rather than more
        # whole-grid compares.
        tail = np.flatnonzero(at_or_above & ~never)
        tail_req = np.searchsorted(table, draws.ravel()[tail], side="right")
        req.ravel()[tail] = tail_req
        req_max = min(int(tail_req.max()), len(table) - 1)
    if n_never:
        req[never] = 255
    return req, req_max


#: Run lengths are counted densely (whole-grid shifted ANDs) up to this
#: length; cells requiring longer runs are exponentially rare under the
#: Eq. 2 geometric table and are evaluated by sparse gathers instead.
_DENSE_RUN_CAP = 3


def _extend_runs(
    flips: np.ndarray,
    req: np.ndarray,
    req_max: int,
    axis: int,
    tail: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> None:
    """One directional relaxation: flip every cell whose preceding run
    along *axis* satisfies its requirement (in place, monotone).

    Clamped run lengths are accumulated as byte sums of nested
    "run >= k" masks: ``R_k = R_{k-1} AND (cell k before is flipped)``,
    each a shifted slice AND, so a full sweep costs O(run cap) whole-grid
    boolean operations instead of a per-cell scan.  When *tail* (the
    ``(rows, cols, req)`` of the cells requiring runs longer than
    :data:`_DENSE_RUN_CAP`) is given, dense counting stops at the cap and
    the tail cells' runs are walked by per-cell gathers — a handful of
    small fancy-indexing ops instead of ``req_max`` whole-grid passes.
    Without *tail* the dense count runs to ``req_max`` and the step is
    complete on its own.
    """
    dense_max = req_max if tail is None else min(req_max, _DENSE_RUN_CAP)
    runs = np.zeros(flips.shape, dtype=np.uint8)
    reach = np.zeros(flips.shape, dtype=bool)
    if axis == 1:
        reach[:, 1:] = flips[:, :-1]
    else:
        reach[1:, :] = flips[:-1, :]
    runs += reach
    for k in range(2, min(dense_max, flips.shape[axis] - 1) + 1):
        if axis == 1:
            reach[:, k - 1] = False
            reach[:, k:] &= flips[:, :-k]
        else:
            reach[k - 1, :] = False
            reach[k:, :] &= flips[:-k, :]
        if not reach.any():
            break
        runs += reach
    flips |= runs >= req
    if tail is None:
        return
    t_rows, t_cols, t_req = tail
    if t_rows.size == 0:
        return
    # Tail cells flip over the iteration but are never removed from the
    # set, so drop the already-flipped ones before walking runs.
    pending = ~flips[t_rows, t_cols]
    if not pending.any():
        return
    if not pending.all():
        t_rows = t_rows[pending]
        t_cols = t_cols[pending]
        t_req = t_req[pending]
    alive = np.ones(t_rows.size, dtype=bool)
    newly = np.zeros(t_rows.size, dtype=bool)
    for k in range(1, min(int(t_req.max()), flips.shape[axis] - 1) + 1):
        if axis == 1:
            src = t_cols - k
            valid = src >= 0
            alive &= flips[t_rows, np.maximum(src, 0)] & valid
        else:
            src = t_rows - k
            valid = src >= 0
            alive &= flips[np.maximum(src, 0), t_cols] & valid
        if not alive.any():
            break
        newly |= alive & (t_req == k)
    flips[t_rows[newly], t_cols[newly]] = True


def _closure(flips: np.ndarray, req: np.ndarray, req_max: int, axis: int) -> None:
    """Relax along *axis* until the grid is a fixpoint of that direction.

    Each :func:`_extend_runs` step extends every chain by at least one
    cell, so the loop terminates within the longest enabling chain; it is
    only called on small frontier sub-grids, where the repeated steps are
    cheap.
    """
    total = np.count_nonzero(flips)
    while True:
        _extend_runs(flips, req, req_max, axis)
        new_total = np.count_nonzero(flips)
        if new_total == total:
            return
        total = new_total


def correlated_flip_grid(
    shape: tuple[int, int],
    gamma_ini: float,
    rng: np.random.Generator,
    max_terms: int = 64,
) -> np.ndarray:
    """Generate a boolean flip grid under the §2.2.3 run-length model.

    Each bit's flip probability is ``table[max(horizontal_run,
    vertical_run)]`` where the runs count the flipped bits immediately to
    the left and immediately above — the "higher of the two directions"
    rule of the paper.  Defined by a raster-order scan (see
    :func:`_reference_scan`); the uniform draws are taken from *rng*
    exactly once (one ``rng.random(shape)``, identical across tiers) and
    the scan itself runs on the selected kernel tier: the C raster scan,
    the NumPy frontier fixpoint (:func:`_numpy_scan`), or the in-tree
    raster oracle.
    """
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid shape must be positive, got {shape}")
    if gamma_ini == 0.0:
        return np.zeros(shape, dtype=bool)
    table = run_probability_table(gamma_ini, max_terms)
    draws = rng.random(shape)
    return _dispatch.call("correlated_flip_grid", draws, table)


def _numpy_scan(draws: np.ndarray, table: np.ndarray) -> np.ndarray:
    """NumPy tier: iterative frontier fixpoint over pre-drawn uniforms.

    Seed with the run-0 flips (``draw < Γcorr(0)``), then alternate
    horizontal and vertical relaxation sweeps (:func:`_extend_runs`)
    until no new flips appear.

    This is bit-identical to the raster scan: the raster result is the
    unique fixpoint of the flip condition (each cell's runs depend only
    on strictly earlier raster cells, so membership is determined by
    induction along the scan order), the condition is monotone (more
    flips ⇒ longer runs ⇒ higher Γcorr ⇒ more flips, since the Eq. 2
    table is increasing), and the seed set never shrinks under a sweep —
    so the iteration climbs exactly to that unique fixpoint.
    """
    req, req_max = _required_runs(draws, table)
    flips = req == 0
    if req_max == 0 or not flips.any():
        return flips
    # Horizontal runs live entirely within a row (and vertical within a
    # column), so a sweep only needs the lines whose flip set changed
    # since that direction last certified them — the shrinking frontier
    # of the fixpoint.  Certification: a single relaxation step that
    # leaves a line unchanged proves it direction-fixed (the step *is*
    # the direction's operator applied to the line); a changed line is
    # not yet proven and keeps the sentinel count −1 (counts only grow,
    # so an unchanged line is recognisable by its count alone).  Dense
    # frontiers take one whole-grid step; sparse frontiers are gathered
    # into a sub-grid and relaxed to closure, certifying them at once.
    tail = None
    if req_max > _DENSE_RUN_CAP:
        t_rows, t_cols = np.nonzero((req > _DENSE_RUN_CAP) & (req < 255))
        tail = (t_rows, t_cols, req[t_rows, t_cols])
    # Dense phase: while sweeps still change many cells, per-line frontier
    # tracking is pure overhead (every line is active anyway), so alternate
    # whole-grid sweeps with only a scalar population count in between.
    total = int(np.count_nonzero(flips))
    switch = max(1, min(flips.shape) // 2)
    h_changed = True
    while True:
        round_start = total
        _extend_runs(flips, req, req_max, axis=1, tail=tail)
        new_total = int(np.count_nonzero(flips))
        h_changed = new_total > total
        total = new_total
        _extend_runs(flips, req, req_max, axis=0, tail=tail)
        new_total = int(np.count_nonzero(flips))
        v_changed = new_total > total
        total = new_total
        if not h_changed and not v_changed:
            return flips
        if total - round_start < switch:
            break
    row_counts = np.full(flips.shape[0], -1, dtype=np.int64)
    col_counts = np.full(flips.shape[1], -1, dtype=np.int64)
    while True:
        current = flips.sum(axis=1, dtype=np.int64)
        active = np.flatnonzero(current != row_counts)
        if active.size == 0:
            return flips
        if active.size * 3 < flips.shape[0]:
            sub = flips[active]
            _closure(sub, req[active], req_max, axis=1)
            flips[active] = sub
            row_counts = current
            row_counts[active] = sub.sum(axis=1, dtype=np.int64)
        else:
            _extend_runs(flips, req, req_max, axis=1, tail=tail)
            after = flips.sum(axis=1, dtype=np.int64)
            row_counts = np.where(after != current, np.int64(-1), after)

        current = flips.sum(axis=0, dtype=np.int64)
        active = np.flatnonzero(current != col_counts)
        if active.size == 0:
            return flips
        if active.size * 3 < flips.shape[1]:
            sub = np.ascontiguousarray(flips[:, active])
            _closure(sub, np.ascontiguousarray(req[:, active]), req_max, axis=0)
            flips[:, active] = sub
            col_counts = current
            col_counts[active] = sub.sum(axis=0, dtype=np.int64)
        else:
            _extend_runs(flips, req, req_max, axis=0, tail=tail)
            after = flips.sum(axis=0, dtype=np.int64)
            col_counts = np.where(after != current, np.int64(-1), after)


def _reference_correlated_flip_grid(
    shape: tuple[int, int],
    gamma_ini: float,
    rng: np.random.Generator,
    max_terms: int = 64,
) -> np.ndarray:
    """Raster-order scan oracle for :func:`correlated_flip_grid`."""
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid shape must be positive, got {shape}")
    if gamma_ini == 0.0:
        return np.zeros(shape, dtype=bool)
    table = run_probability_table(gamma_ini, max_terms)
    return _reference_scan(rng.random(shape), table)


def _reference_scan(draws: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reference tier: raster-order scan over pre-drawn uniforms."""
    max_run = len(table) - 1
    thresholds = draws
    flips = np.zeros(draws.shape, dtype=bool)
    # Γcorr(R) caps out at the last table entry, so a cell whose uniform
    # draw is at or above it can never flip regardless of run history.
    # Visiting only the cells below that cap, in raster order, is exactly
    # equivalent to the dense scan and typically much faster.
    candidate_rows, candidate_cols = np.nonzero(thresholds < table[-1])
    table_list = table.tolist()  # plain-float access is faster in the loop
    gamma0 = table_list[0]
    for r, c in zip(candidate_rows.tolist(), candidate_cols.tolist()):
        draw = thresholds[r, c]
        if draw >= gamma0:
            # Count the run of flipped bits immediately to the left and
            # immediately above; the longer run sets the probability.
            run = 0
            cc = c - 1
            while cc >= 0 and flips[r, cc] and run < max_run:
                run += 1
                cc -= 1
            rr = r - 1
            vertical = 0
            while rr >= 0 and flips[rr, c] and vertical < max_run:
                vertical += 1
                rr -= 1
            if vertical > run:
                run = vertical
            if run > max_run:
                run = max_run
            if draw >= table_list[run]:
                continue
        flips[r, c] = True
    return flips


_dispatch.register(
    "correlated_flip_grid",
    numpy_impl=_numpy_scan,
    reference_impl=_reference_scan,
    native_impl=_native_kernels.correlated_scan,
)


class CorrelatedFaultModel:
    """Injects run-correlated bit-flips through a memory layout.

    The logical data words are placed into the physical bit grid by the
    given :class:`MemoryLayout` (naive row-major by default), the flip
    grid is generated per Eq. (2), and the flipped bits are mapped back
    into per-word XOR masks.
    """

    def __init__(
        self,
        config: CorrelatedFaultConfig | float = CorrelatedFaultConfig(),
        layout: MemoryLayout | None = None,
    ) -> None:
        if isinstance(config, (int, float)):
            config = CorrelatedFaultConfig(gamma_ini=float(config))
        self.config = config
        self.layout = layout or RowMajorLayout()

    def cache_key_parts(self) -> tuple:
        """Canonical identity of this model (config + layout) for cache keys."""
        return (type(self).__name__, self.config, self.layout.cache_key_parts())

    def corrupt(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(corrupted_copy, flip_mask)`` for *data*.

        The array is flattened into its logical word order for placement;
        the returned mask matches the input shape.
        """
        if data.dtype == np.float32:
            bits = bitops.float32_to_bits(np.ascontiguousarray(data))
            corrupted_bits, mask = self.corrupt(bits, rng)
            return bitops.bits_to_float32(corrupted_bits), mask
        bitops.require_unsigned(data, "data")
        nbits = bitops.bit_width(data.dtype)
        n_words = data.size
        grid = correlated_flip_grid(
            self.layout.grid_shape(n_words, nbits),
            self.config.gamma_ini,
            rng,
            self.config.max_run_terms,
        )
        mask_flat = self.layout.flip_mask_from_grid(grid, n_words, nbits)
        mask = mask_flat.astype(data.dtype).reshape(data.shape)
        return np.bitwise_xor(data, mask), mask
