"""The correlated fault model of §2.2.3, Eq. (2).

Memory upsets caused by alpha particles, polarisation, or power glitches
concentrate around a worst-hit centre: the probability of a bit flipping
grows with the length of the run of flipped bits immediately preceding
it, in both the horizontal and vertical dimensions of the memory grid —
the direction with the longer run dominates.

With a preceding run of length R the flip probability is

    Γcorr = Σ_{j=1..R+1} Γini^j          (Eq. 2, with Γ(0) = Γini)

which converges to Γini / (1 − Γini) < 1 for Γini < 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.config import CorrelatedFaultConfig
from repro.core import bitops
from repro.exceptions import ConfigurationError
from repro.faults.layout import MemoryLayout, RowMajorLayout


def run_probability_table(gamma_ini: float, max_terms: int) -> np.ndarray:
    """Γcorr(R) for R = 0 … max_terms−1 (cumulative geometric series).

    ``table[R]`` is the flip probability given a preceding run of R
    flipped bits.  Beyond ``max_terms`` the series has converged to its
    limit Γini/(1−Γini) to double precision, so callers clamp R.
    """
    if not 0.0 <= gamma_ini < 0.5:
        raise ConfigurationError(f"gamma_ini must be in [0, 0.5), got {gamma_ini}")
    powers = gamma_ini ** np.arange(1, max_terms + 1, dtype=np.float64)
    return np.cumsum(powers)


def correlated_flip_grid(
    shape: tuple[int, int],
    gamma_ini: float,
    rng: np.random.Generator,
    max_terms: int = 64,
) -> np.ndarray:
    """Generate a boolean flip grid under the §2.2.3 run-length model.

    The grid is scanned in raster order; each bit's flip probability is
    ``table[max(horizontal_run, vertical_run)]`` where the runs count the
    flipped bits immediately to the left and immediately above — the
    "higher of the two directions" rule of the paper.
    """
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid shape must be positive, got {shape}")
    if gamma_ini == 0.0:
        return np.zeros(shape, dtype=bool)
    table = run_probability_table(gamma_ini, max_terms)
    max_run = len(table) - 1
    thresholds = rng.random(shape)
    flips = np.zeros(shape, dtype=bool)
    # Γcorr(R) increases strictly towards (but never reaches) the series
    # limit Γini/(1−Γini), so a cell whose uniform draw is at or above the
    # limit can never flip regardless of run history.  Visiting only the
    # cells below the limit, in raster order, is exactly equivalent to the
    # dense scan and typically orders of magnitude faster.
    limit = gamma_ini / (1.0 - gamma_ini)
    candidate_rows, candidate_cols = np.nonzero(thresholds < limit)
    table_list = table.tolist()  # plain-float access is faster in the loop
    gamma0 = table_list[0]
    for r, c in zip(candidate_rows.tolist(), candidate_cols.tolist()):
        draw = thresholds[r, c]
        if draw >= gamma0:
            # Count the run of flipped bits immediately to the left and
            # immediately above; the longer run sets the probability.
            run = 0
            cc = c - 1
            while cc >= 0 and flips[r, cc] and run < max_run:
                run += 1
                cc -= 1
            rr = r - 1
            vertical = 0
            while rr >= 0 and flips[rr, c] and vertical < max_run:
                vertical += 1
                rr -= 1
            if vertical > run:
                run = vertical
            if run > max_run:
                run = max_run
            if draw >= table_list[run]:
                continue
        flips[r, c] = True
    return flips


class CorrelatedFaultModel:
    """Injects run-correlated bit-flips through a memory layout.

    The logical data words are placed into the physical bit grid by the
    given :class:`MemoryLayout` (naive row-major by default), the flip
    grid is generated per Eq. (2), and the flipped bits are mapped back
    into per-word XOR masks.
    """

    def __init__(
        self,
        config: CorrelatedFaultConfig | float = CorrelatedFaultConfig(),
        layout: MemoryLayout | None = None,
    ) -> None:
        if isinstance(config, (int, float)):
            config = CorrelatedFaultConfig(gamma_ini=float(config))
        self.config = config
        self.layout = layout or RowMajorLayout()

    def corrupt(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(corrupted_copy, flip_mask)`` for *data*.

        The array is flattened into its logical word order for placement;
        the returned mask matches the input shape.
        """
        if data.dtype == np.float32:
            bits = bitops.float32_to_bits(np.ascontiguousarray(data))
            corrupted_bits, mask = self.corrupt(bits, rng)
            return bitops.bits_to_float32(corrupted_bits), mask
        bitops.require_unsigned(data, "data")
        nbits = bitops.bit_width(data.dtype)
        n_words = data.size
        grid = correlated_flip_grid(
            self.layout.grid_shape(n_words, nbits),
            self.config.gamma_ini,
            rng,
            self.config.max_run_terms,
        )
        mask_flat = self.layout.flip_mask_from_grid(grid, n_words, nbits)
        mask = mask_flat.astype(data.dtype).reshape(data.shape)
        return np.bitwise_xor(data, mask), mask
