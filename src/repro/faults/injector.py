"""Seeded fault-injection campaigns with flip accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class InjectionReport:
    """Accounting for one injection pass.

    Attributes:
        n_bits_flipped: total bits flipped across the dataset.
        n_words_hit: words (pixels/samples) with at least one flip.
        total_bits: number of bits in the dataset.
        flip_mask: per-word XOR masks actually applied.
    """

    n_bits_flipped: int
    n_words_hit: int
    total_bits: int
    flip_mask: np.ndarray

    @property
    def flip_rate(self) -> float:
        """Observed fraction of flipped bits (the empirical Γ)."""
        return self.n_bits_flipped / self.total_bits if self.total_bits else 0.0


def derive_injector_seed(rng: np.random.Generator) -> int:
    """The canonical per-trial injector seed: one draw from *rng*.

    Every experiment derives its :class:`FaultInjector` seed with
    exactly this protocol — a single ``integers(2**31)`` draw from the
    trial's generator, taken *after* dataset generation — and the fused
    scheduler (:mod:`repro.runtime.fusion`) replays the same draw from
    the same stream position, which is what makes fused and unfused
    campaigns bit-identical.
    """
    return int(rng.integers(2**31))


class FaultInjector:
    """Applies a fault model to datasets with reproducible seeding.

    Args:
        model: any object with a ``corrupt(data, rng) -> (corrupted,
            flip_mask)`` method (:class:`UncorrelatedFaultModel`,
            :class:`CorrelatedFaultModel`, or a custom model).
        seed: seed for the numpy Generator; omit for nondeterminism.
    """

    def __init__(self, model, seed: int | None = None) -> None:
        if not hasattr(model, "corrupt"):
            raise ConfigurationError(
                f"fault model must expose corrupt(data, rng), got {type(model).__name__}"
            )
        self.model = model
        self._rng = np.random.default_rng(seed)

    def inject(self, data: np.ndarray) -> tuple[np.ndarray, InjectionReport]:
        """Corrupt a copy of *data* and report what was flipped."""
        corrupted, mask = self.model.corrupt(data, self._rng)
        umask = mask if mask.dtype != np.float32 else bitops.float32_to_bits(mask)
        nbits = bitops.bit_width(umask.dtype)
        n_flipped = int(bitops.popcount(umask).sum())
        report = InjectionReport(
            n_bits_flipped=n_flipped,
            n_words_hit=int(np.count_nonzero(umask)),
            total_bits=int(umask.size * nbits),
            flip_mask=mask,
        )
        return corrupted, report
