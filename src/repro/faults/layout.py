"""Mapping between data words and the 2-D physical memory bit grid.

The correlated fault model of §2.2.3 is defined over the *memory
organisation*: runs of flips propagate horizontally and vertically
through the physical bit grid.  How badly such a block fault damages
logically neighbouring pixels therefore depends on the mapping from
words to grid positions.

§8 recommends "storing the neighboring pixels using a preset mapping
into different physical regions in the memory organization" so that a
contiguous block fault does not wipe out the temporal/spatial
redundancy the preprocessing relies on.  :class:`InterleavedLayout`
implements that recommendation; :class:`RowMajorLayout` is the naive
contiguous placement it improves upon.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError


class MemoryLayout(ABC):
    """Bijection between (word, bit) coordinates and grid positions."""

    def __init__(self, row_words: int = 64) -> None:
        if row_words < 1:
            raise ConfigurationError(f"row_words must be >= 1, got {row_words}")
        self.row_words = row_words

    def grid_shape(self, n_words: int, nbits: int) -> tuple[int, int]:
        """Shape of the physical bit grid holding ``n_words`` words."""
        row_bits = self.row_words * nbits
        n_rows = math.ceil(n_words * nbits / row_bits)
        return n_rows, row_bits

    def cache_key_parts(self) -> tuple:
        """Canonical identity of this layout for artifact cache keys.

        Subclasses with extra placement parameters must extend the
        tuple; two layouts that place bits differently must never share
        key parts.
        """
        return (type(self).__name__, self.row_words)

    @abstractmethod
    def word_permutation(self, n_words: int) -> np.ndarray:
        """Physical word slot for each logical word index."""

    def bit_positions(self, n_words: int, nbits: int) -> tuple[np.ndarray, np.ndarray]:
        """Grid (rows, cols) of every bit, shape ``(n_words, nbits)``.

        Bit index 0 within a word is the MSB (leftmost in the physical
        word), matching how memory stores the word's bytes in order.
        """
        perm = self.word_permutation(n_words)
        _, row_bits = self.grid_shape(n_words, nbits)
        linear = perm[:, None] * nbits + np.arange(nbits)[None, :]
        return linear // row_bits, linear % row_bits

    def flip_mask_from_grid(
        self, flip_grid: np.ndarray, n_words: int, nbits: int
    ) -> np.ndarray:
        """Collapse a boolean flip grid into per-word uint64 XOR masks."""
        rows, cols = self.bit_positions(n_words, nbits)
        flips = flip_grid[rows, cols]
        weights = np.uint64(1) << np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return (flips.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)


class RowMajorLayout(MemoryLayout):
    """Naive contiguous placement: logical word order == physical order."""

    def word_permutation(self, n_words: int) -> np.ndarray:
        return np.arange(n_words, dtype=np.intp)


class PixelMajorLayout(MemoryLayout):
    """Each pixel's N temporal variants stored contiguously.

    This is the cache-friendly layout a naive implementation chooses for
    per-pixel temporal processing — and exactly the placement §8 warns
    about: one contiguous block fault (or one transit burst) wipes out a
    pixel's *entire* temporal redundancy group at once.

    Logical word order is assumed to be time-major (the ``(N, ...)``
    ravel used throughout this library); the permutation transposes it
    so that the variants of each coordinate become physically adjacent.
    """

    def __init__(self, n_variants: int, row_words: int = 64) -> None:
        super().__init__(row_words)
        if n_variants < 1:
            raise ConfigurationError(f"n_variants must be >= 1, got {n_variants}")
        self.n_variants = n_variants

    def cache_key_parts(self) -> tuple:
        """Layout identity including the variant grouping."""
        return (type(self).__name__, self.row_words, self.n_variants)

    def word_permutation(self, n_words: int) -> np.ndarray:
        if n_words % self.n_variants:
            raise ConfigurationError(
                f"{n_words} words do not divide into {self.n_variants} variants"
            )
        n_coords = n_words // self.n_variants
        index = np.arange(n_words, dtype=np.int64)
        time_index = index // n_coords
        coord_index = index % n_coords
        return (coord_index * self.n_variants + time_index).astype(np.intp)


class InterleavedLayout(MemoryLayout):
    """§8's recommendation: scatter neighbouring words across memory.

    Logical word *w* is placed at physical slot ``(w * stride) mod
    n_words`` with a stride chosen coprime to the word count, so words
    that are temporal/spatial neighbours land far apart in the physical
    grid and a contiguous block fault touches at most one of them.
    """

    def __init__(self, row_words: int = 64, stride: int | None = None) -> None:
        super().__init__(row_words)
        if stride is not None and stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        self._stride = stride

    def cache_key_parts(self) -> tuple:
        """Layout identity including the configured stride."""
        return (type(self).__name__, self.row_words, self._stride)

    def effective_stride(self, n_words: int) -> int:
        """The stride actually used: the configured one nudged to be
        coprime with ``n_words`` (a non-coprime stride is not a bijection).
        """
        stride = self._stride if self._stride is not None else max(1, n_words // 7)
        while math.gcd(stride, n_words) != 1:
            stride += 1
        return stride

    def word_permutation(self, n_words: int) -> np.ndarray:
        stride = self.effective_stride(n_words)
        return (np.arange(n_words, dtype=np.int64) * stride % n_words).astype(np.intp)
