"""Time-varying fault-rate profiles: Γ as a function of frame index.

The paper's models hold Γ constant per run, but a flying instrument sees
the rate move — most prominently on South Atlantic Anomaly crossings,
where the trapped-proton flux raises the upset rate by orders of
magnitude for a bounded stretch of the orbit, then falls back.  A
profile maps the global frame index to the Γ₀ in force for that frame;
because the mapping is a pure function of the index, profiled injection
stays chunk-invariant and resume-safe exactly like the static model
(:class:`repro.stream.pipeline.InjectStage` derives each frame's RNG
from its index already).

These profiles are what the online Λ autotuner is evaluated against:
under a static Γ the tuner should converge to the static optimum and
stay there; under a step or sine profile it should track the moving
optimum and beat any single fixed Λ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def _check_gamma(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class GammaStepProfile:
    """Square-wave Γ: *elevated* for the first ``duty`` fraction of each
    ``period``-frame cycle, *base* for the rest.

    The space-weather reading: ``period`` is the orbital period in
    frames, ``duty`` the fraction spent inside the anomaly.
    """

    base: float = 0.001
    elevated: float = 0.05
    period: int = 256
    duty: float = 0.25

    def __post_init__(self) -> None:
        _check_gamma(self.base, "base")
        _check_gamma(self.elevated, "elevated")
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(f"duty must be within [0, 1], got {self.duty}")

    def gamma_at(self, index: int) -> float:
        """Γ₀ in force for the frame at global *index*."""
        phase = index % self.period
        return self.elevated if phase < self.duty * self.period else self.base

    def describe(self) -> str:
        """Canonical identity string (checkpoint fingerprints, CLI echo)."""
        return (
            f"step(base={self.base}, elevated={self.elevated}, "
            f"period={self.period}, duty={self.duty})"
        )


@dataclass(frozen=True)
class GammaSineProfile:
    """Sinusoidal Γ: ``base + amplitude·sin(2π·index/period)``, clipped
    to [0, 1] — a smooth flux swell and decay over each cycle."""

    base: float = 0.01
    amplitude: float = 0.009
    period: int = 256

    def __post_init__(self) -> None:
        _check_gamma(self.base, "base")
        if self.amplitude < 0:
            raise ConfigurationError(
                f"amplitude must be >= 0, got {self.amplitude}"
            )
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def gamma_at(self, index: int) -> float:
        """Γ₀ in force for the frame at global *index*."""
        value = self.base + self.amplitude * math.sin(
            2.0 * math.pi * (index % self.period) / self.period
        )
        return min(1.0, max(0.0, value))

    def describe(self) -> str:
        """Canonical identity string (checkpoint fingerprints, CLI echo)."""
        return (
            f"sine(base={self.base}, amplitude={self.amplitude}, "
            f"period={self.period})"
        )


GammaProfile = GammaStepProfile | GammaSineProfile


def parse_profile(spec: str) -> GammaProfile:
    """Parse a CLI profile spec like ``step:elevated=0.05,period=128``.

    The part before the colon picks the profile kind (``step`` or
    ``sine``); the comma-separated ``key=value`` pairs after it override
    that kind's defaults.
    """
    kind, _, rest = spec.partition(":")
    kinds = {"step": GammaStepProfile, "sine": GammaSineProfile}
    if kind not in kinds:
        raise ConfigurationError(
            f"unknown profile kind {kind!r}; expected one of {sorted(kinds)}"
        )
    kwargs: dict[str, float | int] = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"malformed profile parameter {pair!r}; expected key=value"
                )
            kwargs[key.strip()] = (
                int(value) if key.strip() == "period" else float(value)
            )
    try:
        return kinds[kind](**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad profile parameters for {kind!r}: {exc}") from None
