"""Transit fault model: burst errors on the serial downlink/uplink.

§2.2.2 lists three places the uncorrelated model's flips can strike:
"either at source, during transit from source to the system, or while
residing in memory".  In-transit corruption is *bursty* — a noisy
channel stays noisy for a stretch of symbols — which the classic
Gilbert–Elliott two-state channel captures: a GOOD state with a
negligible flip rate and a BAD state with a high flip rate, with
geometric sojourn times in each.

The data words are serialised in logical order (optionally through a
:class:`~repro.faults.layout.MemoryLayout`-style interleaver) so a
burst damages a contiguous run of bits of consecutive words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Parameters of the two-state burst channel.

    Attributes:
        p_good_to_bad: per-bit probability of entering a burst.
        p_bad_to_good: per-bit probability of the burst ending (the mean
            burst length is its reciprocal).
        flip_prob_bad: bit-flip probability inside a burst.
        flip_prob_good: residual flip probability outside bursts.
    """

    p_good_to_bad: float = 1e-4
    p_bad_to_good: float = 0.05
    flip_prob_bad: float = 0.3
    flip_prob_good: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "flip_prob_bad", "flip_prob_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be within [0, 1], got {value}")
        if self.p_bad_to_good == 0.0 and self.p_good_to_bad > 0.0:
            raise ConfigurationError("bursts must be able to end (p_bad_to_good > 0)")

    @property
    def steady_state_bad(self) -> float:
        """Long-run fraction of bits spent inside bursts."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom else 0.0

    @property
    def expected_flip_rate(self) -> float:
        """Long-run marginal bit-flip probability of the channel."""
        bad = self.steady_state_bad
        return bad * self.flip_prob_bad + (1.0 - bad) * self.flip_prob_good


def burst_flip_stream(
    n_bits: int, config: GilbertElliottConfig, rng: np.random.Generator
) -> np.ndarray:
    """Boolean flip stream of length *n_bits* from the two-state channel.

    Simulated by sampling geometric sojourn lengths, so the cost is
    proportional to the number of state changes, not to ``n_bits``.
    """
    if n_bits < 0:
        raise ConfigurationError(f"n_bits must be >= 0, got {n_bits}")
    flips = np.zeros(n_bits, dtype=bool)
    if n_bits == 0 or config.p_good_to_bad == 0.0:
        if config.flip_prob_good > 0.0:
            flips |= rng.random(n_bits) < config.flip_prob_good
        return flips
    position = 0
    in_bad = rng.random() < config.steady_state_bad
    while position < n_bits:
        leave = config.p_bad_to_good if in_bad else config.p_good_to_bad
        if leave <= 0.0:
            span = n_bits - position
        else:
            span = int(min(rng.geometric(leave), n_bits - position))
        rate = config.flip_prob_bad if in_bad else config.flip_prob_good
        if rate > 0.0:
            flips[position : position + span] = rng.random(span) < rate
        position += span
        in_bad = not in_bad
    return flips


class TransitFaultModel:
    """Applies Gilbert–Elliott burst errors to a serialised dataset.

    Words are serialised MSB-first; the *serialisation order* is
    pluggable through a :class:`~repro.faults.layout.MemoryLayout`-style
    word permutation.  This is where the §8 interleaving recommendation
    earns its keep: a long burst damages a contiguous run of the
    *serialised* stream, so scattering logically neighbouring words
    across the stream confines the damage to at most one word of each
    redundancy group.
    """

    def __init__(
        self,
        config: GilbertElliottConfig | None = None,
        layout=None,
    ) -> None:
        self.config = config or GilbertElliottConfig()
        if layout is not None and not hasattr(layout, "word_permutation"):
            raise ConfigurationError(
                "layout must expose word_permutation(n_words)"
            )
        self.layout = layout

    def corrupt(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(corrupted_copy, flip_mask)`` for *data*."""
        if data.dtype == np.float32:
            bits = bitops.float32_to_bits(np.ascontiguousarray(data))
            corrupted_bits, mask = self.corrupt(bits, rng)
            return bitops.bits_to_float32(corrupted_bits), mask
        bitops.require_unsigned(data, "data")
        nbits = bitops.bit_width(data.dtype)
        stream = burst_flip_stream(data.size * nbits, self.config, rng)
        per_slot = stream.reshape(data.size, nbits)
        weights = np.uint64(1) << np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        slot_masks = (per_slot.astype(np.uint64) * weights[None, :]).sum(
            axis=1, dtype=np.uint64
        )
        if self.layout is not None:
            # slot s of the stream carries logical word w where
            # permutation[w] == s.
            permutation = np.asarray(self.layout.word_permutation(data.size))
            word_masks = slot_masks[permutation]
        else:
            word_masks = slot_masks
        mask = word_masks.astype(data.dtype).reshape(data.shape)
        return np.bitwise_xor(data, mask), mask
