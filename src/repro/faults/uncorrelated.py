"""The uncorrelated fault model of §2.2.2.

Bit-flips occur independently at every bit of the input dataset with a
static probability Γ₀ — at source, in transit, or while the data resides
in memory.
"""

from __future__ import annotations

import numpy as np

from repro.config import UncorrelatedFaultConfig
from repro.core import bitops
from repro.exceptions import ConfigurationError


def uncorrelated_flip_mask(
    shape: tuple[int, ...],
    nbits: int,
    gamma0: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random per-word flip masks: each bit set with probability Γ₀.

    Returns a uint64 array of *shape*; callers cast to their word dtype.
    """
    if not 0.0 <= gamma0 <= 1.0:
        raise ConfigurationError(f"gamma0 must be within [0, 1], got {gamma0}")
    if nbits < 1 or nbits > 64:
        raise ConfigurationError(f"nbits must be within [1, 64], got {nbits}")
    if gamma0 == 0.0:
        return np.zeros(shape, dtype=np.uint64)
    mask = np.zeros(shape, dtype=np.uint64)
    for bit in range(nbits):
        flips = rng.random(shape) < gamma0
        mask |= flips.astype(np.uint64) << np.uint64(bit)
    return mask


class UncorrelatedFaultModel:
    """Injects i.i.d. Γ₀ bit-flips into unsigned-int or float32 arrays."""

    def __init__(
        self,
        config: UncorrelatedFaultConfig | float = UncorrelatedFaultConfig(),
    ) -> None:
        if isinstance(config, (int, float)):
            config = UncorrelatedFaultConfig(gamma0=float(config))
        self.config = config

    def cache_key_parts(self) -> tuple:
        """Canonical identity of this model for artifact cache keys."""
        return (type(self).__name__, self.config)

    def corrupt(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(corrupted_copy, flip_mask)`` for *data*.

        float32 input is corrupted through its uint32 bit patterns, as
        faults strike the stored representation, not the value.
        """
        if data.dtype == np.float32:
            bits = bitops.float32_to_bits(np.ascontiguousarray(data))
            mask = uncorrelated_flip_mask(bits.shape, 32, self.config.gamma0, rng)
            flipped = np.bitwise_xor(bits, mask.astype(np.uint32))
            return bitops.bits_to_float32(flipped), mask.astype(np.uint32)
        bitops.require_unsigned(data, "data")
        nbits = bitops.bit_width(data.dtype)
        mask = uncorrelated_flip_mask(data.shape, nbits, self.config.gamma0, rng)
        mask = mask.astype(data.dtype)
        return np.bitwise_xor(data, mask), mask
