"""A from-scratch minimal FITS (Flexible Image Transport System) codec.

NGST inputs are stored as FITS images — Header + Data Units (HDUs) in
2880-byte blocks (§2.2.1).  Header integrity is vital: a bit-flip in a
keyword such as ``NAXIS`` or ``BITPIX`` corrupts the interpretation of
the entire data unit.  This subpackage provides:

* :mod:`repro.fits.cards` — 80-character card images;
* :mod:`repro.fits.header` — header model with mandatory-keyword rules;
* :mod:`repro.fits.file` — reading/writing image HDUs as numpy arrays;
* :mod:`repro.fits.sanity` — the header sanity analysis (and repair)
  that ``Algo_NGST`` performs even at null sensitivity (§3.2).
"""

from repro.fits.cards import Card, format_card, parse_card
from repro.fits.file import HDU, read_fits, write_fits
from repro.fits.header import BLOCK_SIZE, CARD_SIZE, Header
from repro.fits.sanity import HeaderSanityAnalyzer, SanityIssue, SanityReport

__all__ = [
    "BLOCK_SIZE",
    "CARD_SIZE",
    "Card",
    "HDU",
    "Header",
    "HeaderSanityAnalyzer",
    "SanityIssue",
    "SanityReport",
    "format_card",
    "parse_card",
    "read_fits",
    "write_fits",
]
