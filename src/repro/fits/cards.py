"""FITS 80-character header card images.

A card is ``KEYWORD = value / comment`` padded to exactly 80 ASCII
characters.  Keywords are up to 8 characters from ``[A-Z0-9_-]``; value
cards carry the value indicator ``"= "`` in columns 9–10.  Commentary
keywords (``COMMENT``, ``HISTORY``, blank) and ``END`` carry no value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FITSFormatError

CARD_SIZE = 80
KEYWORD_SIZE = 8
_KEYWORD_CHARS = set("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")
COMMENTARY_KEYWORDS = frozenset({"COMMENT", "HISTORY", ""})

#: Python value types a card may carry.
CardValue = bool | int | float | str | None


@dataclass(frozen=True)
class Card:
    """One parsed header card."""

    keyword: str
    value: CardValue = None
    comment: str = ""

    @property
    def is_commentary(self) -> bool:
        return self.keyword in COMMENTARY_KEYWORDS

    @property
    def is_end(self) -> bool:
        return self.keyword == "END"


def validate_keyword(keyword: str) -> str:
    """Validate and return an upper-case FITS keyword."""
    keyword = keyword.strip().upper()
    if len(keyword) > KEYWORD_SIZE:
        raise FITSFormatError(f"keyword too long: {keyword!r}")
    if any(ch not in _KEYWORD_CHARS for ch in keyword):
        raise FITSFormatError(f"illegal character in keyword: {keyword!r}")
    return keyword


def _format_value(value: CardValue) -> str:
    """Render a value in its fixed-format FITS field (right-justified to col 30)."""
    if isinstance(value, bool):
        text = "T" if value else "F"
        return text.rjust(20)
    if isinstance(value, int):
        return str(value).rjust(20)
    if isinstance(value, float):
        text = repr(float(value)).upper().replace("E", "E")
        return text.rjust(20)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        body = f"'{escaped:<8}'"
        return body
    raise FITSFormatError(f"unsupported card value type: {type(value).__name__}")


def format_card(card: Card) -> bytes:
    """Serialise a :class:`Card` to its 80-byte ASCII image."""
    keyword = validate_keyword(card.keyword) if card.keyword else ""
    if card.is_end:
        return b"END" + b" " * (CARD_SIZE - 3)
    if card.is_commentary:
        body = f"{keyword:<8}{card.comment or ''}"
        return body[:CARD_SIZE].ljust(CARD_SIZE).encode("ascii")
    if card.value is None:
        body = f"{keyword:<8}"
        return body[:CARD_SIZE].ljust(CARD_SIZE).encode("ascii")
    text = f"{keyword:<8}= {_format_value(card.value)}"
    if card.comment:
        text = f"{text} / {card.comment}"
    if len(text) > CARD_SIZE:
        raise FITSFormatError(f"card overflows 80 characters: {text!r}")
    return text.ljust(CARD_SIZE).encode("ascii")


def _parse_value(field: str) -> CardValue:
    field = field.strip()
    if not field:
        return None
    if field.startswith("'"):
        # Quoted string; embedded quotes are doubled.
        body = field[1:]
        end = _closing_quote(body)
        return body[:end].replace("''", "'").rstrip()
    if field in ("T", "F"):
        return field == "T"
    try:
        return int(field)
    except ValueError:
        pass
    try:
        return float(field.replace("D", "E").replace("d", "e"))
    except ValueError:
        raise FITSFormatError(f"unparseable card value: {field!r}") from None


def _closing_quote(body: str) -> int:
    i = 0
    while i < len(body):
        if body[i] == "'":
            if i + 1 < len(body) and body[i + 1] == "'":
                i += 2
                continue
            return i
        i += 1
    raise FITSFormatError(f"unterminated string value: {body!r}")


def parse_card(image: bytes) -> Card:
    """Parse one 80-byte card image into a :class:`Card`."""
    if len(image) != CARD_SIZE:
        raise FITSFormatError(f"card image must be {CARD_SIZE} bytes, got {len(image)}")
    try:
        text = image.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FITSFormatError(f"card contains non-ASCII bytes: {image!r}") from exc
    keyword = text[:KEYWORD_SIZE].rstrip()
    if keyword == "END" and text[3:].strip() == "":
        return Card("END")
    if keyword in COMMENTARY_KEYWORDS:
        return Card(keyword, comment=text[KEYWORD_SIZE:].rstrip())
    keyword = validate_keyword(keyword)
    if text[KEYWORD_SIZE : KEYWORD_SIZE + 2] != "= ":
        # Keyword without a value indicator: treated as commentary-like.
        return Card(keyword, comment=text[KEYWORD_SIZE:].rstrip())
    rest = text[KEYWORD_SIZE + 2 :]
    value_field, comment = _split_comment(rest)
    return Card(keyword, value=_parse_value(value_field), comment=comment)


def _split_comment(rest: str) -> tuple[str, str]:
    """Split a value field from its '/' comment, honouring quoted strings."""
    stripped = rest.lstrip()
    if stripped.startswith("'"):
        body = stripped[1:]
        end = _closing_quote(body)
        value_part = stripped[: end + 2]
        remainder = stripped[end + 2 :]
    else:
        slash = rest.find("/")
        if slash == -1:
            return rest, ""
        return rest[:slash], rest[slash + 1 :].strip()
    slash = remainder.find("/")
    if slash == -1:
        return value_part, ""
    return value_part, remainder[slash + 1 :].strip()
