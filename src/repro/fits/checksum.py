"""The FITS checksum convention: DATASUM and CHECKSUM keywords.

Implements the ones'-complement 32-bit checksum and the 16-character
ASCII encoding of the Seaman convention adopted by the FITS standard:
``DATASUM`` holds the decimal checksum of the data unit; ``CHECKSUM``
holds the ASCII-encoded (complemented) HDU sum computed with the
``CHECKSUM`` value field zeroed, so verification recomputes that sum
and compares.  Either keyword detects bit-flips anywhere in the HDU —
a detection-only complement to the correcting preprocessors in
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FITSFormatError
from repro.fits.header import Header

#: ASCII codes that must not appear in the encoded checksum.
_EXCLUDE = frozenset(b":;<=>?@[\\]^_`")
_OFFSET = 0x30  # ASCII '0'
_MASK32 = 0xFFFFFFFF


def ones_complement_sum32(data: bytes, initial: int = 0) -> int:
    """Ones'-complement (end-around carry) sum of big-endian 32-bit words.

    The input is zero-padded to a multiple of four bytes; FITS blocks are
    2880 bytes so padding never triggers for conforming HDUs.
    """
    if len(data) % 4:
        data = data + b"\x00" * (4 - len(data) % 4)
    total = initial & _MASK32
    # Sum in chunks, folding carries back in.
    for i in range(0, len(data), 4):
        word = int.from_bytes(data[i : i + 4], "big")
        total += word
        total = (total & _MASK32) + (total >> 32)
    while total >> 32:
        total = (total & _MASK32) + (total >> 32)
    return total


def encode_checksum_value(value: int) -> str:
    """Encode the complement of *value* into the 16-character ASCII form.

    Each byte of ``~value`` is split into four roughly equal parts offset
    from ASCII '0'; bytes that land on excluded punctuation are nudged in
    balanced pairs so the sum is preserved.  The result is rotated right
    by one character, per the convention.
    """
    complement = (~value) & _MASK32
    bytes_ = [(complement >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    chars = [[0] * 4 for _ in range(4)]
    for b, byte in enumerate(bytes_):
        quotient = byte // 4 + _OFFSET
        remainder = byte % 4
        parts = [quotient] * 4
        for i in range(remainder):
            parts[i] += 1
        # Nudge excluded codes in offsetting pairs (preserves the sum).
        while any(p in _EXCLUDE for p in parts):
            for i in range(0, 4, 2):
                if parts[i] in _EXCLUDE or parts[i + 1] in _EXCLUDE:
                    parts[i] += 1
                    parts[i + 1] -= 1
        for i in range(4):
            chars[i][b] = parts[i]
    flat = [chars[i][b] for i in range(4) for b in range(4)]
    # Rotate right one character.
    rotated = [flat[-1]] + flat[:-1]
    return bytes(rotated).decode("ascii")


def decode_checksum_value(encoded: str) -> int:
    """Invert :func:`encode_checksum_value` back to the complement sum."""
    if len(encoded) != 16:
        raise FITSFormatError(f"CHECKSUM value must be 16 chars, got {len(encoded)}")
    raw = encoded.encode("ascii")
    flat = list(raw[1:]) + [raw[0]]  # rotate left
    value = 0
    for b in range(4):
        byte = sum(flat[i * 4 + b] - _OFFSET for i in range(4)) & 0xFF
        value = (value << 8) | byte
    return (~value) & _MASK32


@dataclass(frozen=True)
class ChecksumVerdict:
    """Result of verifying an HDU's checksum keywords."""

    datasum_present: bool
    datasum_ok: bool
    checksum_present: bool
    checksum_ok: bool

    @property
    def ok(self) -> bool:
        return (not self.datasum_present or self.datasum_ok) and (
            not self.checksum_present or self.checksum_ok
        )


def set_checksums(header: Header, data_bytes: bytes) -> Header:
    """Fill in DATASUM and CHECKSUM for a header + block-padded data unit.

    Returns the same header (mutated) for chaining.  Must be called last:
    any further header edit invalidates CHECKSUM.
    """
    datasum = ones_complement_sum32(data_bytes)
    header.set("DATASUM", str(datasum), "data unit checksum")
    # CHECKSUM is computed with its own value set to all '0'.
    header.set("CHECKSUM", "0" * 16, "HDU checksum")
    header_sum = ones_complement_sum32(header.to_bytes(), initial=datasum)
    header.set("CHECKSUM", encode_checksum_value(header_sum), "HDU checksum")
    return header


def verify_checksums(header: Header, data_bytes: bytes) -> ChecksumVerdict:
    """Check the DATASUM/CHECKSUM keywords against the actual bytes."""
    datasum_card = header.get("DATASUM")
    datasum_present = datasum_card is not None
    datasum_ok = False
    actual_datasum = ones_complement_sum32(data_bytes)
    if datasum_present:
        try:
            datasum_ok = int(str(datasum_card).strip()) == actual_datasum
        except ValueError:
            datasum_ok = False

    checksum_card = header.get("CHECKSUM")
    checksum_present = isinstance(checksum_card, str) and len(checksum_card) == 16
    checksum_ok = False
    if checksum_present:
        # Recompute with CHECKSUM zeroed; the stored characters encode
        # (the complement of) exactly that total.
        probe = Header(header.cards)
        probe.set("CHECKSUM", "0" * 16, "HDU checksum")
        total = ones_complement_sum32(probe.to_bytes(), initial=actual_datasum)
        try:
            checksum_ok = decode_checksum_value(checksum_card) == total
        except FITSFormatError:
            checksum_ok = False
    return ChecksumVerdict(
        datasum_present=datasum_present,
        datasum_ok=datasum_ok,
        checksum_present=checksum_present,
        checksum_ok=checksum_ok,
    )
