"""Reading and writing FITS image HDUs as numpy arrays.

Data units are big-endian per the standard; unsigned 16-bit data (the
NGST pixel format) is stored as ``BITPIX = 16`` with the conventional
``BZERO = 32768`` offset, exactly like flight FITS products.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FITSFormatError
from repro.fits.header import BLOCK_SIZE, VALID_BITPIX, Header

#: BITPIX → big-endian numpy dtype for the raw (on-disk) representation.
_BITPIX_DTYPE = {
    8: np.dtype(">u1"),
    16: np.dtype(">i2"),
    32: np.dtype(">i4"),
    64: np.dtype(">i8"),
    -32: np.dtype(">f4"),
    -64: np.dtype(">f8"),
}

#: numpy dtype (native) → (BITPIX, BZERO) for writing.
_WRITE_MAP = {
    np.dtype(np.uint8): (8, 0),
    np.dtype(np.int16): (16, 0),
    np.dtype(np.uint16): (16, 32768),
    np.dtype(np.int32): (32, 0),
    np.dtype(np.uint32): (32, 2147483648),
    np.dtype(np.int64): (64, 0),
    np.dtype(np.float32): (-32, 0),
    np.dtype(np.float64): (-64, 0),
}


@dataclass
class HDU:
    """One Header + Data Unit."""

    header: Header
    data: np.ndarray | None = field(default=None)

    def physical_data(self) -> np.ndarray | None:
        """Data with BSCALE/BZERO applied, in a natural native dtype."""
        if self.data is None:
            return None
        bscale = self.header.get("BSCALE", 1)
        bzero = self.header.get("BZERO", 0)
        raw = self.data
        if bscale == 1 and bzero == 0:
            return raw
        bitpix = self.header.get("BITPIX")
        if bscale == 1 and bitpix == 16 and bzero == 32768:
            return (raw.astype(np.int32) + 32768).astype(np.uint16)
        if bscale == 1 and bitpix == 32 and bzero == 2147483648:
            return (raw.astype(np.int64) + 2147483648).astype(np.uint32)
        return raw.astype(np.float64) * float(bscale) + float(bzero)


def _padded(raw: bytes) -> bytes:
    pad = (-len(raw)) % BLOCK_SIZE
    return raw + b"\x00" * pad


def write_hdu(
    array: np.ndarray,
    extra_header: Header | None = None,
    with_checksum: bool = False,
    as_extension: bool = False,
) -> bytes:
    """Serialise one image HDU for *array* (native-dtype numpy array).

    With ``with_checksum`` the DATASUM/CHECKSUM keywords are filled in
    (see :mod:`repro.fits.checksum`), enabling bit-flip *detection* on
    the receiving side.  ``as_extension`` emits a standard IMAGE
    extension (XTENSION/PCOUNT/GCOUNT) instead of a primary HDU.
    """
    dtype = np.dtype(array.dtype).newbyteorder("=")
    if dtype not in _WRITE_MAP:
        raise FITSFormatError(f"cannot store dtype {array.dtype} in FITS")
    bitpix, bzero = _WRITE_MAP[dtype]
    header = (
        Header.image_extension(bitpix, array.shape)
        if as_extension
        else Header.primary(bitpix, array.shape)
    )
    if bzero:
        header.set("BSCALE", 1, "physical = raw * BSCALE + BZERO")
        header.set("BZERO", bzero, "offset for unsigned storage")
    if extra_header is not None:
        for card in extra_header:
            if card.is_commentary:
                header.add_comment(card.comment)
            elif card.keyword not in ("SIMPLE", "BITPIX", "NAXIS") and not card.keyword.startswith("NAXIS"):
                header.set(card.keyword, card.value, card.comment)
    raw_dtype = _BITPIX_DTYPE[bitpix]
    if bzero:
        stored = (array.astype(np.int64) - bzero).astype(raw_dtype)
    else:
        stored = array.astype(raw_dtype)
    data_bytes = _padded(stored.tobytes())
    if with_checksum:
        from repro.fits.checksum import set_checksums

        set_checksums(header, data_bytes)
    return header.to_bytes() + data_bytes


def write_fits(arrays: np.ndarray | list[np.ndarray], path_or_buffer) -> None:
    """Write one or more arrays as a FITS file (primary HDU + extensions).

    *path_or_buffer* may be a filesystem path or a binary file object.
    """
    if isinstance(arrays, np.ndarray):
        arrays = [arrays]
    if not arrays:
        raise FITSFormatError("write_fits requires at least one array")
    parts = []
    for i, array in enumerate(arrays):
        if i == 0 and len(arrays) > 1:
            extra = Header()
            extra.set("EXTEND", True, "extensions may follow")
            parts.append(write_hdu(array, extra_header=extra))
        else:
            parts.append(write_hdu(array, as_extension=i > 0))
    blob = b"".join(parts)
    if hasattr(path_or_buffer, "write"):
        path_or_buffer.write(blob)
    else:
        with open(path_or_buffer, "wb") as fh:
            fh.write(blob)


def decode_data_unit(header: Header, raw: bytes, offset: int) -> tuple[np.ndarray | None, int]:
    """Decode the data unit that *header* describes, starting at *offset*.

    Returns the native-endian array (or None for a dataless HDU) and the
    offset just past the block-padded data unit.
    """
    bitpix = header.get("BITPIX")
    if bitpix not in VALID_BITPIX:
        raise FITSFormatError(f"invalid BITPIX in header: {bitpix!r}")
    size = header.data_size_bytes()
    if size == 0:
        return None, offset
    if offset + size > len(raw):
        raise FITSFormatError(
            f"truncated data unit: need {size} bytes, have {len(raw) - offset}"
        )
    flat = np.frombuffer(raw[offset : offset + size], dtype=_BITPIX_DTYPE[bitpix])
    shape = tuple(reversed(header.axes()))
    data = flat.reshape(shape).astype(_BITPIX_DTYPE[bitpix].newbyteorder("="))
    return data, offset + size + ((-size) % BLOCK_SIZE)


def _read_hdu(raw: bytes, offset: int) -> tuple[HDU, int]:
    header, consumed = Header.from_bytes(raw[offset:])
    offset += consumed
    data, offset = decode_data_unit(header, raw, offset)
    return HDU(header, data), offset


def read_fits(path_or_buffer) -> list[HDU]:
    """Read all HDUs from a FITS file or binary buffer."""
    if hasattr(path_or_buffer, "read"):
        raw = path_or_buffer.read()
    elif isinstance(path_or_buffer, (bytes, bytearray)):
        raw = bytes(path_or_buffer)
    else:
        with open(path_or_buffer, "rb") as fh:
            raw = fh.read()
    if not raw:
        raise FITSFormatError("empty FITS stream")
    hdus = []
    offset = 0
    while offset < len(raw):
        # Trailing padding blocks of NULs or blanks are permitted.
        chunk = raw[offset : offset + BLOCK_SIZE]
        if chunk.strip(b"\x00 ") == b"":
            offset += BLOCK_SIZE
            continue
        hdu, offset = _read_hdu(raw, offset)
        hdus.append(hdu)
    if not hdus:
        raise FITSFormatError("no HDUs found in FITS stream")
    return hdus


def read_fits_bytes(raw: bytes) -> list[HDU]:
    """Convenience wrapper: read HDUs from an in-memory byte string."""
    return read_fits(io.BytesIO(raw))
