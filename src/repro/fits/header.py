"""FITS header model: an ordered collection of cards with the mandatory
keyword rules of the standard (NOST 100-2.0, the paper's ref. [14]).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import FITSFormatError
from repro.fits.cards import CARD_SIZE, Card, CardValue, format_card, parse_card

BLOCK_SIZE = 2880
CARDS_PER_BLOCK = BLOCK_SIZE // CARD_SIZE

#: BITPIX values the standard permits, and the numpy dtypes they map to.
VALID_BITPIX = (8, 16, 32, 64, -32, -64)


class Header:
    """An ordered, keyword-addressable FITS header.

    Supports dict-style access by keyword for value cards while preserving
    card order and commentary cards for round-tripping.
    """

    def __init__(self, cards: list[Card] | None = None) -> None:
        self._cards: list[Card] = list(cards) if cards else []

    # -- dict-like access --------------------------------------------------

    def __contains__(self, keyword: str) -> bool:
        keyword = keyword.upper()
        return any(c.keyword == keyword and not c.is_commentary for c in self._cards)

    def __getitem__(self, keyword: str) -> CardValue:
        keyword = keyword.upper()
        for card in self._cards:
            if card.keyword == keyword and not card.is_commentary:
                return card.value
        raise KeyError(keyword)

    def get(self, keyword: str, default: CardValue = None) -> CardValue:
        try:
            return self[keyword]
        except KeyError:
            return default

    def __setitem__(self, keyword: str, value: CardValue) -> None:
        keyword = keyword.upper()
        for i, card in enumerate(self._cards):
            if card.keyword == keyword and not card.is_commentary:
                self._cards[i] = Card(keyword, value, card.comment)
                return
        self._cards.append(Card(keyword, value))

    def set(self, keyword: str, value: CardValue, comment: str = "") -> None:
        """Set a value card, with an explicit comment."""
        keyword = keyword.upper()
        for i, card in enumerate(self._cards):
            if card.keyword == keyword and not card.is_commentary:
                self._cards[i] = Card(keyword, value, comment)
                return
        self._cards.append(Card(keyword, value, comment))

    def __delitem__(self, keyword: str) -> None:
        keyword = keyword.upper()
        for i, card in enumerate(self._cards):
            if card.keyword == keyword and not card.is_commentary:
                del self._cards[i]
                return
        raise KeyError(keyword)

    def __iter__(self) -> Iterator[Card]:
        return iter(self._cards)

    def __len__(self) -> int:
        return len(self._cards)

    def add_comment(self, text: str) -> None:
        self._cards.append(Card("COMMENT", comment=text))

    def add_history(self, text: str) -> None:
        self._cards.append(Card("HISTORY", comment=text))

    @property
    def cards(self) -> list[Card]:
        return list(self._cards)

    # -- structural queries -------------------------------------------------

    def axes(self) -> tuple[int, ...]:
        """The (NAXIS1, NAXIS2, …) tuple, FITS order (fastest axis first)."""
        naxis = self.get("NAXIS")
        if not isinstance(naxis, int) or naxis < 0:
            raise FITSFormatError(f"invalid NAXIS: {naxis!r}")
        dims = []
        for n in range(1, naxis + 1):
            size = self.get(f"NAXIS{n}")
            if not isinstance(size, int) or size < 0:
                raise FITSFormatError(f"invalid NAXIS{n}: {size!r}")
            dims.append(size)
        return tuple(dims)

    def data_size_bytes(self) -> int:
        """Size of the data unit in bytes (before block padding)."""
        bitpix = self.get("BITPIX")
        if bitpix not in VALID_BITPIX:
            raise FITSFormatError(f"invalid BITPIX: {bitpix!r}")
        dims = self.axes()
        if not dims:
            return 0
        count = 1
        for d in dims:
            count *= d
        return count * abs(bitpix) // 8

    # -- serialisation -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to one or more 2880-byte blocks, END-terminated."""
        images = [format_card(c) for c in self._cards if not c.is_end]
        images.append(format_card(Card("END")))
        raw = b"".join(images)
        pad = (-len(raw)) % BLOCK_SIZE
        return raw + b" " * pad

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["Header", int]:
        """Parse a header from *raw*; returns (header, bytes consumed).

        Consumes whole 2880-byte blocks until (and including) the one
        containing the END card.
        """
        if len(raw) < BLOCK_SIZE:
            raise FITSFormatError(
                f"header requires at least one {BLOCK_SIZE}-byte block, got {len(raw)}"
            )
        cards: list[Card] = []
        offset = 0
        while True:
            if offset + BLOCK_SIZE > len(raw):
                raise FITSFormatError("header not terminated by END card")
            block = raw[offset : offset + BLOCK_SIZE]
            offset += BLOCK_SIZE
            for i in range(CARDS_PER_BLOCK):
                image = block[i * CARD_SIZE : (i + 1) * CARD_SIZE]
                if image.strip() == b"":
                    continue
                card = parse_card(image)
                if card.is_end:
                    return cls(cards), offset
                cards.append(card)

    # -- construction helpers -----------------------------------------------

    @classmethod
    def primary(cls, bitpix: int, shape: tuple[int, ...]) -> "Header":
        """A minimal standard-conforming primary header.

        *shape* is given in numpy (row-major) order; it is reversed into
        FITS axis order.
        """
        if bitpix not in VALID_BITPIX:
            raise FITSFormatError(f"invalid BITPIX: {bitpix!r}")
        header = cls()
        header.set("SIMPLE", True, "conforms to FITS standard")
        header.set("BITPIX", bitpix, "bits per data pixel")
        header.set("NAXIS", len(shape), "number of data axes")
        for n, size in enumerate(reversed(shape), start=1):
            header.set(f"NAXIS{n}", int(size), f"length of data axis {n}")
        return header

    @classmethod
    def image_extension(cls, bitpix: int, shape: tuple[int, ...]) -> "Header":
        """A standard-conforming IMAGE extension header.

        Extensions open with ``XTENSION= 'IMAGE   '`` instead of SIMPLE
        and carry the mandatory PCOUNT/GCOUNT cards.
        """
        if bitpix not in VALID_BITPIX:
            raise FITSFormatError(f"invalid BITPIX: {bitpix!r}")
        header = cls()
        header.set("XTENSION", "IMAGE   ", "IMAGE extension")
        header.set("BITPIX", bitpix, "bits per data pixel")
        header.set("NAXIS", len(shape), "number of data axes")
        for n, size in enumerate(reversed(shape), start=1):
            header.set(f"NAXIS{n}", int(size), f"length of data axis {n}")
        header.set("PCOUNT", 0, "no varying-array heap")
        header.set("GCOUNT", 1, "one data group")
        return header

    @property
    def is_extension(self) -> bool:
        """True when this header opens an extension HDU."""
        return "XTENSION" in self
