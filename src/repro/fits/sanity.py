"""FITS header sanity analysis — the Λ = 0 action of the preprocessor.

§2.2.1: a bit-flip in the header region of a FITS file can be
catastrophic — a misread ``NAXIS`` or ``BITPIX`` corrupts the entire
data unit.  The analyzer walks the raw header bytes card by card,
detects structural damage a bit-flip can cause, and applies conservative
repairs:

* non-ASCII bytes (high bit flipped) are restored by clearing bit 7;
* an illegal ``BITPIX`` is snapped to the legal value at minimum Hamming
  distance (the most likely pre-flip value);
* ``NAXIS`` inconsistent with the set of ``NAXISn`` cards present is
  rebuilt from that set;
* negative or absurd axis lengths are flagged (and optionally clamped);
* a missing ``END`` card within the scanned blocks is flagged as fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import FITSFormatError
from repro.fits.cards import CARD_SIZE, parse_card
from repro.fits.header import BLOCK_SIZE, CARDS_PER_BLOCK, VALID_BITPIX, Header


class Severity(Enum):
    """How bad a sanity finding is."""

    INFO = "info"
    REPAIRED = "repaired"
    FATAL = "fatal"


@dataclass(frozen=True)
class SanityIssue:
    """One finding of the sanity analysis."""

    severity: Severity
    keyword: str
    message: str


@dataclass
class SanityReport:
    """Aggregate result of one header sanity pass."""

    issues: list[SanityIssue] = field(default_factory=list)
    header: Header | None = None
    repaired_bytes: bytes | None = None
    #: Bytes of *raw* occupied by the header (whole blocks up to and
    #: including the one containing END); -1 if END was never found.
    header_length: int = -1

    @property
    def ok(self) -> bool:
        """True when the header is usable (possibly after repairs)."""
        return not any(i.severity is Severity.FATAL for i in self.issues)

    @property
    def n_repairs(self) -> int:
        return sum(1 for i in self.issues if i.severity is Severity.REPAIRED)

    def add(self, severity: Severity, keyword: str, message: str) -> None:
        self.issues.append(SanityIssue(severity, keyword, message))


def _hamming(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


def nearest_bitpix(value: int) -> int:
    """The legal BITPIX at minimum Hamming distance from *value*.

    Distances are computed on the 64-bit two's-complement patterns, so
    that e.g. a flipped sign bit mapping 16 → -16 repairs back cleanly.
    Ties break toward the smaller magnitude (more common in practice).
    """
    mask = (1 << 64) - 1
    pattern = value & mask
    best = min(
        VALID_BITPIX,
        key=lambda legal: (_hamming(pattern, legal & mask), abs(legal)),
    )
    return best


#: Axis length beyond which we consider the dimension absurd for the
#: applications at hand (NGST's detector is 1024x1024; OTIS frames are
#: of the same order).  A flipped high bit in NAXISn lands far above it.
MAX_REASONABLE_AXIS = 1 << 20


class HeaderSanityAnalyzer:
    """Analyse (and optionally repair) the raw bytes of a FITS header."""

    def __init__(self, repair: bool = True, max_blocks: int = 64) -> None:
        self.repair = repair
        self.max_blocks = max_blocks

    def analyze(self, raw: bytes) -> SanityReport:
        """Run the sanity pass over *raw*.

        *raw* may be the header alone or a whole HDU/file: the pass
        walks block by block and stops at the block containing END, so
        data-unit bytes are never touched (they are binary, not cards).
        """
        report = SanityReport()
        if len(raw) < BLOCK_SIZE:
            report.add(Severity.FATAL, "", f"header shorter than one block ({len(raw)} bytes)")
            return report

        work = bytearray(raw)
        cards: list = []
        end_offset = None
        blocks = min(len(work) // BLOCK_SIZE, self.max_blocks)
        for b in range(blocks):
            start = b * BLOCK_SIZE
            self._repair_non_ascii(work, start, start + BLOCK_SIZE, report)
            end_offset = self._scan_block_cards(
                bytes(work[start : start + BLOCK_SIZE]), start, cards, report
            )
            if end_offset is not None:
                break
        if end_offset is None:
            report.add(Severity.FATAL, "END", "no END card found in scanned blocks")
            return report
        # Round up to whole blocks: the header always occupies full blocks.
        report.header_length = end_offset + ((-end_offset) % BLOCK_SIZE)

        header = Header(cards)
        self._check_simple(header, report)
        self._check_bitpix(header, report)
        self._check_naxis(header, report)
        self._check_axes(header, report)

        if report.ok:
            report.header = header
            report.repaired_bytes = header.to_bytes() if self.repair else bytes(work)
        return report

    # -- byte-level ---------------------------------------------------------

    def _repair_non_ascii(
        self, work: bytearray, start: int, stop: int, report: SanityReport
    ) -> None:
        """Clear bit 7 of bytes outside printable ASCII in [start, stop)."""
        for i in range(start, min(stop, len(work))):
            byte = work[i]
            if byte < 0x20 or byte > 0x7E:
                repaired = byte & 0x7F
                if repaired < 0x20:
                    repaired = 0x20
                card_no = i // CARD_SIZE
                report.add(
                    Severity.REPAIRED if self.repair else Severity.FATAL,
                    "",
                    f"non-ASCII byte 0x{byte:02x} at offset {i} (card {card_no})",
                )
                if self.repair:
                    work[i] = repaired

    # -- card-level -----------------------------------------------------------

    def _scan_block_cards(
        self, block: bytes, block_offset: int, cards: list, report: SanityReport
    ) -> int | None:
        """Scan one block's cards into *cards*.

        Returns the absolute offset just past the END card when it is
        found in this block, else None.
        """
        for i in range(CARDS_PER_BLOCK):
            image = block[i * CARD_SIZE : (i + 1) * CARD_SIZE]
            if image.strip() == b"":
                continue
            try:
                card = parse_card(image)
            except FITSFormatError as exc:
                report.add(Severity.INFO, "", f"unparseable card skipped: {exc}")
                continue
            if card.is_end:
                return block_offset + (i + 1) * CARD_SIZE
            cards.append(card)
        return None

    # -- keyword-level -----------------------------------------------------

    def _check_simple(self, header: Header, report: SanityReport) -> None:
        if "XTENSION" in header:
            xtension = header.get("XTENSION")
            if isinstance(xtension, str) and xtension.strip() in (
                "IMAGE",
                "TABLE",
                "BINTABLE",
            ):
                return
            report.add(
                Severity.FATAL, "XTENSION", f"unknown extension type {xtension!r}"
            )
            return
        simple = header.get("SIMPLE")
        if simple is True:
            return
        if simple is None:
            report.add(Severity.FATAL, "SIMPLE", "missing SIMPLE card")
        elif self.repair:
            header["SIMPLE"] = True
            report.add(Severity.REPAIRED, "SIMPLE", f"SIMPLE was {simple!r}, reset to T")
        else:
            report.add(Severity.FATAL, "SIMPLE", f"SIMPLE is {simple!r}")

    def _check_bitpix(self, header: Header, report: SanityReport) -> None:
        bitpix = header.get("BITPIX")
        if bitpix in VALID_BITPIX:
            return
        if bitpix is None:
            report.add(Severity.FATAL, "BITPIX", "missing BITPIX card")
            return
        if isinstance(bitpix, int) and self.repair:
            fixed = nearest_bitpix(bitpix)
            header["BITPIX"] = fixed
            report.add(
                Severity.REPAIRED,
                "BITPIX",
                f"illegal BITPIX {bitpix} snapped to {fixed} (min Hamming distance)",
            )
        else:
            report.add(Severity.FATAL, "BITPIX", f"illegal BITPIX {bitpix!r}")

    def _check_naxis(self, header: Header, report: SanityReport) -> None:
        naxis = header.get("NAXIS")
        present = self._present_axes(header)
        expected = len(present)
        consistent = (
            isinstance(naxis, int)
            and 0 <= naxis <= 999
            and present == list(range(1, naxis + 1))
        )
        if consistent:
            return
        if self.repair and present == list(range(1, expected + 1)):
            header["NAXIS"] = expected
            report.add(
                Severity.REPAIRED,
                "NAXIS",
                f"NAXIS was {naxis!r}; rebuilt as {expected} from NAXISn cards",
            )
        else:
            report.add(
                Severity.FATAL,
                "NAXIS",
                f"NAXIS {naxis!r} inconsistent with axis cards {present}",
            )

    def _check_axes(self, header: Header, report: SanityReport) -> None:
        for n in self._present_axes(header):
            keyword = f"NAXIS{n}"
            size = header.get(keyword)
            if isinstance(size, int) and 0 < size <= MAX_REASONABLE_AXIS:
                continue
            if isinstance(size, int) and size > MAX_REASONABLE_AXIS and self.repair:
                # A single flipped high bit is the most likely cause; clear
                # the highest set bit that brings the size back in range.
                fixed = size
                bit = 1 << (size.bit_length() - 1)
                while fixed > MAX_REASONABLE_AXIS and bit:
                    if fixed & bit:
                        fixed ^= bit
                    bit >>= 1
                if 0 < fixed <= MAX_REASONABLE_AXIS:
                    header[keyword] = fixed
                    report.add(
                        Severity.REPAIRED,
                        keyword,
                        f"absurd axis length {size} reduced to {fixed}",
                    )
                    continue
            report.add(Severity.FATAL, keyword, f"invalid axis length {size!r}")

    @staticmethod
    def _present_axes(header: Header) -> list[int]:
        present = []
        for card in header:
            kw = card.keyword
            if kw.startswith("NAXIS") and kw != "NAXIS" and kw[5:].isdigit():
                present.append(int(kw[5:]))
        return sorted(present)
