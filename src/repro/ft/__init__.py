"""Classic software fault-tolerance schemes the paper positions itself
against (§1): Algorithm-Based Fault Tolerance for matrix operations,
and N-Version Programming with majority / T-out-of-(N−1) voting.

These exist to reproduce the paper's *motivating* claim: such schemes
recover from faults in the instruction memory or processing units, but
"a recomputed or secondary output may only be expected to produce
equally spurious or worse results than the primary as the corrupted
input affects both" — input preprocessing is the missing layer.
"""

from repro.ft.abft import ABFTMatrix, ABFTReport, abft_matmul
from repro.ft.nvp import NVPResult, NVPVoter, VersionOutcome

__all__ = [
    "ABFTMatrix",
    "ABFTReport",
    "NVPResult",
    "NVPVoter",
    "VersionOutcome",
    "abft_matmul",
]
