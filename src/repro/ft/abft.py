"""Algorithm-Based Fault Tolerance for matrix operations.

The checksum-matrix scheme of Huang & Abraham (the paper's ref. [3]):
a matrix is augmented with a column of row sums and a row of column
sums; after a multiplication the checksums of the product are
recomputed and compared, locating (row, column) of a single erroneous
element, which is then corrected from its checksum.

The crucial limitation the paper builds on: ABFT verifies the
*computation*, not the *input*.  If the operand matrices were corrupted
in memory before the multiply, the checksums (computed from the
corrupted data) validate a wrong answer — demonstrated by the
``motivation`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class ABFTReport:
    """What the post-multiplication checksum verification found."""

    consistent: bool
    corrected: bool
    error_row: int | None = None
    error_col: int | None = None


class ABFTMatrix:
    """A matrix wrapped with full checksums (row sums + column sums)."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise DataFormatError(f"ABFT needs a 2-D matrix, got {data.ndim}-D")
        self.data = data
        self.row_checksum = data.sum(axis=1)
        self.col_checksum = data.sum(axis=0)

    def verify(self, rtol: float = 1e-9) -> bool:
        """Do the stored checksums still match the data?"""
        return bool(
            np.allclose(self.data.sum(axis=1), self.row_checksum, rtol=rtol)
            and np.allclose(self.data.sum(axis=0), self.col_checksum, rtol=rtol)
        )


def _locate(mismatch: np.ndarray) -> int | None:
    """Index of the single mismatching checksum, if exactly one."""
    bad = np.nonzero(mismatch)[0]
    return int(bad[0]) if len(bad) == 1 else None


def abft_matmul(
    a: np.ndarray, b: np.ndarray, fault_hook=None, rtol: float = 1e-9
) -> tuple[np.ndarray, ABFTReport]:
    """Checksum-protected matrix multiplication.

    Computes ``c = a @ b`` through the column-checksum/row-checksum
    encoding.  ``fault_hook(c)``, when given, may corrupt the raw product
    before verification — standing in for a processing-unit fault.  A
    single corrupted element is located by its inconsistent row and
    column checksums and repaired.

    Returns the (possibly repaired) product and an :class:`ABFTReport`.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise DataFormatError(
            f"incompatible shapes for matmul: {a.shape} x {b.shape}"
        )
    # Column-checksum A (extra row) times row-checksum B (extra column)
    # yields a full-checksum product.
    a_c = np.vstack([a, a.sum(axis=0)])
    b_r = np.hstack([b, b.sum(axis=1, keepdims=True)])
    full = a_c @ b_r
    c = full[:-1, :-1].copy()
    if fault_hook is not None:
        c = np.asarray(fault_hook(c), dtype=np.float64)

    expected_row = full[:-1, -1]
    expected_col = full[-1, :-1]
    scale = max(1.0, float(np.abs(full).max()))
    row_bad = ~np.isclose(c.sum(axis=1), expected_row, rtol=rtol, atol=rtol * scale)
    col_bad = ~np.isclose(c.sum(axis=0), expected_col, rtol=rtol, atol=rtol * scale)
    if not row_bad.any() and not col_bad.any():
        return c, ABFTReport(consistent=True, corrected=False)

    row = _locate(row_bad)
    col = _locate(col_bad)
    if row is not None and col is not None:
        # Single-element error: repair from the row checksum.
        correct_value = expected_row[row] - (c[row].sum() - c[row, col])
        c[row, col] = correct_value
        return c, ABFTReport(
            consistent=False, corrected=True, error_row=row, error_col=col
        )
    return c, ABFTReport(consistent=False, corrected=False)
