"""N-Version Programming with majority and T/(N−1) voting (§1, ref. [4]).

N independently developed versions compute the same function; a voter
adjudicates their outputs.  The classic scheme masks faults confined to
individual versions (design bugs, node-local upsets).  The paper's
point: when the *shared input* is corrupted, all N versions agree on
the same wrong answer and the voter happily certifies it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError


class VersionOutcome(Enum):
    """How one version's run ended."""

    AGREED = "agreed"
    OUTVOTED = "outvoted"
    CRASHED = "crashed"


@dataclass(frozen=True)
class NVPResult:
    """Voter verdict over the N versions.

    Attributes:
        output: the adjudicated output, or None if no agreement group
            reached the required quorum.
        agreed: whether a quorum existed.
        outcomes: per-version classification.
        agreement_size: size of the winning agreement group.
    """

    output: np.ndarray | None
    agreed: bool
    outcomes: tuple[VersionOutcome, ...]
    agreement_size: int


class NVPVoter:
    """Runs N versions and votes on their outputs.

    Args:
        versions: the N independent implementations.
        quorum: votes required to accept an output.  ``None`` selects a
            strict majority (⌊N/2⌋+1).  The T/(N−1) scheme of the paper
            corresponds to ``quorum=T`` with one version treated as the
            primary whose output must be seconded by T of the others.
        atol: numeric tolerance when comparing version outputs (versions
            may legitimately differ in rounding).
    """

    def __init__(
        self,
        versions: Sequence[Callable[[np.ndarray], np.ndarray]],
        quorum: int | None = None,
        atol: float = 1e-9,
    ) -> None:
        if len(versions) < 2:
            raise ConfigurationError(f"NVP needs >= 2 versions, got {len(versions)}")
        n = len(versions)
        if quorum is None:
            quorum = n // 2 + 1
        if not 1 <= quorum <= n:
            raise ConfigurationError(f"quorum must be within [1, {n}], got {quorum}")
        self.versions = list(versions)
        self.quorum = quorum
        self.atol = atol

    def run(self, input_data: np.ndarray) -> NVPResult:
        """Execute all versions on *input_data* and adjudicate."""
        outputs: list[np.ndarray | None] = []
        for version in self.versions:
            try:
                outputs.append(np.asarray(version(input_data)))
            except Exception:
                outputs.append(None)

        # Group equivalent outputs (within tolerance).
        groups: list[list[int]] = []
        for i, out in enumerate(outputs):
            if out is None:
                continue
            placed = False
            for group in groups:
                reference = outputs[group[0]]
                if reference.shape == out.shape and np.allclose(
                    reference, out, atol=self.atol
                ):
                    group.append(i)
                    placed = True
                    break
            if not placed:
                groups.append([i])

        winner = max(groups, key=len, default=[])
        agreed = len(winner) >= self.quorum
        outcomes = []
        for i, out in enumerate(outputs):
            if out is None:
                outcomes.append(VersionOutcome.CRASHED)
            elif agreed and i in winner:
                outcomes.append(VersionOutcome.AGREED)
            else:
                outcomes.append(VersionOutcome.OUTVOTED)
        return NVPResult(
            output=outputs[winner[0]] if agreed else None,
            agreed=agreed,
            outcomes=tuple(outcomes),
            agreement_size=len(winner),
        )
