"""Dataset persistence for reproducible fault-injection campaigns."""

from repro.io.archive import CampaignArchive, load_trial, save_trial

__all__ = ["CampaignArchive", "load_trial", "save_trial"]
