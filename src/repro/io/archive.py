"""On-disk archives of fault-injection trials.

A trial is the triple the whole evaluation revolves around — pristine
dataset Π, corrupted dataset P and the flip mask that links them — plus
the parameters that produced it.  Persisting trials lets a campaign be
re-analysed (new algorithms, new metrics) without re-generating data,
and makes cross-machine reproduction byte-exact.

Format: one FITS file per trial (primary HDU = pristine, IMAGE
extensions = corrupted and flip mask, all with checksum keywords) and a
JSON manifest listing trials with their metadata.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import DataFormatError
from repro.fits.checksum import verify_checksums
from repro.fits.file import read_fits, write_hdu
from repro.fits.header import Header

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class Trial:
    """One persisted injection trial."""

    name: str
    pristine: np.ndarray
    corrupted: np.ndarray
    flip_mask: np.ndarray
    metadata: dict


def save_trial(
    path: str | Path,
    pristine: np.ndarray,
    corrupted: np.ndarray,
    flip_mask: np.ndarray,
    metadata: dict | None = None,
) -> None:
    """Write one trial as a checksummed multi-HDU FITS file."""
    pristine = np.asarray(pristine)
    corrupted = np.asarray(corrupted)
    flip_mask = np.asarray(flip_mask)
    if not (pristine.shape == corrupted.shape == flip_mask.shape):
        raise DataFormatError(
            f"trial arrays must share a shape, got {pristine.shape}/"
            f"{corrupted.shape}/{flip_mask.shape}"
        )
    extra = Header()
    extra.set("EXTEND", True, "extensions follow")
    if metadata:
        # Human-readable copies in the header; the authoritative,
        # machine-readable metadata lives in the manifest.
        for key, value in sorted(metadata.items()):
            extra.add_comment(f"{key} = {value!r}")
    blob = write_hdu(pristine, extra_header=extra, with_checksum=True)
    blob += write_hdu(corrupted, with_checksum=True, as_extension=True)
    blob += write_hdu(flip_mask, with_checksum=True, as_extension=True)
    Path(path).write_bytes(blob)


def load_trial(path: str | Path, verify: bool = True) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read a trial back; optionally verify every HDU's checksums."""
    raw = Path(path).read_bytes()
    hdus = read_fits(raw)
    if len(hdus) != 3:
        raise DataFormatError(f"{path}: expected 3 HDUs, found {len(hdus)}")
    if verify:
        offset = 0
        for index, hdu in enumerate(hdus):
            header, consumed = Header.from_bytes(raw[offset:])
            data_size = header.data_size_bytes()
            padded = data_size + ((-data_size) % 2880)
            data_bytes = raw[offset + consumed : offset + consumed + padded]
            verdict = verify_checksums(header, data_bytes)
            if not verdict.ok:
                raise DataFormatError(
                    f"{path}: HDU {index} failed checksum verification "
                    "(bit-flips on disk or in transfer)"
                )
            offset += consumed + padded
    pristine, corrupted, mask = (h.physical_data() for h in hdus)
    return pristine, corrupted, mask


class CampaignArchive:
    """A directory of persisted trials with a JSON manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if self._manifest_path.exists():
            self._manifest = json.loads(self._manifest_path.read_text())
        else:
            self._manifest = {"trials": {}}

    def save(
        self,
        name: str,
        pristine: np.ndarray,
        corrupted: np.ndarray,
        flip_mask: np.ndarray,
        metadata: dict | None = None,
    ) -> Path:
        """Persist one named trial and record it in the manifest."""
        if not name or "/" in name:
            raise DataFormatError(f"invalid trial name: {name!r}")
        path = self.root / f"{name}.fits"
        save_trial(path, pristine, corrupted, flip_mask, metadata)
        self._manifest["trials"][name] = {
            "file": path.name,
            "shape": list(np.asarray(pristine).shape),
            "dtype": str(np.asarray(pristine).dtype),
            "metadata": dict(metadata or {}),
        }
        self._manifest_path.write_text(json.dumps(self._manifest, indent=2))
        return path

    def load(self, name: str, verify: bool = True) -> Trial:
        """Load one named trial (checksum-verified by default)."""
        try:
            entry = self._manifest["trials"][name]
        except KeyError:
            raise DataFormatError(
                f"unknown trial {name!r}; have {sorted(self._manifest['trials'])}"
            ) from None
        pristine, corrupted, mask = load_trial(self.root / entry["file"], verify)
        return Trial(
            name=name,
            pristine=pristine,
            corrupted=corrupted,
            flip_mask=mask,
            metadata=dict(entry.get("metadata", {})),
        )

    def names(self) -> list[str]:
        return sorted(self._manifest["trials"])

    def __len__(self) -> int:
        return len(self._manifest["trials"])
