"""Evaluation metrics: average relative error Ψ (Eqs. 3–4), bit-level
confusion accounting, and execution-overhead timing."""

from repro.metrics.confusion import BitConfusion, bit_confusion
from repro.metrics.overhead import OverheadTimer, time_callable
from repro.metrics.relative_error import improvement_factor, psi
from repro.metrics.spectrum import BitSpectrum, bit_spectrum, residual_attribution

__all__ = [
    "BitConfusion",
    "BitSpectrum",
    "OverheadTimer",
    "bit_confusion",
    "bit_spectrum",
    "improvement_factor",
    "psi",
    "residual_attribution",
    "time_callable",
]
