"""Bit-level confusion accounting for a preprocessing pass.

Given the pristine, corrupted and preprocessed datasets, classifies
every bit position into:

* **true corrections** — injected flips that the algorithm reverted;
* **false alarms** (pseudo-corrections) — clean bits the algorithm
  flipped, the §7.2 failure mode;
* **missed** — injected flips the algorithm left in place.

These drive the false-alarm analyses behind Figures 2, 6 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class BitConfusion:
    """Counts of bit-level outcomes of one preprocessing pass."""

    true_corrections: int
    false_alarms: int
    missed: int
    total_bits: int

    @property
    def injected(self) -> int:
        """Number of injected bit-flips (= corrected + missed)."""
        return self.true_corrections + self.missed

    @property
    def precision(self) -> float:
        """Fraction of the algorithm's flips that were genuine repairs."""
        acted = self.true_corrections + self.false_alarms
        return self.true_corrections / acted if acted else 1.0

    @property
    def recall(self) -> float:
        """Fraction of injected flips that were repaired."""
        return self.true_corrections / self.injected if self.injected else 1.0

    @property
    def residual_flips(self) -> int:
        """Bits still wrong after preprocessing (missed + false alarms)."""
        return self.missed + self.false_alarms


def _as_bits(arr: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.dtype == np.float32:
        return bitops.float32_to_bits(np.ascontiguousarray(arr))
    bitops.require_unsigned(arr, name)
    return arr


def bit_confusion(
    pristine: np.ndarray, corrupted: np.ndarray, processed: np.ndarray
) -> BitConfusion:
    """Classify every bit of the dataset after a preprocessing pass."""
    p = _as_bits(pristine, "pristine")
    c = _as_bits(corrupted, "corrupted")
    o = _as_bits(processed, "processed")
    if not (p.shape == c.shape == o.shape):
        raise DataFormatError(
            f"shape mismatch: {p.shape} / {c.shape} / {o.shape}"
        )
    if not (p.dtype == c.dtype == o.dtype):
        raise DataFormatError(
            f"dtype mismatch: {p.dtype} / {c.dtype} / {o.dtype}"
        )
    injected = np.bitwise_xor(p, c)
    residual = np.bitwise_xor(p, o)
    nbits = bitops.bit_width(p.dtype)
    true_corrections = int(bitops.popcount(injected & ~residual).sum())
    false_alarms = int(bitops.popcount(~injected & residual).sum())
    missed = int(bitops.popcount(injected & residual).sum())
    return BitConfusion(
        true_corrections=true_corrections,
        false_alarms=false_alarms,
        missed=missed,
        total_bits=int(p.size * nbits),
    )
