"""Execution-overhead measurement (Figure 3).

The paper measures preprocessing overhead on a Pentium III 750 MHz;
absolute numbers are hardware-bound, so the reproduction reports the
*relative* overhead curve across sensitivities and algorithms, measured
with a monotonic high-resolution timer.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TimingResult:
    """Summary of repeated timings of one callable."""

    best_seconds: float
    mean_seconds: float
    repeats: int

    def relative_to(self, baseline: "TimingResult") -> float:
        """This timing as a multiple of *baseline* (best-of comparison)."""
        if baseline.best_seconds <= 0:
            return float("inf")
        return self.best_seconds / baseline.best_seconds


def time_callable(
    func: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> TimingResult:
    """Time ``func()`` with warm-up; returns best and mean of *repeats*."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        best_seconds=min(samples),
        mean_seconds=sum(samples) / len(samples),
        repeats=repeats,
    )


class OverheadTimer:
    """Accumulates named timings and renders them as a comparison table."""

    def __init__(self, repeats: int = 5) -> None:
        self.repeats = repeats
        self.results: dict[str, TimingResult] = {}

    def measure(self, name: str, func: Callable[[], object]) -> TimingResult:
        result = time_callable(func, repeats=self.repeats)
        self.results[name] = result
        return result

    def table(self, baseline: str | None = None) -> str:
        """ASCII table of all timings, optionally relative to *baseline*."""
        if not self.results:
            return "(no timings)"
        base = self.results.get(baseline) if baseline else None
        lines = [f"{'name':<32} {'best ms':>10} {'mean ms':>10} {'rel':>8}"]
        for name, result in self.results.items():
            rel = f"{result.relative_to(base):.2f}x" if base else "-"
            lines.append(
                f"{name:<32} {result.best_seconds * 1e3:>10.3f} "
                f"{result.mean_seconds * 1e3:>10.3f} {rel:>8}"
            )
        return "\n".join(lines)
