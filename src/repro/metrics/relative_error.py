"""Average relative error Ψ — Equations (3) and (4) of the paper.

    Ψ = (1/N) Σᵢ |X(i) − Π(i)| / Π(i)

where Π is the pristine dataset and X is either the corrupted input
(Ψ_NoPreprocessing) or the preprocessed input (Ψ_Algorithm).  The mean
runs over every element of the dataset (all N temporal variants and all
coordinates).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataFormatError


def psi(
    observed: np.ndarray,
    pristine: np.ndarray,
    floor: float = 1e-9,
    cap: float = 1e6,
) -> float:
    """Average relative error of *observed* against *pristine*.

    Args:
        observed: corrupted or preprocessed data, same shape as pristine.
        pristine: the ideal fault-free dataset Π.
        floor: denominators below this magnitude are clamped to it; the
            paper's data model guarantees non-zero reads (detector
            background noise), so the clamp only guards degenerate
            synthetic inputs.
        cap: per-element relative-error ceiling.  Float32 exponent flips
            produce values off by up to 2±¹²⁸; beyond "completely wrong"
            the magnitude carries no information and would drown the
            mean, so each element's contribution saturates here (and
            non-finite values count as the cap).  Irrelevant for the
            integer data of the paper's experiments, whose errors sit
            far below any sensible cap.
    """
    observed = np.asarray(observed)
    pristine = np.asarray(pristine)
    if observed.shape != pristine.shape:
        raise DataFormatError(
            f"shape mismatch: observed {observed.shape} vs pristine {pristine.shape}"
        )
    if observed.size == 0:
        raise DataFormatError("psi is undefined for empty datasets")
    if cap <= 0:
        raise DataFormatError(f"cap must be > 0, got {cap}")
    obs = observed.astype(np.float64)
    ref = pristine.astype(np.float64)
    denom = np.maximum(np.abs(ref), floor)
    with np.errstate(over="ignore", invalid="ignore"):
        err = np.abs(obs - ref) / denom
    err = np.where(np.isfinite(err), np.minimum(err, cap), cap)
    return float(err.mean())


def improvement_factor(
    psi_no_preprocessing: float, psi_algorithm: float, cap: float = 1e9
) -> float:
    """Ψ_NoPreprocessing / Ψ_Algorithm, the paper's gain measure.

    A perfect correction (Ψ_Algorithm = 0) returns *cap* rather than
    infinity so downstream tables stay printable.
    """
    if psi_no_preprocessing < 0 or psi_algorithm < 0:
        raise DataFormatError("relative errors cannot be negative")
    if psi_algorithm == 0.0:
        return cap if psi_no_preprocessing > 0 else 1.0
    return min(cap, psi_no_preprocessing / psi_algorithm)
