"""Per-bit-position error spectra.

The whole bit-window idea of §3.1 rests on *where in the word* errors
live: flips in the most significant bits dominate Ψ, flips in the least
significant bits are indistinguishable from natural variation.  These
helpers histogram injected/residual flips by bit position and attribute
the residual error to positions, which is how the window boundaries
were diagnosed during this reproduction (and how a mission would audit
a deployed configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class BitSpectrum:
    """Flip counts and error weight per bit position (0 = LSB).

    Attributes:
        flips: number of flipped bits per position.
        weights: the summed binary weight of those flips (the absolute
            damage each position contributes before interactions).
        nbits: word width.
    """

    flips: np.ndarray
    weights: np.ndarray
    nbits: int

    @property
    def total_flips(self) -> int:
        return int(self.flips.sum())

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    def dominant_positions(self, fraction: float = 0.9) -> list[int]:
        """The smallest set of positions carrying *fraction* of the damage
        weight, most damaging first."""
        if not 0 < fraction <= 1:
            raise DataFormatError(f"fraction must be in (0, 1], got {fraction}")
        order = np.argsort(self.weights)[::-1]
        cumulative = np.cumsum(self.weights[order])
        if self.total_weight == 0:
            return []
        cut = np.searchsorted(cumulative, fraction * self.total_weight) + 1
        return [int(b) for b in order[:cut]]


def _xor_of(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype == np.float32:
        a = bitops.float32_to_bits(np.ascontiguousarray(a))
        b = bitops.float32_to_bits(np.ascontiguousarray(b))
    bitops.require_unsigned(a, "first array")
    if a.shape != b.shape or a.dtype != b.dtype:
        raise DataFormatError(
            f"arrays must match: {a.shape}/{a.dtype} vs {b.shape}/{b.dtype}"
        )
    return np.bitwise_xor(a, b)


def bit_spectrum(reference: np.ndarray, observed: np.ndarray) -> BitSpectrum:
    """Spectrum of the bits at which *observed* differs from *reference*."""
    diff = _xor_of(reference, observed)
    nbits = bitops.bit_width(diff.dtype)
    flips = np.empty(nbits, dtype=np.int64)
    for b in range(nbits):
        flips[b] = int(
            ((diff >> np.asarray(b, dtype=diff.dtype)) & np.asarray(1, dtype=diff.dtype)).sum()
        )
    weights = flips.astype(np.float64) * (2.0 ** np.arange(nbits))
    return BitSpectrum(flips=flips, weights=weights, nbits=nbits)


def residual_attribution(
    pristine: np.ndarray, corrupted: np.ndarray, processed: np.ndarray
) -> dict[str, BitSpectrum]:
    """Spectra of what was injected, repaired, missed and falsely flipped."""
    injected = _xor_of(pristine, corrupted)
    residual = _xor_of(pristine, processed)
    repaired = injected & ~residual
    missed = injected & residual
    false_alarms = ~injected & residual
    zero = np.zeros_like(injected)
    return {
        "injected": bit_spectrum(zero, injected),
        "repaired": bit_spectrum(zero, repaired),
        "missed": bit_spectrum(zero, missed),
        "false_alarms": bit_spectrum(zero, false_alarms),
    }


def render_spectrum(spectra: dict[str, BitSpectrum]) -> str:
    """ASCII table of per-position counts for each spectrum."""
    if not spectra:
        return "(no spectra)"
    nbits = next(iter(spectra.values())).nbits
    names = list(spectra)
    header = f"{'bit':>4}" + "".join(f"{name:>14}" for name in names)
    lines = [header]
    for b in range(nbits - 1, -1, -1):
        row = f"{b:>4}" + "".join(
            f"{int(spectra[name].flips[b]):>14}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)
