"""Optional compiled kernel tier (cffi/C) with graceful NumPy fallback.

The top kernels by campaign time — the Eq. (2) correlated flip scan,
the GRT combiner vote, the bit-plane transforms and the window
smoothers — have C implementations compiled via cffi in API mode.  A
dispatch layer selects, per kernel and per call, between three
bit-identical tiers::

    native  →  numpy  →  reference

controlled by the ``REPRO_KERNEL_TIER`` environment variable
(``auto``/``native``/``numpy``/``reference``) or programmatically via
:func:`set_kernel_tier`.  When no compiler or extension is present the
whole package degrades to the NumPy tier without errors, so
``repro.native`` is safe to import everywhere.

Because cffi releases the GIL around C calls, native kernels overlap
across :class:`~repro.runtime.ThreadPoolBackend` threads — threaded
shard execution escapes both the interpreter lock and the
process-pool pickle tax.

See ``docs/PERFORMANCE.md`` ("Native kernel tier") and the ``repro
kernels`` CLI subcommand for build requirements and diagnostics.
"""

from __future__ import annotations

from repro.native.dispatch import (
    ENV_VAR,
    TIERS,
    get_kernel_tier,
    kernel_tier,
    set_kernel_tier,
)
from repro.native.loader import (
    available as native_available,
    origin as native_origin,
    unavailable_reason as native_unavailable_reason,
)

__all__ = [
    "ENV_VAR",
    "TIERS",
    "get_kernel_tier",
    "kernel_tier",
    "native_available",
    "native_origin",
    "native_unavailable_reason",
    "set_kernel_tier",
]
