"""cffi API-mode build recipe for the native kernel extension.

Two consumers share this module:

* ``setup.py`` points ``cffi_modules`` here so ``pip install .`` builds
  ``repro.native._repro_native`` in place when cffi and a C compiler are
  available (and cleanly skips the extension otherwise — see setup.py).
* :mod:`repro.native.loader` imports :data:`ffibuilder` to compile the
  extension on first use into a content-addressed cache directory when
  no prebuilt module is importable.

Keeping the C in standalone ``repro_kernels.c``/``.h`` files (rather
than an inline source string) keeps the hot loops readable and lets the
loader fingerprint exactly what it compiles.
"""

from __future__ import annotations

import os

from cffi import FFI

HERE = os.path.dirname(os.path.abspath(__file__))

#: Declarations mirrored from repro_kernels.h — cffi parses these, so
#: they must stay a plain-C subset (no preprocessor, no comments needed).
CDEF = """
void repro_correlated_scan(const double *draws, int64_t rows, int64_t cols,
                           const double *table, int64_t n_terms,
                           uint8_t *flips);
void repro_grt_bytes(const uint8_t *voters, int64_t upsilon,
                     int64_t plane_bytes, uint8_t *out);
void repro_unanimous_bytes(const uint8_t *voters, int64_t upsilon,
                           int64_t plane_bytes, uint8_t *out);
void repro_to_bit_planes(const uint8_t *words, int64_t n_words,
                         int32_t nbits, uint8_t *planes);
void repro_from_bit_planes(const uint8_t *planes, int64_t n_words,
                           int32_t nbits, uint8_t *words);
void repro_majority_window(const uint8_t *frames, int64_t n,
                           int64_t frame_bytes, int32_t window,
                           uint8_t *out);
void repro_weighted_smooth_f64(const double *padded, int64_t n,
                               int64_t frame_len, const double *weights,
                               int32_t window, double wsum, double *out);
"""


def _compile_args() -> list[str]:
    if os.name == "nt":
        # MSVC does not contract FP by default; /O2 is the usual opt level.
        return ["/O2"]
    # -ffp-contract=off is part of the bit-identity contract: the NumPy
    # tier rounds after every multiply and add, so FMA fusion in the
    # weighted smoother would produce differently-rounded floats.
    return ["-O3", "-std=c99", "-ffp-contract=off"]


ffibuilder = FFI()
ffibuilder.cdef(CDEF)
ffibuilder.set_source(
    "repro.native._repro_native",
    '#include "repro_kernels.h"',
    sources=[os.path.join(HERE, "repro_kernels.c")],
    include_dirs=[HERE],
    extra_compile_args=_compile_args(),
)


if __name__ == "__main__":
    # `make native`: compile in a scratch directory and publish only the
    # finished extension next to this file, leaving no .o/.c litter.
    import shutil
    import tempfile

    staging = tempfile.mkdtemp(prefix="repro-native-build-")
    try:
        built = ffibuilder.compile(tmpdir=staging, verbose=True)
        target = os.path.join(HERE, os.path.basename(built))
        shutil.copyfile(built, target + ".tmp")
        os.replace(target + ".tmp", target)
        print(f"built {target}")
    finally:
        shutil.rmtree(staging, ignore_errors=True)
