"""``repro kernels`` — diagnostics for the native kernel tier.

Reports, per dispatched kernel, the tier it would run on right now,
plus the global picture: the requested ``REPRO_KERNEL_TIER``, whether
the compiled extension loaded (and from where), whether a C compiler is
on PATH, and the first-use build cache location.  ``--json`` emits the
same facts machine-readably; ``--require TIER`` turns the report into a
gate (exit 1 unless every kernel resolves to TIER) for CI jobs that
must not silently fall back.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.native import dispatch, loader


def load_all_kernels() -> None:
    """Import every module that registers dispatched kernels."""
    import repro.baselines.majority  # noqa: F401
    import repro.baselines.smoothing  # noqa: F401
    import repro.core.bitops  # noqa: F401
    import repro.core.voter  # noqa: F401
    import repro.faults.correlated  # noqa: F401


def status() -> dict:
    """The full diagnostic picture as one JSON-ready dict."""
    load_all_kernels()
    registry = dispatch.kernels()
    return {
        "requested_tier": dispatch.configured_tier(),
        "effective_tier": dispatch.get_kernel_tier(),
        "native_available": loader.available(),
        "native_origin": loader.origin(),
        "native_unavailable_reason": loader.unavailable_reason(),
        "compiler_available": loader.compiler_available(),
        "build_cache": str(loader.cache_root()),
        "kernels": {
            name: {
                "tier": dispatch.resolve(name),
                "has_native_impl": registry[name].native_impl is not None,
                "has_accepts_predicate": registry[name].accepts is not None,
            }
            for name in sorted(registry)
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro kernels",
        description="Show which tier (native / numpy / reference) each "
        "dispatched kernel resolves to, and why.",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--require",
        metavar="TIER",
        choices=dispatch.TIERS,
        help="exit 1 unless every kernel resolves to TIER (CI gate; "
        "kernels with per-call accepts predicates can still demote "
        "individual calls)",
    )
    args = parser.parse_args(argv)

    info = status()
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(f"requested tier     : {info['requested_tier']}")
        print(f"effective tier     : {info['effective_tier']}")
        print(f"native extension   : {'loaded' if info['native_available'] else 'unavailable'}")
        if info["native_origin"]:
            print(f"  origin           : {info['native_origin']}")
        if info["native_unavailable_reason"]:
            print(f"  reason           : {info['native_unavailable_reason']}")
        print(f"compiler on PATH   : {'yes' if info['compiler_available'] else 'no'}")
        print(f"build cache        : {info['build_cache']}")
        print()
        width = max(len(name) for name in info["kernels"])
        for name, entry in info["kernels"].items():
            note = "" if entry["has_native_impl"] else "  (no native impl)"
            print(f"  {name:<{width}}  ->  {entry['tier']}{note}")

    if args.require:
        offenders = [
            name
            for name, entry in info["kernels"].items()
            if entry["tier"] != args.require
        ]
        if offenders:
            print(
                f"--require {args.require} failed for: {', '.join(offenders)}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
