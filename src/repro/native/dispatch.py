"""Kernel-tier dispatch: native → NumPy-vectorized → ``_reference_*``.

Every hot-path kernel registers its implementations here; call sites go
through :func:`call`, which picks the tier per invocation:

* ``REPRO_KERNEL_TIER`` environment variable, overridden by the
  programmatic knob :func:`set_kernel_tier` (the config surface for
  embedding applications), selects ``auto`` (default), ``native``,
  ``numpy`` or ``reference``.
* ``auto`` and ``native`` use the compiled tier when the extension
  loads (building it on first use — see :mod:`repro.native.loader`)
  *and* the kernel's ``accepts`` predicate admits the arguments;
  otherwise they fall back to the NumPy tier, so pure-NumPy
  environments and unsupported argument shapes are transparently
  served.  ``reference`` runs the in-tree oracles — the ground truth
  the other tiers are property-tested against.

The three tiers of one kernel are bit-identical by contract
(``tests/core/test_kernel_equivalence.py``), so tier selection is a
pure performance decision and every entry point — campaigns, streams,
the serve layer, cache fusion — inherits it without code changes.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.native import loader

#: Recognised tier names, ordered fastest first.
TIERS = ("native", "numpy", "reference")

#: Environment variable holding the requested tier.
ENV_VAR = "REPRO_KERNEL_TIER"

_override: str | None = None
_override_lock = threading.Lock()
_warned_native_missing = False


@dataclass(frozen=True)
class Kernel:
    """One dispatchable kernel: its tiers and the native admission test."""

    name: str
    numpy_impl: Callable
    reference_impl: Callable
    native_impl: Callable | None = None
    #: Optional predicate over the call arguments; False sends the call
    #: to the NumPy tier (e.g. window widths the C counter cannot hold).
    accepts: Callable[..., bool] | None = None

    def admits(self, *args, **kwargs) -> bool:
        if self.native_impl is None:
            return False
        if self.accepts is not None and not self.accepts(*args, **kwargs):
            return False
        return True


_REGISTRY: dict[str, Kernel] = {}


def register(
    name: str,
    *,
    numpy_impl: Callable,
    reference_impl: Callable,
    native_impl: Callable | None = None,
    accepts: Callable[..., bool] | None = None,
) -> None:
    """Register (or re-register) a kernel's tier implementations."""
    _REGISTRY[name] = Kernel(name, numpy_impl, reference_impl, native_impl, accepts)


def kernels() -> dict[str, Kernel]:
    """The registered kernels, keyed by name (import side effect: none —
    callers wanting the full set should import the registering modules;
    :func:`repro.native.cli.load_all_kernels` does exactly that)."""
    return dict(_REGISTRY)


def configured_tier() -> str:
    """The requested tier: programmatic override, else env var, else auto."""
    if _override is not None:
        return _override
    raw = os.environ.get(ENV_VAR, "auto").strip().lower()
    return raw or "auto"


def _validate_tier(tier: str) -> str:
    tier = tier.strip().lower()
    if tier not in TIERS + ("auto",):
        raise ConfigurationError(
            f"unknown kernel tier {tier!r}; expected one of "
            f"{('auto',) + TIERS}"
        )
    return tier


def set_kernel_tier(tier: str | None) -> None:
    """Programmatic tier knob; ``None`` restores env-var/auto selection."""
    global _override
    with _override_lock:
        _override = None if tier is None else _validate_tier(tier)


def get_kernel_tier() -> str:
    """The validated tier currently in effect."""
    return _validate_tier(configured_tier())


@contextmanager
def kernel_tier(tier: str | None):
    """Temporarily pin the tier (benchmarks and the property suite)."""
    global _override
    previous = _override
    set_kernel_tier(tier)
    try:
        yield
    finally:
        with _override_lock:
            _override = previous


def _native_usable(explicit: bool) -> bool:
    global _warned_native_missing
    if loader.available():
        return True
    if explicit and not _warned_native_missing:
        warnings.warn(
            "REPRO_KERNEL_TIER=native requested but the compiled extension "
            f"is unavailable ({loader.unavailable_reason()}); falling back "
            "to the NumPy tier",
            RuntimeWarning,
            stacklevel=3,
        )
        _warned_native_missing = True
    return False


def call(name: str, *args, **kwargs):
    """Run kernel *name* on the currently selected tier."""
    kernel = _REGISTRY[name]
    tier = get_kernel_tier()
    if tier == "reference":
        return kernel.reference_impl(*args, **kwargs)
    if tier in ("auto", "native"):
        if kernel.admits(*args, **kwargs) and _native_usable(tier == "native"):
            return kernel.native_impl(*args, **kwargs)
    return kernel.numpy_impl(*args, **kwargs)


def resolve(name: str) -> str:
    """The tier kernel *name* would run on right now (argument-independent
    part only: an ``accepts`` predicate can still demote single calls)."""
    kernel = _REGISTRY[name]
    tier = get_kernel_tier()
    if tier == "reference":
        return "reference"
    if tier in ("auto", "native") and kernel.native_impl is not None:
        if loader.available():
            return "native"
    return "numpy"
