"""NumPy ⇄ C marshalling for the native kernel tier.

Each wrapper here is the ``native_impl`` of one dispatched kernel: it
normalises the arrays the Python call sites hand over (contiguity,
little-endian word layout, float64 padding) exactly the way the NumPy
tier does, calls the corresponding ``repro_*`` C function, and shapes
the result back.  Validation of user input stays in the owning modules
(``repro.core.bitops``, ``repro.core.voter``, …) so every tier shares
one error surface.

cffi releases the GIL for the duration of every C call, so these
kernels overlap across :class:`~repro.runtime.ThreadPoolBackend`
worker threads — the property that lets threaded shard execution and
the serve layer scale past the interpreter lock.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.native import loader

#: The C word kernels assume little-endian byte layout inside each word.
_LITTLE = sys.byteorder == "little"


def _lib():
    loaded = loader.load()
    assert loaded is not None, "native kernel called while extension missing"
    return loaded


def _in(ffi, ctype: str, arr: np.ndarray):
    if arr.size == 0:
        return ffi.NULL
    return ffi.cast(ctype, ffi.from_buffer(arr))


def _out(ffi, ctype: str, arr: np.ndarray):
    if arr.size == 0:
        return ffi.NULL
    return ffi.cast(ctype, ffi.from_buffer(arr, require_writable=True))


# ---------------------------------------------------------------------------
# correlated fault grid
# ---------------------------------------------------------------------------


def correlated_scan(draws: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Raster-scan the Eq. (2) flip grid from pre-drawn uniforms."""
    ffi, lib = _lib()
    draws = np.ascontiguousarray(draws, dtype=np.float64)
    table = np.ascontiguousarray(table, dtype=np.float64)
    rows, cols = draws.shape
    flips = np.empty((rows, cols), dtype=np.bool_)
    lib.repro_correlated_scan(
        _in(ffi, "double *", draws),
        rows,
        cols,
        _in(ffi, "double *", table),
        table.size,
        _out(ffi, "uint8_t *", flips),
    )
    return flips


# ---------------------------------------------------------------------------
# voter combiners (bytewise — any unsigned word width)
# ---------------------------------------------------------------------------


def grt(voters: np.ndarray) -> np.ndarray:
    """Union of leave-one-out ANDs over axis 0 (Υ >= 3)."""
    ffi, lib = _lib()
    voters = np.ascontiguousarray(voters)
    out = np.empty(voters.shape[1:], dtype=voters.dtype)
    if out.nbytes == 0:
        return out
    lib.repro_grt_bytes(
        _in(ffi, "uint8_t *", voters),
        voters.shape[0],
        out.nbytes,
        _out(ffi, "uint8_t *", out),
    )
    return out


def unanimous(voters: np.ndarray) -> np.ndarray:
    """Bitwise AND over axis 0."""
    ffi, lib = _lib()
    voters = np.ascontiguousarray(voters)
    out = np.empty(voters.shape[1:], dtype=voters.dtype)
    if out.nbytes == 0:
        return out
    lib.repro_unanimous_bytes(
        _in(ffi, "uint8_t *", voters),
        voters.shape[0],
        out.nbytes,
        _out(ffi, "uint8_t *", out),
    )
    return out


# ---------------------------------------------------------------------------
# bit-plane transforms
# ---------------------------------------------------------------------------


def words_native_ok(arr: np.ndarray, *_args, **_kwargs) -> bool:
    """Word kernels need a little-endian host (x86/arm — everywhere)."""
    return _LITTLE


def to_bit_planes(arr: np.ndarray) -> np.ndarray:
    nbits = arr.dtype.itemsize * 8
    ffi, lib = _lib()
    little = np.ascontiguousarray(arr, dtype=arr.dtype.newbyteorder("<")).reshape(-1)
    planes = np.empty((nbits, little.size), dtype=np.uint8)
    if little.size == 0:
        return planes.reshape((nbits,) + arr.shape)
    lib.repro_to_bit_planes(
        _in(ffi, "uint8_t *", little),
        little.size,
        nbits,
        _out(ffi, "uint8_t *", planes),
    )
    return planes.reshape((nbits,) + arr.shape)


def from_bit_planes(planes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    dtype = np.dtype(dtype)
    nbits = dtype.itemsize * 8
    ffi, lib = _lib()
    flat = np.ascontiguousarray(planes, dtype=np.uint8).reshape(nbits, -1)
    out = np.empty(flat.shape[1], dtype=dtype)
    if flat.shape[1] == 0:
        return out.reshape(planes.shape[1:])
    lib.repro_from_bit_planes(
        _in(ffi, "uint8_t *", flat),
        flat.shape[1],
        nbits,
        _out(ffi, "uint8_t *", out),
    )
    return out.reshape(planes.shape[1:])


# ---------------------------------------------------------------------------
# sliding-window smoothers
# ---------------------------------------------------------------------------


def majority_window_ok(pixels: np.ndarray, window: int = 3) -> bool:
    """The C bit-sliced counter holds counts up to 15."""
    return _LITTLE and window <= 15


def majority_vote_window(pixels: np.ndarray, window: int = 3) -> np.ndarray:
    ffi, lib = _lib()
    frames = np.ascontiguousarray(
        pixels, dtype=pixels.dtype.newbyteorder("<")
    )
    n = frames.shape[0]
    frame_bytes = frames.nbytes // n if n else 0
    out = np.empty(frames.shape, dtype=pixels.dtype)
    if out.nbytes == 0:
        return out
    lib.repro_majority_window(
        _in(ffi, "uint8_t *", frames),
        n,
        frame_bytes,
        window,
        _out(ffi, "uint8_t *", out),
    )
    return out


def weighted_smooth_ok(pixels: np.ndarray, weights: np.ndarray) -> bool:
    """uint64 output needs NumPy's exact float→word cast; defer to it."""
    return pixels.dtype != np.uint64


def weighted_window_smooth(pixels: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Accumulate+divide in C; the dtype finishing (rint/clip/cast) is
    shared with the NumPy tier via the caller."""
    ffi, lib = _lib()
    n = pixels.shape[0]
    window = len(weights)
    half = window // 2
    pad = [(half, half)] + [(0, 0)] * (pixels.ndim - 1)
    padded = np.ascontiguousarray(
        np.pad(pixels.astype(np.float64), pad, mode="edge")
    )
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    frame_len = int(np.prod(pixels.shape[1:], dtype=np.int64)) if pixels.ndim > 1 else 1
    out = np.empty(pixels.shape, dtype=np.float64)
    if out.size == 0:
        return out
    lib.repro_weighted_smooth_f64(
        _in(ffi, "double *", padded),
        n,
        frame_len,
        _in(ffi, "double *", weights),
        window,
        float(weights.sum()),
        _out(ffi, "double *", out),
    )
    return out
