"""Locate, build and load the native kernel extension — never fatally.

Resolution order:

1. A prebuilt ``repro.native._repro_native`` extension (produced by
   ``pip install .`` with cffi + a compiler, or ``make native``).
2. A first-use cffi compile into a content-addressed cache directory
   (``REPRO_NATIVE_CACHE``, default ``~/.cache/repro-native``): the C
   source, cdef and interpreter tag are hashed, so a cache hit loads in
   milliseconds and any source change triggers exactly one rebuild.
3. Graceful failure: the reason is recorded for ``repro kernels`` and
   every kernel silently resolves to the NumPy tier.

Everything here is wrapped so that a missing cffi, a missing compiler,
a read-only filesystem or a failed build can never break an import or a
kernel call — pure-NumPy environments remain fully functional.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import sys
import sysconfig
import tempfile
import threading
from pathlib import Path

#: Module-level singleton state; guarded by :data:`_LOCK` so concurrent
#: first calls (thread-pool shards) trigger at most one build attempt.
_LOCK = threading.Lock()
_ATTEMPTED = False
_LIB = None
_FFI = None
_ERROR: str | None = None
_ORIGIN: str | None = None


def _source_fingerprint() -> str:
    """Hash of everything that determines the compiled artifact."""
    here = Path(__file__).parent
    h = hashlib.sha256()
    for name in ("repro_kernels.c", "repro_kernels.h", "_build.py"):
        h.update(name.encode())
        h.update((here / name).read_bytes())
    h.update(sys.implementation.cache_tag.encode())
    h.update((sysconfig.get_platform() or "").encode())
    return h.hexdigest()[:16]


def cache_root() -> Path:
    """Directory holding first-use builds (override: REPRO_NATIVE_CACHE)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-native"


def compiler_available() -> bool:
    """Best-effort probe for a usable C compiler on PATH."""
    if os.name == "nt":
        candidates = ("cl", "gcc", "clang")
    else:
        cc = (sysconfig.get_config_var("CC") or "").split()
        candidates = tuple(cc[:1]) + ("cc", "gcc", "clang")
    return any(shutil.which(c) for c in candidates if c)


def _find_built(module_dir: Path) -> Path | None:
    if not module_dir.is_dir():
        return None
    for candidate in sorted(module_dir.glob("_repro_native*")):
        if candidate.suffix in (".so", ".pyd") or ".so." in candidate.name:
            return candidate
    return None


def _load_extension(path: Path):
    spec = importlib.util.spec_from_file_location(
        "repro.native._repro_native", str(path)
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load extension from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    sys.modules["repro.native._repro_native"] = module
    return module


def _jit_build() -> tuple[object, str]:
    """Compile (or reuse) the cached first-use build; returns (module, origin)."""
    from repro.native._build import ffibuilder  # imports cffi

    fingerprint = _source_fingerprint()
    final_dir = cache_root() / fingerprint / "repro" / "native"
    built = _find_built(final_dir)
    if built is None:
        if not compiler_available():
            raise RuntimeError("no C compiler found on PATH")
        staging = Path(
            tempfile.mkdtemp(prefix=f"build-{fingerprint}-", dir=_ensure_root())
        )
        try:
            ffibuilder.compile(tmpdir=str(staging), verbose=False)
            built_staging = _find_built(staging / "repro" / "native")
            if built_staging is None:
                raise RuntimeError("cffi compile produced no extension module")
            final_dir.mkdir(parents=True, exist_ok=True)
            target = final_dir / built_staging.name
            # Atomic publication: a concurrent process either sees the
            # finished module or builds its own staging copy.
            os.replace(built_staging, target)
            built = target
        finally:
            shutil.rmtree(staging, ignore_errors=True)
    return _load_extension(built), f"first-use build cache ({built})"


def _ensure_root() -> Path:
    root = cache_root()
    root.mkdir(parents=True, exist_ok=True)
    return root


def load():
    """Return ``(ffi, lib)`` for the native extension, or ``None``.

    The first call may compile the extension; subsequent calls are a
    cached attribute read whatever the outcome.
    """
    global _ATTEMPTED, _LIB, _FFI, _ERROR, _ORIGIN
    if _ATTEMPTED:
        return (_FFI, _LIB) if _LIB is not None else None
    with _LOCK:
        if _ATTEMPTED:
            return (_FFI, _LIB) if _LIB is not None else None
        module = None
        try:
            from repro.native import _repro_native as module  # type: ignore

            _ORIGIN = f"prebuilt extension ({module.__file__})"
        except ImportError:
            try:
                module, _ORIGIN = _jit_build()
            except Exception as exc:  # missing cffi/compiler, bad cache, ...
                _ERROR = f"{type(exc).__name__}: {exc}"
                _ORIGIN = None
        if module is not None:
            _FFI = module.ffi
            _LIB = module.lib
        _ATTEMPTED = True
    return (_FFI, _LIB) if _LIB is not None else None


def available() -> bool:
    """True when the native extension is importable (building if needed)."""
    return load() is not None


def unavailable_reason() -> str | None:
    """Why the native tier is missing (None when it loaded fine)."""
    load()
    return _ERROR


def origin() -> str | None:
    """Where the loaded extension came from (prebuilt vs build cache)."""
    load()
    return _ORIGIN


def reset_for_tests() -> None:
    """Forget the cached load outcome (test hook only)."""
    global _ATTEMPTED, _LIB, _FFI, _ERROR, _ORIGIN
    with _LOCK:
        _ATTEMPTED = False
        _LIB = None
        _FFI = None
        _ERROR = None
        _ORIGIN = None
