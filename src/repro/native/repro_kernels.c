/* Native kernel tier — see repro_kernels.h for the contracts. */

#include "repro_kernels.h"

#include <stdlib.h>
#include <string.h>

/* Cache-friendly block length (bytes / words) for the plane kernels:
 * small enough that a block of every operand stays in L1 across the
 * inner passes, large enough to amortise the loop overhead. */
#define REPRO_BLOCK 8192

void repro_correlated_scan(const double *draws, int64_t rows, int64_t cols,
                           const double *table, int64_t n_terms,
                           uint8_t *flips)
{
    const int64_t max_run = n_terms - 1;
    const double gamma0 = table[0];
    const double limit = table[n_terms - 1];
    /* Run lengths are maintained incrementally: `hrun` is the count of
     * flipped cells immediately left of the cursor, `vrun[c]` the count
     * immediately above in column c.  One raster pass is exact because
     * each cell's runs depend only on strictly earlier raster cells. */
    int64_t *vrun = (int64_t *)calloc((size_t)cols, sizeof(int64_t));
    if (vrun == NULL) {
        /* Out of memory on a bookkeeping array: leave the grid in the
         * draw<gamma0 seed state is NOT acceptable (silent corruption),
         * so fall back to a zero-extra-memory variant that re-walks the
         * vertical run per cell.  Exponentially rare in practice. */
        for (int64_t r = 0; r < rows; r++) {
            int64_t hrun = 0;
            for (int64_t c = 0; c < cols; c++) {
                const double d = draws[r * cols + c];
                int flip;
                if (d < gamma0) {
                    flip = 1;
                } else if (d >= limit) {
                    flip = 0;
                } else {
                    int64_t vr = 0;
                    while (vr < max_run && r - 1 - vr >= 0 &&
                           flips[(r - 1 - vr) * cols + c])
                        vr++;
                    int64_t run = hrun > vr ? hrun : vr;
                    if (run > max_run)
                        run = max_run;
                    flip = d < table[run];
                }
                flips[r * cols + c] = (uint8_t)flip;
                hrun = flip ? hrun + 1 : 0;
            }
        }
        return;
    }
    for (int64_t r = 0; r < rows; r++) {
        const double *drow = draws + r * cols;
        uint8_t *frow = flips + r * cols;
        int64_t hrun = 0;
        for (int64_t c = 0; c < cols; c++) {
            const double d = drow[c];
            int flip;
            if (d < gamma0) {
                flip = 1;
            } else if (d >= limit) {
                flip = 0;
            } else {
                int64_t run = hrun > vrun[c] ? hrun : vrun[c];
                if (run > max_run)
                    run = max_run;
                flip = d < table[run];
            }
            frow[c] = (uint8_t)flip;
            if (flip) {
                hrun += 1;
                vrun[c] += 1;
            } else {
                hrun = 0;
                vrun[c] = 0;
            }
        }
    }
    free(vrun);
}

void repro_grt_bytes(const uint8_t *voters, int64_t upsilon,
                     int64_t plane_bytes, uint8_t *out)
{
    /* Two-level saturating zero counter, identical in structure to the
     * NumPy tier: zero1 marks bits cleared by >= 1 voter, zero2 bits
     * cleared by >= 2; a bit survives a leave-one-out AND exactly when
     * at most one voter clears it.  Blocked so the accumulators live in
     * L1 while every voter plane streams through once. */
    uint8_t zero1[REPRO_BLOCK];
    uint8_t zero2[REPRO_BLOCK];
    for (int64_t start = 0; start < plane_bytes; start += REPRO_BLOCK) {
        const int64_t len = plane_bytes - start < REPRO_BLOCK
                                ? plane_bytes - start
                                : REPRO_BLOCK;
        const uint8_t *v0 = voters + start;
        for (int64_t i = 0; i < len; i++) {
            zero1[i] = (uint8_t)~v0[i];
            zero2[i] = 0;
        }
        for (int64_t k = 1; k < upsilon; k++) {
            const uint8_t *v = voters + k * plane_bytes + start;
            for (int64_t i = 0; i < len; i++) {
                const uint8_t cleared = (uint8_t)~v[i];
                zero2[i] |= (uint8_t)(zero1[i] & cleared);
                zero1[i] |= cleared;
            }
        }
        for (int64_t i = 0; i < len; i++)
            out[start + i] = (uint8_t)~zero2[i];
    }
}

void repro_unanimous_bytes(const uint8_t *voters, int64_t upsilon,
                           int64_t plane_bytes, uint8_t *out)
{
    memcpy(out, voters, (size_t)plane_bytes);
    for (int64_t k = 1; k < upsilon; k++) {
        const uint8_t *v = voters + k * plane_bytes;
        for (int64_t i = 0; i < plane_bytes; i++)
            out[i] &= v[i];
    }
}

/* Word block length for the bit-plane transforms: the de-interleaved
 * byte columns of a block (nbytes * 4096 bytes, <= 32 KiB for uint64)
 * stay cache-resident across the per-plane passes. */
#define REPRO_PLANE_BLOCK 4096

void repro_to_bit_planes(const uint8_t *words, int64_t n_words,
                         int32_t nbits, uint8_t *planes)
{
    const int32_t nbytes = nbits / 8;
    /* Strided byte access defeats vectorisation, so each block is
     * de-interleaved into contiguous per-byte columns once; every plane
     * extraction is then a contiguous shift-and-mask pass that the
     * compiler turns into SIMD. */
    uint8_t cols[8][REPRO_PLANE_BLOCK];
    for (int64_t start = 0; start < n_words; start += REPRO_PLANE_BLOCK) {
        const int64_t len = n_words - start < REPRO_PLANE_BLOCK
                                ? n_words - start
                                : REPRO_PLANE_BLOCK;
        const uint8_t *base = words + start * nbytes;
        for (int32_t b = 0; b < nbytes; b++) {
            uint8_t *col = cols[b];
            for (int64_t i = 0; i < len; i++)
                col[i] = base[i * nbytes + b];
        }
        for (int32_t j = 0; j < nbits; j++) {
            const int32_t pos = nbits - 1 - j;
            const uint8_t *col = cols[pos >> 3];
            const int32_t shift = pos & 7;
            uint8_t *dst = planes + (int64_t)j * n_words + start;
            for (int64_t i = 0; i < len; i++)
                dst[i] = (uint8_t)((col[i] >> shift) & 1);
        }
    }
}

void repro_from_bit_planes(const uint8_t *planes, int64_t n_words,
                           int32_t nbits, uint8_t *words)
{
    const int32_t nbytes = nbits / 8;
    uint8_t cols[8][REPRO_PLANE_BLOCK];
    for (int64_t start = 0; start < n_words; start += REPRO_PLANE_BLOCK) {
        const int64_t len = n_words - start < REPRO_PLANE_BLOCK
                                ? n_words - start
                                : REPRO_PLANE_BLOCK;
        memset(cols, 0, sizeof(cols[0]) * (size_t)nbytes);
        for (int32_t j = 0; j < nbits; j++) {
            const int32_t pos = nbits - 1 - j;
            const uint8_t *src = planes + (int64_t)j * n_words + start;
            uint8_t *col = cols[pos >> 3];
            const int32_t shift = pos & 7;
            for (int64_t i = 0; i < len; i++)
                col[i] |= (uint8_t)((src[i] & 1) << shift);
        }
        uint8_t *base = words + start * nbytes;
        for (int32_t b = 0; b < nbytes; b++) {
            const uint8_t *col = cols[b];
            for (int64_t i = 0; i < len; i++)
                base[i * nbytes + b] = col[i];
        }
    }
}

/* Bit-sliced addition of one 64-lane operand into a 4-level counter. */
static inline void counter_add(uint64_t c[4], uint64_t x)
{
    for (int l = 0; l < 4; l++) {
        const uint64_t t = c[l] & x;
        c[l] ^= x;
        x = t;
    }
}

/* Lanes where the 4-bit counter value exceeds `half` (MSB-first compare
 * against the constant). */
static inline uint64_t counter_gt(const uint64_t c[4], int32_t half)
{
    uint64_t gt = 0;
    uint64_t eq = ~(uint64_t)0;
    for (int l = 3; l >= 0; l--) {
        const uint64_t hb = ((half >> l) & 1) ? ~(uint64_t)0 : 0;
        gt |= eq & c[l] & ~hb;
        eq &= ~(c[l] ^ hb);
    }
    return gt;
}

void repro_majority_window(const uint8_t *frames, int64_t n,
                           int64_t frame_bytes, int32_t window,
                           uint8_t *out)
{
    const int32_t half = window / 2;
    for (int64_t i = 0; i < n; i++) {
        uint8_t *orow = out + i * frame_bytes;
        int64_t b = 0;
        for (; b + 8 <= frame_bytes; b += 8) {
            uint64_t c[4] = {0, 0, 0, 0};
            for (int32_t k = 0; k < window; k++) {
                int64_t idx = i + k - half;
                if (idx < 0)
                    idx = 0;
                else if (idx > n - 1)
                    idx = n - 1;
                uint64_t v;
                memcpy(&v, frames + idx * frame_bytes + b, 8);
                counter_add(c, v);
            }
            const uint64_t m = counter_gt(c, half);
            memcpy(orow + b, &m, 8);
        }
        for (; b < frame_bytes; b++) {
            uint64_t c[4] = {0, 0, 0, 0};
            for (int32_t k = 0; k < window; k++) {
                int64_t idx = i + k - half;
                if (idx < 0)
                    idx = 0;
                else if (idx > n - 1)
                    idx = n - 1;
                counter_add(c, (uint64_t)frames[idx * frame_bytes + b]);
            }
            orow[b] = (uint8_t)counter_gt(c, half);
        }
    }
}

void repro_weighted_smooth_f64(const double *padded, int64_t n,
                               int64_t frame_len, const double *weights,
                               int32_t window, double wsum, double *out)
{
    for (int64_t i = 0; i < n; i++) {
        const double *base = padded + i * frame_len;
        double *o = out + i * frame_len;
        for (int64_t e = 0; e < frame_len; e++) {
            double acc = 0.0;
            /* Tap order matches the NumPy tier's per-tap accumulation;
             * -ffp-contract=off keeps the multiply and add distinct so
             * every intermediate rounding agrees. */
            for (int32_t k = 0; k < window; k++)
                acc += weights[k] * base[(int64_t)k * frame_len + e];
            o[e] = acc / wsum;
        }
    }
}
