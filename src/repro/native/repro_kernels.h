/* Native kernel tier for the repro preprocessing library.
 *
 * Every function here is a drop-in replacement for one NumPy-vectorized
 * hot-path kernel and is bound by the same contract as the NumPy tier:
 * byte-for-byte identity with the in-tree `_reference_*` oracle on every
 * input the Python wrappers admit.  The wrappers in
 * `repro/native/kernels.py` own all validation, dtype normalisation and
 * memory layout; these functions assume contiguous buffers, little-endian
 * word layout, and pre-checked shapes.
 *
 * All functions are pure C99 with no Python dependency so the cffi
 * API-mode build can compile them with any hosted toolchain; cffi
 * releases the GIL around every call, which is what lets ThreadPoolBackend
 * shards overlap on multi-core hosts.
 */

#ifndef REPRO_KERNELS_H
#define REPRO_KERNELS_H

#include <stdint.h>

/* Eq. (2) run-correlated flip grid: raster scan over pre-drawn uniforms.
 *
 * `draws` is the rows*cols row-major array of uniform [0, 1) draws,
 * `table` the cumulative Eq. (2) probability table (n_terms entries,
 * strictly increasing), `flips` the rows*cols output written as 0/1
 * bytes.  Semantics match `_reference_scan`: a cell flips when its draw
 * is below table[min(run, n_terms - 1)] where run is the longer of the
 * horizontal/vertical runs of already-flipped immediate predecessors.
 */
void repro_correlated_scan(const double *draws, int64_t rows, int64_t cols,
                           const double *table, int64_t n_terms,
                           uint8_t *flips);

/* GRT combiner (union of leave-one-out ANDs) over `upsilon` bit planes.
 *
 * `voters` holds upsilon contiguous planes of plane_bytes raw bytes each
 * (any unsigned word width — the combiner is bytewise).  Requires
 * upsilon >= 3; the Υ = 2 unanimity degeneration stays in Python.
 */
void repro_grt_bytes(const uint8_t *voters, int64_t upsilon,
                     int64_t plane_bytes, uint8_t *out);

/* Per-bit AND over `upsilon` planes (the Ξ unanimity combiner). */
void repro_unanimous_bytes(const uint8_t *voters, int64_t upsilon,
                           int64_t plane_bytes, uint8_t *out);

/* Bit-plane decomposition: n_words little-endian words of width nbits
 * (8/16/32/64) into nbits planes of 0/1 bytes; plane j holds bit
 * (nbits - 1 - j), i.e. plane 0 is the MSB, matching the paper's
 * P(i, j) convention.
 */
void repro_to_bit_planes(const uint8_t *words, int64_t n_words,
                         int32_t nbits, uint8_t *planes);

/* Inverse of repro_to_bit_planes for 0/1 planes. */
void repro_from_bit_planes(const uint8_t *planes, int64_t n_words,
                           int32_t nbits, uint8_t *words);

/* Sliding-window bitwise majority along axis 0 with clamped (edge-pad)
 * indices: n frames of frame_bytes bytes each, odd window in [3, 15].
 * Counting is bit-sliced (a 4-level ripple counter over 64-bit lanes),
 * so one pass covers 64 bit positions at a time.
 */
void repro_majority_window(const uint8_t *frames, int64_t n,
                           int64_t frame_bytes, int32_t window,
                           uint8_t *out);

/* Centred weighted window along axis 0 of an edge-padded float64 stack.
 *
 * `padded` holds n + window - 1 frames of frame_len doubles; output
 * frame i accumulates weights[k] * padded[i + k] in tap order (the same
 * per-element addition order as the NumPy tier — float addition is not
 * associative, and the compile flags forbid FMA contraction, so the
 * result is bit-identical) and divides by wsum.
 */
void repro_weighted_smooth_f64(const double *padded, int64_t n,
                               int64_t frame_len, const double *weights,
                               int32_t window, double wsum, double *out);

#endif /* REPRO_KERNELS_H */
