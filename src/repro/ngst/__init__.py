"""The NGST application substrate (§2).

The Next Generation Space Telescope data-processing benchmark: multiple
non-destructive readouts per 1000-second baseline are compared and
integrated onboard to reject cosmic-ray hits, then Rice-compressed for
the bandwidth-limited downlink.  This subpackage implements that data
path end to end:

* :mod:`repro.ngst.ramp` — the accumulating-readout detector model;
* :mod:`repro.ngst.cosmic_rays` — CR hit injection and ramp-fit
  rejection (the paper's refs. [10–12]);
* :mod:`repro.ngst.rice` — the Rice entropy codec used for downlink;
* :mod:`repro.ngst.fragment` — 1024²→128² fragmentation / reassembly;
* :mod:`repro.ngst.cluster` — the master/worker pipeline of Figure 1 on
  the :mod:`repro.sim` discrete-event substrate.
"""

from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline, PipelineReport
from repro.ngst.cosmic_rays import (
    CosmicRayModel,
    reject_cosmic_rays,
    reject_cosmic_rays_segmented,
)
from repro.ngst.downlink import ARQDownlink, DownlinkConfig, DownlinkReport, crc16
from repro.ngst.fragment import fragment_stack, reassemble
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_decode, rice_encode

__all__ = [
    "ARQDownlink",
    "CRRejectionPipeline",
    "ClusterConfig",
    "CosmicRayModel",
    "DownlinkConfig",
    "DownlinkReport",
    "PipelineReport",
    "RampModel",
    "crc16",
    "fragment_stack",
    "reassemble",
    "reject_cosmic_rays",
    "reject_cosmic_rays_segmented",
    "rice_decode",
    "rice_encode",
]
