"""The Figure 1 master/worker CR-rejection pipeline on the DES substrate.

One master node fragments each baseline's readout stack into 128×128
segments and distributes them to the slave nodes over the network.
Each slave optionally *preprocesses* its fragment (the paper's scheme —
run in the slaves' slack CPU time), rejects cosmic rays by ramp
fitting, and returns the integrated segment.  The master reassembles
the frame and Rice-compresses it for downlink.

The pipeline performs the real computation (so output quality can be
measured) while the discrete-event simulator accounts for time: service
times follow calibrated per-byte models and the preprocessing pass adds
a sensitivity-dependent work factor, reproducing the Figure 3 overhead
behaviour at cluster scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.preprocessor import NGSTPreprocessor
from repro.exceptions import ConfigurationError, SimulationError
from repro.ngst.cosmic_rays import reject_cosmic_rays, reject_cosmic_rays_segmented
from repro.ngst.fragment import Fragment, fragment_stack, reassemble
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_encode
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import Node, ProcessingModel


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and service-time calibration.

    Attributes:
        n_slaves: worker count (the STSci estimate is a 16-processor
            system: one master + 15 slaves by default).
        tile: fragment side length.
        cr_model: service-time model of the CR-rejection work per byte.
        preprocess_base_overhead: service-time multiplier contribution of
            a Λ→0⁺ preprocessing pass (header sanity is nearly free).
        preprocess_slope: additional multiplier per unit of sensitivity;
            total work factor = 1 + base + slope·Λ, the calibrated shape
            of Figure 3.
        rejection: the CR-rejection strategy slaves run — "clip"
            (sigma-clipped differences) or "segmented" (single-jump ramp
            segmentation), the two styles of the cited schemes [10–12].
        scheduling: how the master assigns fragments — "static"
            round-robin (the simple Figure 1 reading) or "dynamic"
            earliest-completion-first, which matters on heterogeneous
            COTS nodes.
        node_speed_spread: lognormal σ of the per-node speed factors
            (0 = identical nodes); COTS clusters are rarely uniform.
        slave_failure_probability: per-job probability that a slave dies
            mid-fragment (its result never returns); the master detects
            the loss by timeout and resubmits elsewhere.
        retry_timeout_s: how long the master waits for a fragment result
            before resubmitting.
        max_retries: resubmissions allowed per fragment.
        failure_seed: seed of the failure-drawing generator.
    """

    n_slaves: int = 15
    tile: int = 128
    cr_model: ProcessingModel = field(
        default_factory=lambda: ProcessingModel(fixed_s=2e-4, per_byte_s=4e-9)
    )
    preprocess_base_overhead: float = 0.02
    preprocess_slope: float = 0.012
    rejection: str = "clip"
    scheduling: str = "static"
    node_speed_spread: float = 0.0
    slave_failure_probability: float = 0.0
    retry_timeout_s: float = 0.25
    max_retries: int = 3
    failure_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ConfigurationError(f"need >= 1 slave, got {self.n_slaves}")
        if self.preprocess_base_overhead < 0 or self.preprocess_slope < 0:
            raise ConfigurationError("overhead parameters must be >= 0")
        if self.rejection not in ("clip", "segmented"):
            raise ConfigurationError(
                f"rejection must be 'clip' or 'segmented', got {self.rejection!r}"
            )
        if self.scheduling not in ("static", "dynamic"):
            raise ConfigurationError(
                f"scheduling must be 'static' or 'dynamic', got {self.scheduling!r}"
            )
        if self.node_speed_spread < 0:
            raise ConfigurationError(
                f"node_speed_spread must be >= 0, got {self.node_speed_spread}"
            )
        if not 0.0 <= self.slave_failure_probability < 1.0:
            raise ConfigurationError(
                "slave_failure_probability must be within [0, 1), got "
                f"{self.slave_failure_probability}"
            )
        if self.retry_timeout_s <= 0:
            raise ConfigurationError(
                f"retry_timeout_s must be > 0, got {self.retry_timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def work_factor(self, sensitivity: float | None) -> float:
        """Slave work multiplier for preprocessing at sensitivity Λ."""
        if sensitivity is None:
            return 1.0
        return 1.0 + self.preprocess_base_overhead + self.preprocess_slope * sensitivity


@dataclass
class PipelineReport:
    """What one baseline's pipeline run produced.

    Attributes:
        image: the reassembled CR-rejected flux image (counts/second).
        compressed: the Rice-compressed downlink payload.
        makespan_s: simulated wall-clock from ingest to compressed frame.
        bytes_moved: total bytes carried by the network.
        slave_utilisation: mean busy fraction of the slaves.
        n_fragments: fragments processed.
        preprocessed: whether input preprocessing ran on the slaves.
        n_slave_failures: jobs lost to slave crashes.
        n_retries: fragment resubmissions the master issued.
    """

    image: np.ndarray
    compressed: bytes
    makespan_s: float
    bytes_moved: int
    slave_utilisation: float
    n_fragments: int
    preprocessed: bool
    n_slave_failures: int = 0
    n_retries: int = 0


class CRRejectionPipeline:
    """End-to-end simulated run of the Figure 1 architecture."""

    def __init__(
        self,
        ramp_model: RampModel,
        cluster: ClusterConfig | None = None,
        preprocessor: NGSTPreprocessor | None = None,
    ) -> None:
        self.ramp_model = ramp_model
        self.cluster = cluster or ClusterConfig()
        self.preprocessor = preprocessor

    def run(self, stack: np.ndarray) -> PipelineReport:
        """Process one baseline's readout stack ``(N, H, W)``.

        The stack is typically already fault-corrupted by the caller;
        preprocessing (when configured) runs on each slave before CR
        rejection.
        """
        if stack.ndim != 3:
            raise SimulationError(f"expected (N, H, W) stack, got {stack.ndim}-D")
        cfg = self.cluster
        sim = Simulator()
        network = Network(sim)
        speed_rng = np.random.default_rng(cfg.failure_seed + 1)
        speeds = (
            np.exp(speed_rng.normal(0.0, cfg.node_speed_spread, cfg.n_slaves))
            if cfg.node_speed_spread > 0
            else np.ones(cfg.n_slaves)
        )
        slaves = [
            Node(sim, f"slave{i}", cfg.cr_model, speed=float(speeds[i]))
            for i in range(cfg.n_slaves)
        ]
        fragments = fragment_stack(stack, cfg.tile)
        sensitivity = (
            self.preprocessor.config.sensitivity if self.preprocessor else None
        )
        work_factor = cfg.work_factor(sensitivity)
        reject = (
            reject_cosmic_rays
            if cfg.rejection == "clip"
            else reject_cosmic_rays_segmented
        )
        failure_rng = np.random.default_rng(cfg.failure_seed)

        results: list[Fragment] = []
        completed: set[tuple[int, int]] = set()
        done_at = {"t": 0.0}
        stats = {"failures": 0, "retries": 0}
        planned_load = [0.0] * len(slaves)
        round_robin = {"next": 0}

        def choose_slave(n_bytes: int, exclude: int | None = None) -> int:
            if cfg.scheduling == "static":
                index = round_robin["next"] % len(slaves)
                round_robin["next"] += 1
                if exclude is not None and index == exclude and len(slaves) > 1:
                    index = round_robin["next"] % len(slaves)
                    round_robin["next"] += 1
                return index
            # Dynamic: earliest estimated completion, by the master's
            # bookkeeping of the load it has already assigned.
            best, best_eta = 0, None
            for i, slave in enumerate(slaves):
                if exclude is not None and i == exclude and len(slaves) > 1:
                    continue
                eta = planned_load[i] + cfg.cr_model.service_time(n_bytes) / slave.speed
                if best_eta is None or eta < best_eta:
                    best, best_eta = i, eta
            planned_load[best] = best_eta
            return best

        def dispatch(fragment: Fragment, slave_index: int, retries_left: int) -> None:
            slave = slaves[slave_index % len(slaves)]
            key = (fragment.row, fragment.col)
            n_bytes = fragment.data.nbytes
            job_fails = (
                cfg.slave_failure_probability > 0.0
                and failure_rng.random() < cfg.slave_failure_probability
            )

            def on_arrived() -> None:
                def on_processed() -> None:
                    if job_fails:
                        # The slave died mid-job: its result never comes
                        # back; the master's timeout will resubmit.
                        stats["failures"] += 1
                        return
                    if key in completed:
                        return  # a retried duplicate finished elsewhere
                    data = fragment.data
                    if self.preprocessor is not None:
                        data = self.preprocessor.process_stack(data).data
                    flux, _ = reject(data, self.ramp_model)
                    result = Fragment(fragment.row, fragment.col, flux)

                    def on_returned() -> None:
                        if key in completed:
                            return
                        completed.add(key)
                        results.append(result)
                        done_at["t"] = sim.now

                    network.send(slave.name, "master", flux.nbytes, on_returned)

                slave.submit(n_bytes, on_processed, work_factor=work_factor)

            network.send("master", slave.name, n_bytes, on_arrived)

            if cfg.slave_failure_probability > 0.0 and retries_left > 0:

                def on_timeout() -> None:
                    if key not in completed:
                        stats["retries"] += 1
                        replacement = choose_slave(
                            n_bytes, exclude=slave_index % len(slaves)
                        )
                        dispatch(fragment, replacement, retries_left - 1)

                sim.schedule(cfg.retry_timeout_s, on_timeout)

        for fragment in fragments:
            dispatch(fragment, choose_slave(fragment.data.nbytes), cfg.max_retries)

        sim.run()
        if len(results) != len(fragments):
            raise SimulationError(
                f"pipeline lost fragments: {len(results)}/{len(fragments)} "
                f"({stats['failures']} slave failures, {stats['retries']} retries)"
            )
        image = reassemble(results, cfg.tile)
        # Quantise the flux image for downlink compression, preserving
        # two decimal places of counts/second.
        quantised = np.clip(np.rint(image * 100.0), 0, 2**31 - 1).astype(np.uint32)
        compressed = rice_encode(quantised)
        makespan = done_at["t"]
        horizon = max(makespan, 1e-12)
        utilisation = float(
            np.mean([s.busy_seconds / horizon for s in slaves])
        )
        return PipelineReport(
            image=image,
            compressed=compressed,
            makespan_s=makespan,
            bytes_moved=network.total_bytes,
            slave_utilisation=utilisation,
            n_fragments=len(fragments),
            preprocessed=self.preprocessor is not None,
            n_slave_failures=stats["failures"],
            n_retries=stats["retries"],
        )
