"""Cosmic-ray hit injection and ramp-fit rejection.

Beyond any planetary magnetic field, NGST's detector suffers frequent
CR hits — the baseline estimate is an "unacceptably high 10% data loss"
per 1000-second exposure (§2).  A hit deposits charge instantaneously,
stepping the pixel's accumulation ramp; the onboard algorithms (the
paper's refs. [10–12]) detect the step in the readout differences,
excise it, and recover the pixel's flux from the clean ramp segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError
from repro.ngst.ramp import U16_MAX, RampModel


@dataclass(frozen=True)
class CosmicRayModel:
    """CR hit statistics for one baseline.

    Attributes:
        hit_probability: probability that a given pixel is hit during
            the baseline (the ~10% figure of §2 at default).
        min_amplitude / max_amplitude: deposited charge range in counts.
    """

    hit_probability: float = 0.10
    min_amplitude: float = 2000.0
    max_amplitude: float = 20000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_probability <= 1.0:
            raise ConfigurationError(
                f"hit_probability must be in [0, 1], got {self.hit_probability}"
            )
        if not 0 < self.min_amplitude <= self.max_amplitude:
            raise ConfigurationError("need 0 < min_amplitude <= max_amplitude")

    def inject(
        self, stack: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Add CR steps to a readout stack.

        Returns ``(hit_stack, hit_readout)`` where ``hit_readout`` holds
        the readout index at which each pixel was struck (−1 for clean
        pixels).  At most one hit per pixel per baseline is modelled,
        which matches the cited schemes' operating regime.
        """
        if stack.ndim < 1 or stack.shape[0] < 3:
            raise DataFormatError("stack needs a leading readout axis of >= 3")
        n = stack.shape[0]
        pixel_shape = stack.shape[1:]
        hit = rng.random(pixel_shape) < self.hit_probability
        hit_readout = np.where(hit, rng.integers(1, n, size=pixel_shape), -1)
        amplitude = rng.uniform(self.min_amplitude, self.max_amplitude, size=pixel_shape)
        counts = stack.astype(np.float64)
        readout_idx = np.arange(n).reshape((-1,) + (1,) * len(pixel_shape))
        step = (readout_idx >= hit_readout[None]) & hit[None]
        counts = counts + step * amplitude[None]
        return np.clip(np.rint(counts), 0, U16_MAX).astype(stack.dtype), hit_readout


def reject_cosmic_rays(
    stack: np.ndarray,
    model: RampModel,
    clip_sigma: float = 5.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Ramp-fit CR rejection over a readout stack.

    The first differences of a clean ramp are i.i.d. around φ·Δt; a CR
    step produces one outlying difference.  Differences beyond
    ``clip_sigma`` robust sigmas of the per-pixel median are excised and
    the flux is re-estimated from the surviving differences — the
    difference-domain equivalent of fitting the ramp segments on either
    side of the hit.

    Returns:
        (flux, n_rejected): per-pixel flux estimate (counts/second) and
        the count of excised differences per pixel.
    """
    if stack.shape[0] < 3:
        raise DataFormatError("need >= 3 readouts to reject cosmic rays")
    if clip_sigma <= 0:
        raise ConfigurationError(f"clip_sigma must be > 0, got {clip_sigma}")
    dt = model.baseline_s / model.n_readouts
    diffs = np.diff(stack.astype(np.float64), axis=0)
    median = np.median(diffs, axis=0, keepdims=True)
    # Robust scale: MAD with the Gaussian consistency constant, floored
    # by the read-noise-implied difference scatter.
    mad = np.median(np.abs(diffs - median), axis=0, keepdims=True)
    scale = np.maximum(1.4826 * mad, model.read_noise * np.sqrt(2.0))
    outlier = np.abs(diffs - median) > clip_sigma * scale
    kept = np.where(outlier, np.nan, diffs)
    with np.errstate(invalid="ignore"):
        mean_diff = np.nanmean(kept, axis=0)
    # Pixels whose every difference was clipped fall back to the median.
    mean_diff = np.where(np.isfinite(mean_diff), mean_diff, median[0])
    flux = mean_diff / dt
    return flux, outlier.sum(axis=0)


def reject_cosmic_rays_segmented(
    stack: np.ndarray,
    model: RampModel,
    jump_sigma: float = 5.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Segmented ramp-fit CR rejection (the Fixsen-style alternative).

    Rather than clipping individual differences, this variant locates the
    single most significant jump in each pixel's ramp, splits the ramp
    there, and recovers the flux as the length-weighted mean slope of the
    two clean segments — the "compare and integrate" formulation of the
    cited onboard schemes.  It assumes at most one CR hit per pixel per
    baseline, which is the cited schemes' operating regime.

    Returns:
        (flux, hit_readout): per-pixel flux estimate and the readout
        index of the detected jump (−1 where no jump was found).
    """
    if stack.shape[0] < 4:
        raise DataFormatError("need >= 4 readouts for segmented rejection")
    if jump_sigma <= 0:
        raise ConfigurationError(f"jump_sigma must be > 0, got {jump_sigma}")
    n = stack.shape[0]
    dt = model.baseline_s / model.n_readouts
    counts = stack.astype(np.float64)
    diffs = np.diff(counts, axis=0)  # (n-1, ...)
    median = np.median(diffs, axis=0, keepdims=True)
    mad = np.median(np.abs(diffs - median), axis=0, keepdims=True)
    scale = np.maximum(1.4826 * mad, model.read_noise * np.sqrt(2.0))
    deviation = np.abs(diffs - median) / scale
    jump_pos = np.argmax(deviation, axis=0)  # index into diffs
    significant = np.take_along_axis(deviation, jump_pos[None], axis=0)[0] > jump_sigma

    # Length-weighted mean of the differences excluding the jump one —
    # equivalent to averaging the two segments' slopes by length.
    total = diffs.sum(axis=0)
    jump_diff = np.take_along_axis(diffs, jump_pos[None], axis=0)[0]
    clean_mean = np.where(
        significant, (total - jump_diff) / (n - 2), total / (n - 1)
    )
    flux = clean_mean / dt
    hit_readout = np.where(significant, jump_pos + 1, -1)
    return flux, hit_readout
