"""The space-to-ground downlink: packetisation, CRC-16, ARQ.

Figure 1 ends with the compressed baseline image "transmitted to the
base station on earth" over a bandwidth-limited link.  This module
models that hop: the Rice-compressed payload is split into packets,
each protected by a CRC-16 and retransmitted on failure (stop-and-wait
ARQ), with bit errors drawn from the same Gilbert–Elliott burst channel
as :mod:`repro.faults.transit`.

It closes the loop on the paper's bandwidth argument: input bit-flips
inflate the compressed payload (see the ``compression`` experiment) and
channel bursts inflate the retransmission count — both eat the same
scarce downlink budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CodecError, ConfigurationError
from repro.faults.transit import GilbertElliottConfig, burst_flip_stream

#: CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no reflection.
_CRC_POLY = 0x1021
_CRC_INIT = 0xFFFF


def _build_crc_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC_TABLE = _build_crc_table()


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE of *data* (check value of b'123456789' is 0x29B1)."""
    crc = _CRC_INIT
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


@dataclass(frozen=True)
class DownlinkConfig:
    """Packet framing and ARQ policy.

    Attributes:
        payload_bytes: data bytes per packet.
        max_retransmits: attempts per packet beyond the first before the
            transfer is declared failed.
        channel: the burst-error channel both directions share (ACKs are
            assumed protected — the standard simplification).
    """

    payload_bytes: int = 1024
    max_retransmits: int = 8
    channel: GilbertElliottConfig = GilbertElliottConfig(
        p_good_to_bad=2e-6, p_bad_to_good=0.02, flip_prob_bad=0.3
    )

    def __post_init__(self) -> None:
        if self.payload_bytes < 1:
            raise ConfigurationError(
                f"payload_bytes must be >= 1, got {self.payload_bytes}"
            )
        if self.max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )


@dataclass(frozen=True)
class DownlinkReport:
    """Accounting for one transfer.

    Attributes:
        delivered: the bytes the receiver accepted (CRC-clean packets,
            in order).
        n_packets: packets in the transfer.
        n_transmissions: total packet transmissions including retries.
        n_crc_rejections: receptions discarded by the CRC check.
        n_undetected_errors: corrupted packets the CRC failed to catch
            (accepted with damage) — possible but ~2⁻¹⁶ rare.
        bits_on_wire: total bits transmitted (the bandwidth cost).
    """

    delivered: bytes
    n_packets: int
    n_transmissions: int
    n_crc_rejections: int
    n_undetected_errors: int
    bits_on_wire: int

    @property
    def efficiency(self) -> float:
        """Useful payload bits / bits on the wire."""
        if self.bits_on_wire == 0:
            return 1.0
        return len(self.delivered) * 8 / self.bits_on_wire

    @property
    def intact(self) -> bool:
        return self.n_undetected_errors == 0


class ARQDownlink:
    """Stop-and-wait ARQ transfer over the burst channel."""

    def __init__(self, config: DownlinkConfig | None = None, seed: int = 0) -> None:
        self.config = config or DownlinkConfig()
        self._rng = np.random.default_rng(seed)

    def _corrupt(self, packet: bytes) -> bytes:
        flips = burst_flip_stream(len(packet) * 8, self.config.channel, self._rng)
        if not flips.any():
            return packet
        as_bits = np.unpackbits(np.frombuffer(packet, dtype=np.uint8))
        as_bits ^= flips.astype(np.uint8)
        return np.packbits(as_bits).tobytes()

    def transmit(self, blob: bytes) -> DownlinkReport:
        """Transfer *blob*; returns the receiver-side view.

        Raises :class:`CodecError` when a packet exhausts its
        retransmission budget (the frame is lost for this pass).
        """
        cfg = self.config
        packets = [
            blob[i : i + cfg.payload_bytes]
            for i in range(0, len(blob), cfg.payload_bytes)
        ] or [b""]
        delivered = bytearray()
        transmissions = 0
        rejections = 0
        undetected = 0
        bits = 0
        for index, payload in enumerate(packets):
            checksum = crc16(payload).to_bytes(2, "big")
            accepted = False
            for _attempt in range(cfg.max_retransmits + 1):
                transmissions += 1
                frame = payload + checksum
                bits += len(frame) * 8
                received = self._corrupt(frame)
                body, received_crc = received[:-2], received[-2:]
                if crc16(body).to_bytes(2, "big") == received_crc:
                    if body != payload:
                        undetected += 1
                    delivered.extend(body)
                    accepted = True
                    break
                rejections += 1
            if not accepted:
                raise CodecError(
                    f"packet {index} exhausted {cfg.max_retransmits} retransmits"
                )
        return DownlinkReport(
            delivered=bytes(delivered),
            n_packets=len(packets),
            n_transmissions=transmissions,
            n_crc_rejections=rejections,
            n_undetected_errors=undetected,
            bits_on_wire=bits,
        )
