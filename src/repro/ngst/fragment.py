"""Fragmentation of detector frames for distributed processing (§2.1).

"The detector has a 1024×1024 sensor array, and all the input images of
this resolution are fragmented into 128×128 pixel image segments and
handed down to the slaves for processing" — any frame size divisible by
the tile works; reassembly is the exact inverse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError

DEFAULT_TILE = 128


@dataclass(frozen=True)
class Fragment:
    """One image segment, addressed by its tile-grid position."""

    row: int
    col: int
    data: np.ndarray


def fragment_stack(stack: np.ndarray, tile: int = DEFAULT_TILE) -> list[Fragment]:
    """Split a readout stack ``(N, H, W)`` (or frame ``(H, W)``) into tiles.

    Tiles carry the full temporal axis — each slave needs every readout
    of its segment for CR rejection and preprocessing.
    """
    if tile < 1:
        raise ConfigurationError(f"tile must be >= 1, got {tile}")
    stack = np.asarray(stack)
    if stack.ndim not in (2, 3):
        raise DataFormatError(f"expected (H, W) or (N, H, W), got {stack.ndim}-D")
    height, width = stack.shape[-2:]
    if height % tile or width % tile:
        raise DataFormatError(
            f"frame {height}x{width} not divisible by tile {tile}"
        )
    fragments = []
    for row in range(height // tile):
        for col in range(width // tile):
            window = (
                slice(row * tile, (row + 1) * tile),
                slice(col * tile, (col + 1) * tile),
            )
            data = stack[(...,) + window].copy()
            fragments.append(Fragment(row=row, col=col, data=data))
    return fragments


def reassemble(fragments: list[Fragment], tile: int = DEFAULT_TILE) -> np.ndarray:
    """Stitch fragments back into the full frame/stack.

    Raises :class:`DataFormatError` on missing, duplicate or
    inconsistently shaped fragments.
    """
    if not fragments:
        raise DataFormatError("no fragments to reassemble")
    shape0 = fragments[0].data.shape
    if any(f.data.shape != shape0 for f in fragments):
        raise DataFormatError("fragments have inconsistent shapes")
    if shape0[-2:] != (tile, tile):
        raise DataFormatError(f"fragments are {shape0[-2:]}, expected {(tile, tile)}")
    rows = max(f.row for f in fragments) + 1
    cols = max(f.col for f in fragments) + 1
    seen = {(f.row, f.col) for f in fragments}
    if len(seen) != len(fragments):
        raise DataFormatError("duplicate fragment positions")
    if len(seen) != rows * cols:
        missing = {(r, c) for r in range(rows) for c in range(cols)} - seen
        raise DataFormatError(f"missing fragments: {sorted(missing)[:4]}...")
    lead = shape0[:-2]
    out = np.empty(lead + (rows * tile, cols * tile), dtype=fragments[0].data.dtype)
    for f in fragments:
        window = (
            slice(f.row * tile, (f.row + 1) * tile),
            slice(f.col * tile, (f.col + 1) * tile),
        )
        out[(...,) + window] = f.data
    return out
