"""Integrated preprocessing — the paper's closing suggestion.

§9: "Integrating our algorithm into conforming applications while in
the design phase itself, rather than as a separate preprocessing layer
in the fault-tolerance scheme, can further lower the overhead."

As a separate layer, preprocessing sits between the FITS transport and
the application: the layer decodes the file, repairs the pixels, and
re-encodes a clean file for the application to decode again.  The
integrated variant gives the application the repaired arrays directly
— one decode, no re-encode — and fuses the header sanity check into the
same pass.  Both paths produce identical science output; the integrated
one removes the transport round-trip from the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NGSTConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.preprocessor import NGSTPreprocessor
from repro.exceptions import HeaderSanityError
from repro.fits.file import decode_data_unit, read_fits_bytes, write_hdu
from repro.fits.sanity import HeaderSanityAnalyzer
from repro.ngst.cosmic_rays import reject_cosmic_rays
from repro.ngst.ramp import RampModel


@dataclass(frozen=True)
class IntegratedResult:
    """Science output of one integrated run."""

    flux: np.ndarray
    n_pixels_corrected: int
    n_header_repairs: int


def layered_run(
    fits_bytes: bytes, ramp_model: RampModel, config: NGSTConfig
) -> np.ndarray:
    """The separate-layer architecture: preprocess-as-a-service.

    The preprocessing layer consumes the FITS stream and emits a
    repaired FITS stream; the application then decodes that stream and
    runs CR rejection.  This is the §9 baseline.
    """
    preprocessor = NGSTPreprocessor(config)
    repaired_bytes, _ = preprocessor.process_fits(fits_bytes)
    stack = read_fits_bytes(repaired_bytes)[0].physical_data()
    flux, _ = reject_cosmic_rays(np.ascontiguousarray(stack), ramp_model)
    return flux


def integrated_run(
    fits_bytes: bytes, ramp_model: RampModel, config: NGSTConfig
) -> IntegratedResult:
    """The integrated architecture: repair inside the application.

    One header sanity pass, one data-unit decode, correction vectors
    applied in place, CR rejection straight after — no intermediate
    FITS re-encode/decode.
    """
    analyzer = HeaderSanityAnalyzer(repair=True)
    report = analyzer.analyze(fits_bytes)
    if not report.ok:
        fatal = "; ".join(
            i.message for i in report.issues if i.severity.value == "fatal"
        )
        raise HeaderSanityError(f"unrecoverable FITS header: {fatal}")
    data_raw, _ = decode_data_unit(report.header, fits_bytes, report.header_length)
    from repro.fits.file import HDU

    stack = HDU(report.header, data_raw).physical_data()
    stack = np.ascontiguousarray(stack.astype(np.uint16))
    n_corrected = 0
    if config.sensitivity > 0:
        result = AlgoNGST(config)(stack)
        stack = result.corrected
        n_corrected = result.n_pixels_corrected
    flux, _ = reject_cosmic_rays(stack, ramp_model)
    return IntegratedResult(
        flux=flux,
        n_pixels_corrected=n_corrected,
        n_header_repairs=report.n_repairs,
    )


def make_transport(stack: np.ndarray) -> bytes:
    """Package a readout stack the way the detector electronics would."""
    return write_hdu(np.ascontiguousarray(stack))
