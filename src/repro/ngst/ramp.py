"""Non-destructive-readout ramp model for the NGST detector.

Within one 1000-second baseline the detector is read out N = 64 (or 65)
times without resetting; counts accumulate linearly with the incident
flux, so readout i of a pixel with flux φ is

    counts(i) = bias + φ · tᵢ + read-noise

Cosmic-ray hits deposit charge instantaneously, adding a *step* to all
subsequent readouts — the signature the rejection algorithm looks for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError

U16_MAX = np.iinfo(np.uint16).max


@dataclass(frozen=True)
class RampModel:
    """Parameters of one baseline's readout sequence.

    Attributes:
        n_readouts: N, readouts per baseline (64 or 65 in the cited CR
            management schemes).
        baseline_s: exposure length; readouts are equally spaced.
        bias: detector bias level in counts.
        read_noise: Gaussian read-noise sigma in counts.
    """

    n_readouts: int = 64
    baseline_s: float = 1000.0
    bias: float = 1000.0
    read_noise: float = 15.0

    def __post_init__(self) -> None:
        if self.n_readouts < 3:
            raise ConfigurationError(
                f"need >= 3 readouts for ramp fitting, got {self.n_readouts}"
            )
        if self.baseline_s <= 0:
            raise ConfigurationError(f"baseline must be > 0, got {self.baseline_s}")
        if self.bias < 0 or self.read_noise < 0:
            raise ConfigurationError("bias and read_noise must be >= 0")

    def readout_times(self) -> np.ndarray:
        """Sample times of the N readouts (first at one interval in)."""
        dt = self.baseline_s / self.n_readouts
        return dt * np.arange(1, self.n_readouts + 1)

    def generate(
        self, flux: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Pristine readout stack ``(N,) + flux.shape`` as uint16 counts.

        Args:
            flux: per-pixel count rate (counts/second), any shape.
            rng: read-noise source; noiseless when omitted.
        """
        flux = np.asarray(flux, dtype=np.float64)
        if np.any(flux < 0):
            raise DataFormatError("flux must be non-negative")
        times = self.readout_times()
        stack = self.bias + flux[None] * times.reshape((-1,) + (1,) * flux.ndim)
        if rng is not None and self.read_noise > 0:
            stack = stack + rng.normal(0.0, self.read_noise, size=stack.shape)
        return np.clip(np.rint(stack), 0, U16_MAX).astype(np.uint16)

    def fit_slope(self, stack: np.ndarray) -> np.ndarray:
        """Least-squares flux estimate per pixel from a readout stack."""
        if stack.shape[0] != self.n_readouts:
            raise DataFormatError(
                f"stack has {stack.shape[0]} readouts, model expects {self.n_readouts}"
            )
        times = self.readout_times()
        t_mean = times.mean()
        t_var = ((times - t_mean) ** 2).sum()
        counts = stack.astype(np.float64)
        centred = counts - counts.mean(axis=0, keepdims=True)
        weights = (times - t_mean).reshape((-1,) + (1,) * (stack.ndim - 1))
        return (centred * weights).sum(axis=0) / t_var
