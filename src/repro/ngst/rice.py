"""Rice (Golomb-Rice) entropy codec for the NGST downlink (§2, ref. [12]).

The processed baseline image is compressed with the Rice algorithm
before transmission to the base station.  This is a complete, bit-exact
implementation: predictive (first-difference) mapping, zig-zag folding
to unsigned residuals, block-adaptive parameter selection, and an
escape code for incompressible blocks — the same structure as the
CCSDS/FITS Rice coders.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import CodecError, DataFormatError

#: Samples per adaptive block.
BLOCK_SIZE = 32
#: Unary quotients longer than this escape to a raw sample encoding.
MAX_QUOTIENT = 47
#: Supported dtypes and their header codes.
_DTYPE_CODES = {np.dtype(np.uint8): 0, np.dtype(np.uint16): 1, np.dtype(np.uint32): 2}
_CODE_DTYPES = {v: k for k, v in _DTYPE_CODES.items()}
_MAGIC = b"RICE"


class _BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._n = 0

    def write(self, value: int, nbits: int) -> None:
        self._acc = (self._acc << nbits) | (value & ((1 << nbits) - 1))
        self._n += nbits
        while self._n >= 8:
            self._n -= 8
            self._bytes.append((self._acc >> self._n) & 0xFF)
        self._acc &= (1 << self._n) - 1

    def write_unary(self, q: int) -> None:
        """q one-bits terminated by a zero-bit."""
        while q >= 32:
            self.write(0xFFFFFFFF, 32)
            q -= 32
        self.write((1 << (q + 1)) - 2, q + 1)

    def getvalue(self) -> bytes:
        if self._n:
            tail = (self._acc << (8 - self._n)) & 0xFF
            return bytes(self._bytes) + bytes([tail])
        return bytes(self._bytes)


class _BitReader:
    """MSB-first bit consumer."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._pos = 0  # bit position

    def read(self, nbits: int) -> int:
        end = self._pos + nbits
        if end > len(self._blob) * 8:
            raise CodecError("bitstream exhausted")
        value = 0
        pos = self._pos
        while nbits:
            byte = self._blob[pos >> 3]
            avail = 8 - (pos & 7)
            take = min(avail, nbits)
            shift = avail - take
            value = (value << take) | ((byte >> shift) & ((1 << take) - 1))
            pos += take
            nbits -= take
        self._pos = pos
        return value

    def read_unary(self, limit: int) -> int:
        q = 0
        while True:
            if self.read(1) == 0:
                return q
            q += 1
            if q > limit:
                raise CodecError(f"unary run exceeds limit {limit}; corrupt stream")


def _zigzag(residuals: np.ndarray) -> np.ndarray:
    return np.where(residuals >= 0, residuals * 2, -residuals * 2 - 1).astype(np.int64)


def _unzigzag(folded: np.ndarray) -> np.ndarray:
    return np.where(folded % 2 == 0, folded // 2, -(folded + 1) // 2)


def _best_k(folded: np.ndarray, max_k: int) -> int:
    """Rice parameter minimising the coded size of one block."""
    best_k, best_bits = 0, None
    for k in range(max_k + 1):
        quotients = np.minimum(folded >> k, MAX_QUOTIENT + 1)
        bits = int(quotients.sum()) + len(folded) * (k + 1)
        # Escaped samples cost the raw width instead of the remainder.
        bits += int((quotients > MAX_QUOTIENT).sum()) * 32
        if best_bits is None or bits < best_bits:
            best_k, best_bits = k, bits
    return best_k


def rice_encode(data: np.ndarray) -> bytes:
    """Compress an unsigned integer array; bit-exact with :func:`rice_decode`.

    The stream header records dtype, dimensionality and shape so the
    decoder is self-contained.
    """
    data = np.asarray(data)
    if data.dtype not in _DTYPE_CODES:
        raise DataFormatError(f"rice codec supports uint8/16/32, got {data.dtype}")
    if data.size == 0:
        raise DataFormatError("cannot encode an empty array")
    nbits = data.dtype.itemsize * 8
    flat = data.reshape(-1).astype(np.int64)
    residuals = np.empty_like(flat)
    residuals[0] = flat[0]
    residuals[1:] = np.diff(flat)
    folded = _zigzag(residuals)

    writer = _BitWriter()
    max_k = nbits + 1
    for start in range(0, len(folded), BLOCK_SIZE):
        block = folded[start : start + BLOCK_SIZE]
        k = _best_k(block, max_k)
        writer.write(k, 6)
        for u in block.tolist():
            q = u >> k
            if q > MAX_QUOTIENT:
                writer.write_unary(MAX_QUOTIENT + 1)
                writer.write(u, 32)
            else:
                writer.write_unary(q)
                if k:
                    writer.write(u & ((1 << k) - 1), k)
    header = _MAGIC + struct.pack(
        ">BB", _DTYPE_CODES[data.dtype], data.ndim
    ) + struct.pack(f">{data.ndim}I", *data.shape)
    return header + writer.getvalue()


def rice_decode(blob: bytes) -> np.ndarray:
    """Decompress a :func:`rice_encode` stream back to the original array."""
    if len(blob) < 6 or blob[:4] != _MAGIC:
        raise CodecError("not a rice stream (bad magic)")
    dtype_code, ndim = struct.unpack(">BB", blob[4:6])
    if dtype_code not in _CODE_DTYPES:
        raise CodecError(f"unknown dtype code {dtype_code}")
    if ndim < 1 or ndim > 8:
        raise CodecError(f"implausible dimensionality {ndim}")
    header_end = 6 + 4 * ndim
    if len(blob) < header_end:
        raise CodecError("truncated rice header")
    shape = struct.unpack(f">{ndim}I", blob[6:header_end])
    count = 1
    for dim in shape:
        count *= dim
    if count == 0:
        raise CodecError("zero-sized shape in rice header")

    reader = _BitReader(blob[header_end:])
    folded = np.empty(count, dtype=np.int64)
    filled = 0
    while filled < count:
        block_len = min(BLOCK_SIZE, count - filled)
        k = reader.read(6)
        for i in range(block_len):
            q = reader.read_unary(MAX_QUOTIENT + 1)
            if q == MAX_QUOTIENT + 1:
                folded[filled + i] = reader.read(32)
            else:
                remainder = reader.read(k) if k else 0
                folded[filled + i] = (q << k) | remainder
        filled += block_len
    residuals = _unzigzag(folded)
    flat = np.cumsum(residuals)
    dtype = _CODE_DTYPES[dtype_code]
    info = np.iinfo(dtype)
    if np.any(flat < info.min) or np.any(flat > info.max):
        raise CodecError("decoded values out of dtype range; corrupt stream")
    return flat.astype(dtype).reshape(shape)


def compression_ratio(data: np.ndarray) -> float:
    """Uncompressed/compressed size ratio for *data* under this codec."""
    encoded = rice_encode(data)
    return (np.asarray(data).nbytes) / len(encoded)
