"""The OTIS application substrate (§7).

The Orbital Thermal Imaging Spectrometer collects radiation data from
the atmosphere and processes it into temperature and emissivity
mappings.  This subpackage provides the full data path the paper's
second benchmark exercises:

* :mod:`repro.otis.quantize` — the detector's 16-bit fixed-point DN
  storage encoding (the representation faults strike);
* :mod:`repro.otis.planck` — Planck radiance and brightness-temperature
  inversion;
* :mod:`repro.otis.spectrometer` — band definitions and the radiance
  cube sensing model;
* :mod:`repro.otis.temperature` — temperature / emissivity separation
  (the science output products of §7.1);
* :mod:`repro.otis.bounds` — physical and geographic bound presets;
* :mod:`repro.otis.alft` — Application-Level Fault Tolerance with a
  scaled-down secondary and logic-grid output selection.
"""

from repro.otis.alft import ALFTExecutor, ALFTOutcome, LogicGrid
from repro.otis.bounds import arctic_bounds, default_bounds, tropical_bounds
from repro.otis.planck import brightness_temperature, planck_radiance
from repro.otis.quantize import decode_dn, encode_dn
from repro.otis.scan import ScanConfig, cross_frame_preprocess, mosaic, scan_scene
from repro.otis.spectrometer import Band, Spectrometer, default_bands
from repro.otis.temperature import emissivity_cube, temperature_map

__all__ = [
    "ALFTExecutor",
    "ALFTOutcome",
    "Band",
    "LogicGrid",
    "ScanConfig",
    "Spectrometer",
    "arctic_bounds",
    "brightness_temperature",
    "cross_frame_preprocess",
    "decode_dn",
    "default_bands",
    "default_bounds",
    "emissivity_cube",
    "encode_dn",
    "mosaic",
    "planck_radiance",
    "scan_scene",
    "temperature_map",
    "tropical_bounds",
]
