"""Application-Level Fault Tolerance with logic-grid output selection.

§7 positions OTIS as a natural ALFT host [ref. 5]: a primary task runs
on one node, and a *scaled-down secondary* can run on another as a
backup.  The extended scheme the paper cites develops "suitable filters
for the primary output to determine whether to run the secondary, and
then to decide on which output to choose based on a logic grid" — and
it fails catastrophically exactly when primary *and* secondary both
produce spurious output, the case input preprocessing eliminates.

This module reproduces that executor so the end-to-end OTIS experiments
can measure the catastrophic-failure rate with and without input
preprocessing.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ALFTError


class OutputSource(Enum):
    """Which run produced the accepted output."""

    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass(frozen=True)
class ALFTOutcome:
    """Result of one ALFT execution.

    Attributes:
        output: the accepted output array.
        source: which run produced it.
        primary_crashed: the primary raised (process-killing fault).
        primary_accepted: the primary output passed the acceptance filter.
        secondary_ran: whether the scaled-down secondary executed.
        secondary_accepted: the secondary output passed the filter.
    """

    output: np.ndarray
    source: OutputSource
    primary_crashed: bool
    primary_accepted: bool
    secondary_ran: bool
    secondary_accepted: bool


class LogicGrid:
    """Decision table mapping filter verdicts to an output choice.

    The default grid prefers a passing primary (full-quality output),
    falls back to a passing secondary, and — only when *both* fail the
    filter but at least one produced output — optionally degrades to the
    primary rather than dropping the frame entirely.
    """

    def __init__(self, degrade_to_primary: bool = False) -> None:
        self.degrade_to_primary = degrade_to_primary

    def decide(
        self, primary_accepted: bool, secondary_accepted: bool, secondary_ran: bool
    ) -> OutputSource | None:
        """The source to use, or None for a catastrophic failure."""
        if primary_accepted:
            return OutputSource.PRIMARY
        if secondary_ran and secondary_accepted:
            return OutputSource.SECONDARY
        if self.degrade_to_primary:
            return OutputSource.PRIMARY
        return None


class ALFTExecutor:
    """Primary/secondary execution with acceptance filtering.

    Args:
        primary: the full-quality task, ``input -> output array``.
        secondary: the scaled-down backup task; may be None (basic ALFT
            recovers only process-killing faults of the primary then).
        acceptance_test: filter over an output array; ``True`` = sane.
        logic_grid: the output-selection policy.
        run_secondary_always: when False (the paper's extension), the
            secondary runs only if the primary crashed or failed the
            filter — the lower-overhead mode.
    """

    def __init__(
        self,
        primary: Callable[[np.ndarray], np.ndarray],
        secondary: Callable[[np.ndarray], np.ndarray] | None,
        acceptance_test: Callable[[np.ndarray], bool],
        logic_grid: LogicGrid | None = None,
        run_secondary_always: bool = False,
    ) -> None:
        self.primary = primary
        self.secondary = secondary
        self.acceptance_test = acceptance_test
        self.logic_grid = logic_grid or LogicGrid()
        self.run_secondary_always = run_secondary_always

    def run(self, input_data: np.ndarray) -> ALFTOutcome:
        """Execute the ALFT scheme on one input frame.

        Raises:
            ALFTError: catastrophic failure — no run produced output that
                the logic grid would accept (both spurious, or the
                primary crashed with no secondary available).
        """
        primary_output: np.ndarray | None = None
        primary_crashed = False
        try:
            primary_output = self.primary(input_data)
        except Exception:
            primary_crashed = True
        primary_accepted = (
            primary_output is not None and self.acceptance_test(primary_output)
        )

        need_secondary = self.run_secondary_always or not primary_accepted
        secondary_ran = False
        secondary_accepted = False
        secondary_output: np.ndarray | None = None
        if need_secondary and self.secondary is not None:
            try:
                secondary_output = self.secondary(input_data)
                secondary_ran = True
                secondary_accepted = self.acceptance_test(secondary_output)
            except Exception:
                secondary_ran = True
                secondary_accepted = False

        source = self.logic_grid.decide(primary_accepted, secondary_accepted, secondary_ran)
        if source is OutputSource.PRIMARY and primary_output is not None:
            output = primary_output
        elif source is OutputSource.SECONDARY and secondary_output is not None:
            output = secondary_output
        else:
            raise ALFTError(
                "catastrophic ALFT failure: "
                + (
                    "primary crashed and no acceptable secondary output"
                    if primary_crashed
                    else "both primary and secondary outputs are spurious"
                )
            )
        return ALFTOutcome(
            output=output,
            source=source,
            primary_crashed=primary_crashed,
            primary_accepted=primary_accepted,
            secondary_ran=secondary_ran,
            secondary_accepted=secondary_accepted,
        )
