"""Bound presets for the OTIS preprocessing (§7.2, hypothesis 2).

"In addition to the global absolute theoretical limits, there can also
be logical cut-off bounds, depending on the localized geographical
characteristics of the target area being scanned by the OTIS satellite,
such as 'tropical' or 'arctic' bounds."

The radiance-like presets are matched to the synthetic field scale of
:mod:`repro.data.otis` (background ≈ 95, physical ceiling 200); the
kelvin presets apply to the temperature output product.
"""

from __future__ import annotations

from repro.config import OTISBounds


def default_bounds() -> OTISBounds:
    """Global theoretical limits for the synthetic radiance fields."""
    return OTISBounds(lower=0.0, upper=200.0)


def tropical_bounds() -> OTISBounds:
    """Geographic cut-offs for a warm target area: radiance never drops
    to near-zero and hyper-thermal activity (volcanism) stays possible."""
    return OTISBounds(lower=0.0, upper=200.0, geographic_lower=30.0)


def arctic_bounds() -> OTISBounds:
    """Geographic cut-offs for a cold target area: the radiance ceiling
    tightens well below the global physical limit."""
    return OTISBounds(lower=0.0, upper=200.0, geographic_upper=140.0)


def kelvin_bounds() -> OTISBounds:
    """Physical limits for the temperature product: terrestrial surface
    temperatures live within [150, 400] K."""
    return OTISBounds(lower=150.0, upper=400.0)
