"""Planck radiation law and brightness-temperature inversion.

OTIS converts sensed spectral radiance into temperature and emissivity
products (§7.1).  Radiance is expressed in W·m⁻²·sr⁻¹·µm⁻¹ with
wavelengths in µm and temperatures in kelvin — the conventional units
of thermal-infrared remote sensing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

# First and second radiation constants for the spectral-radiance form
# L(λ, T) = C1 / (λ⁵ · (exp(C2 / (λ·T)) − 1)) with λ in µm.
C1 = 1.191042972e8  # W · µm⁴ · m⁻² · sr⁻¹
C2 = 1.4387752e4  # µm · K


def _check_wavelength(wavelength_um: float) -> None:
    if not 0.1 <= wavelength_um <= 1000.0:
        raise ConfigurationError(
            f"wavelength must be within [0.1, 1000] um, got {wavelength_um}"
        )


def planck_radiance(wavelength_um: float, temperature_k: np.ndarray | float) -> np.ndarray | float:
    """Blackbody spectral radiance at *wavelength_um* and *temperature_k*.

    Temperatures at or below 0 K yield zero radiance rather than a
    numerical error, which keeps fault-damaged pipelines well-defined.
    """
    _check_wavelength(wavelength_um)
    t = np.asarray(temperature_k, dtype=np.float64)
    scalar = t.ndim == 0
    t = np.atleast_1d(t)
    out = np.zeros_like(t)
    valid = t > 0
    with np.errstate(over="ignore"):
        exponent = C2 / (wavelength_um * t[valid])
        out[valid] = C1 / (wavelength_um**5 * np.expm1(exponent))
    if scalar:
        return float(out[0])
    return out


def brightness_temperature(
    wavelength_um: float, radiance: np.ndarray | float
) -> np.ndarray | float:
    """Invert Planck's law: the temperature whose blackbody radiance at
    *wavelength_um* equals *radiance*.

    Non-positive radiance maps to 0 K (no signal).
    """
    _check_wavelength(wavelength_um)
    rad = np.asarray(radiance, dtype=np.float64)
    scalar = rad.ndim == 0
    rad = np.atleast_1d(rad)
    out = np.zeros_like(rad)
    valid = rad > 0
    out[valid] = C2 / (
        wavelength_um * np.log1p(C1 / (wavelength_um**5 * rad[valid]))
    )
    if scalar:
        return float(out[0])
    return out
