"""Fixed-point DN (data number) storage encoding for OTIS radiance.

The application consumes 32-bit floating point radiance (§7.1), but the
values the detector electronics *store and ship* are fixed-point data
numbers — the representation in which memory bit-flips manifest.  Our
reproduction injects faults into this 16-bit DN encoding, which is what
makes the §8 error levels come out at the magnitudes the paper reports
(DESIGN.md §2 records the substitution).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError

#: Default physical value per DN count; full scale 65535 × 0.004 ≈ 262.
DEFAULT_DN_SCALE = 0.004

DN_MAX = np.iinfo(np.uint16).max


def encode_dn(values: np.ndarray, scale: float = DEFAULT_DN_SCALE) -> np.ndarray:
    """Quantise physical values into 16-bit DN counts.

    Values are clipped into the representable range [0, 65535 × scale];
    NaN/inf inputs are rejected (the sensor never produces them).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        raise DataFormatError("cannot encode non-finite physical values")
    dn = np.rint(values / scale)
    return np.clip(dn, 0, DN_MAX).astype(np.uint16)


def decode_dn(dn: np.ndarray, scale: float = DEFAULT_DN_SCALE) -> np.ndarray:
    """Recover physical values (float32) from DN counts."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    dn = np.asarray(dn)
    if dn.dtype != np.uint16:
        raise DataFormatError(f"DN arrays are uint16, got {dn.dtype}")
    return (dn.astype(np.float64) * scale).astype(np.float32)


def quantization_error_bound(scale: float = DEFAULT_DN_SCALE) -> float:
    """Worst-case absolute error introduced by one encode/decode trip."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    return scale / 2.0
