"""Overlapping-swath scanning: inter-frame redundancy for OTIS.

§9 generalises the approach to "temporal, spatial, spectral, and other
forms of inherent redundancy".  An orbiting imager revisits ground
pixels as its swath advances: consecutive frames overlap, so most
ground coordinates are observed several times.  Those repeated
observations form exactly the kind of short temporal stack
``Algo_NGST`` consumes — a fourth redundancy axis the paper's two
benchmarks do not exercise, built here from the same primitives.

Pipeline: :func:`scan_scene` acquires overlapping DN frames of a ground
scene → faults strike the stored frames → :func:`cross_frame_preprocess`
stacks each ground pixel's observations and votes → :func:`mosaic`
composites the swath.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError


@dataclass(frozen=True)
class ScanConfig:
    """Swath geometry.

    Attributes:
        frame_rows / frame_cols: the imager's frame footprint (ground
            pixels).
        step_rows: ground distance the footprint advances between
            frames; ``frame_rows - step_rows`` rows overlap, so each
            ground row is observed ``ceil(frame_rows / step_rows)``
            times (for interior rows, exactly ``frame_rows // step_rows``
            when divisible).
    """

    frame_rows: int = 32
    frame_cols: int = 64
    step_rows: int = 8

    def __post_init__(self) -> None:
        if self.frame_rows < 1 or self.frame_cols < 1:
            raise ConfigurationError("frame dimensions must be positive")
        if not 1 <= self.step_rows <= self.frame_rows:
            raise ConfigurationError(
                f"step_rows must be within [1, frame_rows], got {self.step_rows}"
            )

    @property
    def revisits(self) -> int:
        """Observations of an interior ground row."""
        return self.frame_rows // self.step_rows


@dataclass(frozen=True)
class Frame:
    """One acquired frame: DN data plus its ground-row origin."""

    origin_row: int
    dn: np.ndarray


def scan_scene(
    scene_dn: np.ndarray,
    config: ScanConfig,
    rng: np.random.Generator | None = None,
    read_noise_dn: float = 0.0,
) -> list[Frame]:
    """Acquire overlapping frames down a ground scene (uint16 DN).

    The scene's row count must allow at least one full frame; the scan
    advances by ``step_rows`` until the footprint would leave the scene.
    """
    scene_dn = np.asarray(scene_dn)
    if scene_dn.dtype != np.uint16 or scene_dn.ndim != 2:
        raise DataFormatError("scene must be a 2-D uint16 DN field")
    rows, cols = scene_dn.shape
    if rows < config.frame_rows or cols < config.frame_cols:
        raise DataFormatError(
            f"scene {scene_dn.shape} smaller than frame "
            f"{(config.frame_rows, config.frame_cols)}"
        )
    frames = []
    for origin in range(0, rows - config.frame_rows + 1, config.step_rows):
        window = scene_dn[
            origin : origin + config.frame_rows, : config.frame_cols
        ].astype(np.float64)
        if rng is not None and read_noise_dn > 0:
            window = window + rng.normal(0.0, read_noise_dn, size=window.shape)
        frames.append(
            Frame(
                origin_row=origin,
                dn=np.clip(np.rint(window), 0, 0xFFFF).astype(np.uint16),
            )
        )
    if not frames:
        raise DataFormatError("scan produced no frames")
    return frames


def _observation_stacks(
    frames: list[Frame], config: ScanConfig, n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack every ground pixel's observations.

    Returns ``(stack, counts)`` where ``stack`` has shape
    ``(max_revisits, n_rows, frame_cols)`` (unobserved slots repeat the
    first observation so the voter sees a full stack) and ``counts``
    holds the true observation count per ground row.
    """
    cols = config.frame_cols
    max_rev = max(
        sum(
            1
            for f in frames
            if f.origin_row <= r < f.origin_row + config.frame_rows
        )
        for r in range(n_rows)
    )
    stack = np.zeros((max_rev, n_rows, cols), dtype=np.uint16)
    counts = np.zeros(n_rows, dtype=np.int64)
    for frame in frames:
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row >= n_rows:
                continue
            slot = counts[ground_row]
            if slot < max_rev:
                stack[slot, ground_row] = frame.dn[local_row]
                counts[ground_row] += 1
    # Pad unobserved slots by cycling the available observations, so
    # padded entries are consistent with the real ones.
    for r in range(n_rows):
        c = int(counts[r])
        if c == 0:
            raise DataFormatError(f"ground row {r} never observed")
        for slot in range(c, max_rev):
            stack[slot, r] = stack[slot % c, r]
    return stack, counts


def cross_frame_preprocess(
    frames: list[Frame],
    config: ScanConfig,
    min_margin: int = 1,
) -> list[Frame]:
    """Repair bit-flips by consensus across each ground pixel's revisits.

    Unlike the NGST temporal stack, revisit observations of a ground
    pixel are samples of the *same* value (up to read noise), so the
    right estimator is a per-bit majority over the observations: every
    observation is snapped to the consensus word wherever the vote
    margin (majority minus minority) reaches ``min_margin``; contested
    bits keep their original reading.

    Returns repaired frames (same origins and shapes).  Requires at
    least 3 revisits of interior rows so a single corrupted observation
    can always be outvoted.
    """
    if not frames:
        raise DataFormatError("no frames to preprocess")
    if min_margin < 1:
        raise ConfigurationError(f"min_margin must be >= 1, got {min_margin}")
    if config.revisits < 3:
        raise ConfigurationError(
            f"need >= 3 revisits for majority consensus, got {config.revisits} "
            "(reduce step_rows)"
        )
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    stack, counts = _observation_stacks(frames, config, n_rows)
    max_rev = stack.shape[0]

    # Per-bit vote counts over the true observations of each ground
    # pixel (padded slots cycle true observations, so count them once by
    # masking slots >= counts[row]).
    slot_index = np.arange(max_rev).reshape(-1, 1, 1)
    valid = slot_index < counts.reshape(1, -1, 1)
    ones = np.zeros(stack.shape[1:] + (16,), dtype=np.int32)
    for b in range(16):
        plane = (stack >> np.uint16(b)) & np.uint16(1)
        ones[..., b] = (plane * valid).sum(axis=0)
    totals = counts.reshape(-1, 1, 1)
    zeros = totals - ones
    set_wins = ones - zeros >= min_margin
    clear_wins = zeros - ones >= min_margin
    consensus_set = np.zeros(stack.shape[1:], dtype=np.uint16)
    decided = np.zeros(stack.shape[1:], dtype=np.uint16)
    for b in range(16):
        bit = np.uint16(1 << b)
        consensus_set |= set_wins[..., b].astype(np.uint16) * bit
        decided |= (set_wins[..., b] | clear_wins[..., b]).astype(np.uint16) * bit

    # Snap each observation's decided bits to the consensus; keep its
    # own reading for contested bits.
    repaired_stack = (stack & ~decided) | (consensus_set & decided)

    # Scatter repaired observations back into their frames.
    slots = np.zeros(n_rows, dtype=np.int64)
    repaired_frames = []
    for frame in frames:
        data = frame.dn.copy()
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row >= n_rows:
                continue
            slot = slots[ground_row]
            if slot < max_rev:
                data[local_row] = repaired_stack[slot, ground_row]
                slots[ground_row] += 1
        repaired_frames.append(Frame(origin_row=frame.origin_row, dn=data))
    return repaired_frames


def mosaic(frames: list[Frame], config: ScanConfig) -> np.ndarray:
    """Composite the swath: per-ground-pixel median over observations."""
    if not frames:
        raise DataFormatError("no frames to composite")
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    cols = config.frame_cols
    accumulator: list[list[np.ndarray]] = [[] for _ in range(n_rows)]
    for frame in frames:
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row < n_rows:
                accumulator[ground_row].append(frame.dn[local_row])
    out = np.zeros((n_rows, cols), dtype=np.uint16)
    for r, observations in enumerate(accumulator):
        if not observations:
            raise DataFormatError(f"ground row {r} never observed")
        out[r] = np.median(
            np.stack(observations).astype(np.float64), axis=0
        ).astype(np.uint16)
    return out
