"""Overlapping-swath scanning: inter-frame redundancy for OTIS.

§9 generalises the approach to "temporal, spatial, spectral, and other
forms of inherent redundancy".  An orbiting imager revisits ground
pixels as its swath advances: consecutive frames overlap, so most
ground coordinates are observed several times.  Those repeated
observations form exactly the kind of short temporal stack
``Algo_NGST`` consumes — a fourth redundancy axis the paper's two
benchmarks do not exercise, built here from the same primitives.

Pipeline: :func:`scan_scene` acquires overlapping DN frames of a ground
scene → faults strike the stored frames → :func:`cross_frame_preprocess`
stacks each ground pixel's observations and votes → :func:`mosaic`
composites the swath.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError


@dataclass(frozen=True)
class ScanConfig:
    """Swath geometry.

    Attributes:
        frame_rows / frame_cols: the imager's frame footprint (ground
            pixels).
        step_rows: ground distance the footprint advances between
            frames; ``frame_rows - step_rows`` rows overlap, so each
            ground row is observed ``ceil(frame_rows / step_rows)``
            times (for interior rows, exactly ``frame_rows // step_rows``
            when divisible).
    """

    frame_rows: int = 32
    frame_cols: int = 64
    step_rows: int = 8

    def __post_init__(self) -> None:
        if self.frame_rows < 1 or self.frame_cols < 1:
            raise ConfigurationError("frame dimensions must be positive")
        if not 1 <= self.step_rows <= self.frame_rows:
            raise ConfigurationError(
                f"step_rows must be within [1, frame_rows], got {self.step_rows}"
            )

    @property
    def revisits(self) -> int:
        """Observations of an interior ground row."""
        return self.frame_rows // self.step_rows


@dataclass(frozen=True)
class Frame:
    """One acquired frame: DN data plus its ground-row origin."""

    origin_row: int
    dn: np.ndarray


def scan_scene(
    scene_dn: np.ndarray,
    config: ScanConfig,
    rng: np.random.Generator | None = None,
    read_noise_dn: float = 0.0,
) -> list[Frame]:
    """Acquire overlapping frames down a ground scene (uint16 DN).

    The scene's row count must allow at least one full frame; the scan
    advances by ``step_rows`` until the footprint would leave the scene.
    """
    scene_dn = np.asarray(scene_dn)
    if scene_dn.dtype != np.uint16 or scene_dn.ndim != 2:
        raise DataFormatError("scene must be a 2-D uint16 DN field")
    rows, cols = scene_dn.shape
    if rows < config.frame_rows or cols < config.frame_cols:
        raise DataFormatError(
            f"scene {scene_dn.shape} smaller than frame "
            f"{(config.frame_rows, config.frame_cols)}"
        )
    frames = []
    for origin in range(0, rows - config.frame_rows + 1, config.step_rows):
        window = scene_dn[
            origin : origin + config.frame_rows, : config.frame_cols
        ].astype(np.float64)
        if rng is not None and read_noise_dn > 0:
            window = window + rng.normal(0.0, read_noise_dn, size=window.shape)
        frames.append(
            Frame(
                origin_row=origin,
                dn=np.clip(np.rint(window), 0, 0xFFFF).astype(np.uint16),
            )
        )
    if not frames:
        raise DataFormatError("scan produced no frames")
    return frames


def _frame_slots(
    frames: list[Frame], config: ScanConfig, n_rows: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slot bookkeeping shared by the stack gather and frame scatter.

    Returns ``(valid, flat_rows, slots)``: ``valid`` masks the
    ``(n_frames, frame_rows)`` local rows that land inside the scene;
    ``flat_rows`` are their ground rows in frame-major order; and
    ``slots[k]`` is the revisit slot of observation ``k`` — its
    occurrence rank among equal ground rows, recovered from a stable
    argsort (within a sorted group, stable order is arrival order, so
    the offset from the group start is the rank).
    """
    origins = np.array([f.origin_row for f in frames], dtype=np.intp)
    ground = origins[:, None] + np.arange(config.frame_rows, dtype=np.intp)
    valid = ground < n_rows
    flat_rows = ground[valid]
    order = np.argsort(flat_rows, kind="stable")
    sorted_rows = flat_rows[order]
    group_starts = np.flatnonzero(
        np.concatenate(([True], sorted_rows[1:] != sorted_rows[:-1]))
    )
    group_sizes = np.diff(np.append(group_starts, sorted_rows.size))
    rank_sorted = np.arange(sorted_rows.size) - np.repeat(group_starts, group_sizes)
    slots = np.empty(flat_rows.size, dtype=np.intp)
    slots[order] = rank_sorted
    return valid, flat_rows, slots


def _observation_stacks(
    frames: list[Frame], config: ScanConfig, n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stack every ground pixel's observations.

    Returns ``(stack, counts)`` where ``stack`` has shape
    ``(max_revisits, n_rows, frame_cols)`` (unobserved slots repeat the
    first observation so the voter sees a full stack) and ``counts``
    holds the true observation count per ground row.
    """
    cols = config.frame_cols
    valid, flat_rows, slots = _frame_slots(frames, config, n_rows)
    counts = np.bincount(flat_rows, minlength=n_rows)
    if counts.size and counts.min() == 0:
        r = int(np.flatnonzero(counts == 0)[0])
        raise DataFormatError(f"ground row {r} never observed")
    max_rev = int(counts.max())
    stack = np.zeros((max_rev, n_rows, cols), dtype=np.uint16)
    stack[slots, flat_rows] = np.stack([f.dn for f in frames])[valid]
    # Pad unobserved slots by cycling the available observations, so
    # padded entries are consistent with the real ones.
    if counts.min() < max_rev:
        slot_index = np.arange(max_rev)[:, None]
        src = np.where(slot_index < counts, slot_index, slot_index % counts)
        stack = stack[src, np.arange(n_rows)[None, :]]
    return stack, counts.astype(np.int64)


def _reference_observation_stacks(
    frames: list[Frame], config: ScanConfig, n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-vectorization oracle for :func:`_observation_stacks`."""
    cols = config.frame_cols
    max_rev = max(
        sum(
            1
            for f in frames
            if f.origin_row <= r < f.origin_row + config.frame_rows
        )
        for r in range(n_rows)
    )
    stack = np.zeros((max_rev, n_rows, cols), dtype=np.uint16)
    counts = np.zeros(n_rows, dtype=np.int64)
    for frame in frames:
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row >= n_rows:
                continue
            slot = counts[ground_row]
            if slot < max_rev:
                stack[slot, ground_row] = frame.dn[local_row]
                counts[ground_row] += 1
    for r in range(n_rows):
        c = int(counts[r])
        if c == 0:
            raise DataFormatError(f"ground row {r} never observed")
        for slot in range(c, max_rev):
            stack[slot, r] = stack[slot % c, r]
    return stack, counts


def cross_frame_preprocess(
    frames: list[Frame],
    config: ScanConfig,
    min_margin: int = 1,
) -> list[Frame]:
    """Repair bit-flips by consensus across each ground pixel's revisits.

    Unlike the NGST temporal stack, revisit observations of a ground
    pixel are samples of the *same* value (up to read noise), so the
    right estimator is a per-bit majority over the observations: every
    observation is snapped to the consensus word wherever the vote
    margin (majority minus minority) reaches ``min_margin``; contested
    bits keep their original reading.

    Returns repaired frames (same origins and shapes).  Requires at
    least 3 revisits of interior rows so a single corrupted observation
    can always be outvoted.
    """
    if not frames:
        raise DataFormatError("no frames to preprocess")
    if min_margin < 1:
        raise ConfigurationError(f"min_margin must be >= 1, got {min_margin}")
    if config.revisits < 3:
        raise ConfigurationError(
            f"need >= 3 revisits for majority consensus, got {config.revisits} "
            "(reduce step_rows)"
        )
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    stack, counts = _observation_stacks(frames, config, n_rows)
    max_rev = stack.shape[0]

    # Per-bit vote counts over the true observations of each ground
    # pixel (padded slots cycle true observations, so count them once by
    # zeroing slots >= counts[row] up front — one mask application
    # instead of one per bit; an ``unpackbits`` plane stack was measured
    # slower here, its transpose outweighing the saved shift loop).
    slot_index = np.arange(max_rev).reshape(-1, 1, 1)
    valid = slot_index < counts.reshape(1, -1, 1)
    masked = np.where(valid, stack, np.uint16(0))
    ones = np.empty((16,) + stack.shape[1:], dtype=np.int32)
    for b in range(16):
        ones[b] = ((masked >> np.uint16(b)) & np.uint16(1)).sum(
            axis=0, dtype=np.int32
        )
    totals = counts.reshape(1, -1, 1)
    zeros = totals - ones
    set_wins = ones - zeros >= min_margin
    clear_wins = zeros - ones >= min_margin
    consensus_set = np.zeros(stack.shape[1:], dtype=np.uint16)
    decided = np.zeros(stack.shape[1:], dtype=np.uint16)
    for b in range(16):
        bit = np.uint16(1 << b)
        consensus_set |= set_wins[b] * bit
        decided |= (set_wins[b] | clear_wins[b]) * bit

    # Snap each observation's decided bits to the consensus; keep its
    # own reading for contested bits.
    repaired_stack = (stack & ~decided) | (consensus_set & decided)

    # Scatter repaired observations back into their frames: the same
    # occurrence ranks that placed each observation gather it back.
    frame_valid, flat_rows, slots = _frame_slots(frames, config, n_rows)
    dn = np.stack([f.dn for f in frames])
    dn[frame_valid] = repaired_stack[slots, flat_rows]
    return [
        Frame(origin_row=frame.origin_row, dn=dn[i])
        for i, frame in enumerate(frames)
    ]


def _reference_cross_frame_preprocess(
    frames: list[Frame],
    config: ScanConfig,
    min_margin: int = 1,
) -> list[Frame]:
    """Pre-vectorization oracle for :func:`cross_frame_preprocess`."""
    if not frames:
        raise DataFormatError("no frames to preprocess")
    if min_margin < 1:
        raise ConfigurationError(f"min_margin must be >= 1, got {min_margin}")
    if config.revisits < 3:
        raise ConfigurationError(
            f"need >= 3 revisits for majority consensus, got {config.revisits} "
            "(reduce step_rows)"
        )
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    stack, counts = _reference_observation_stacks(frames, config, n_rows)
    max_rev = stack.shape[0]
    slot_index = np.arange(max_rev).reshape(-1, 1, 1)
    valid = slot_index < counts.reshape(1, -1, 1)
    ones = np.zeros(stack.shape[1:] + (16,), dtype=np.int32)
    for b in range(16):
        plane = (stack >> np.uint16(b)) & np.uint16(1)
        ones[..., b] = (plane * valid).sum(axis=0)
    totals = counts.reshape(-1, 1, 1)
    zeros = totals - ones
    set_wins = ones - zeros >= min_margin
    clear_wins = zeros - ones >= min_margin
    consensus_set = np.zeros(stack.shape[1:], dtype=np.uint16)
    decided = np.zeros(stack.shape[1:], dtype=np.uint16)
    for b in range(16):
        bit = np.uint16(1 << b)
        consensus_set |= set_wins[..., b].astype(np.uint16) * bit
        decided |= (set_wins[..., b] | clear_wins[..., b]).astype(np.uint16) * bit
    repaired_stack = (stack & ~decided) | (consensus_set & decided)
    slots = np.zeros(n_rows, dtype=np.int64)
    repaired_frames = []
    for frame in frames:
        data = frame.dn.copy()
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row >= n_rows:
                continue
            slot = slots[ground_row]
            if slot < max_rev:
                data[local_row] = repaired_stack[slot, ground_row]
                slots[ground_row] += 1
        repaired_frames.append(Frame(origin_row=frame.origin_row, dn=data))
    return repaired_frames


def mosaic(frames: list[Frame], config: ScanConfig) -> np.ndarray:
    """Composite the swath: per-ground-pixel median over observations.

    Reuses the :func:`_observation_stacks` gather; rows are grouped by
    their observation count so each group's median runs over exactly its
    true observations (``stack[:c]``), matching the per-row median of
    the reference implementation without per-row Python work.  The order
    statistics are selected by partition in the native uint16 dtype; the
    even-count midpoint mean is taken in float64 exactly as ``np.median``
    does, so the truncation back to uint16 is reproduced bit for bit.
    """
    if not frames:
        raise DataFormatError("no frames to composite")
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    stack, counts = _observation_stacks(frames, config, n_rows)
    out = np.empty((n_rows, config.frame_cols), dtype=np.uint16)
    for c in np.unique(counts):
        rows = np.flatnonzero(counts == c)
        c = int(c)
        mid = c // 2
        if c % 2:
            out[rows] = np.partition(stack[:c, rows], mid, axis=0)[mid]
        else:
            part = np.partition(stack[:c, rows], (mid - 1, mid), axis=0)
            lo = part[mid - 1].astype(np.float64)
            hi = part[mid].astype(np.float64)
            out[rows] = ((lo + hi) * 0.5).astype(np.uint16)
    return out


def _reference_mosaic(frames: list[Frame], config: ScanConfig) -> np.ndarray:
    """Pre-vectorization oracle for :func:`mosaic`."""
    if not frames:
        raise DataFormatError("no frames to composite")
    n_rows = max(f.origin_row + config.frame_rows for f in frames)
    cols = config.frame_cols
    accumulator: list[list[np.ndarray]] = [[] for _ in range(n_rows)]
    for frame in frames:
        for local_row in range(config.frame_rows):
            ground_row = frame.origin_row + local_row
            if ground_row < n_rows:
                accumulator[ground_row].append(frame.dn[local_row])
    out = np.zeros((n_rows, cols), dtype=np.uint16)
    for r, observations in enumerate(accumulator):
        if not observations:
            raise DataFormatError(f"ground row {r} never observed")
        out[r] = np.median(
            np.stack(observations).astype(np.float64), axis=0
        ).astype(np.uint16)
    return out
