"""OTIS sensing model: spectral bands and radiance-cube acquisition.

Input to OTIS is a three-dimensional array — x and y for geography, z
for "the radiation intensity of the same region in various wavelengths"
(§7.1).  The :class:`Spectrometer` generates such cubes from a surface
temperature scene: per band, radiance is emissivity × Planck blackbody
radiance plus detector noise, then quantised into the 16-bit DN words
the electronics store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataFormatError
from repro.otis.planck import planck_radiance
from repro.otis.quantize import encode_dn


@dataclass(frozen=True)
class Band:
    """One spectral channel of the instrument."""

    name: str
    wavelength_um: float

    def __post_init__(self) -> None:
        if not 0.1 <= self.wavelength_um <= 1000.0:
            raise ConfigurationError(
                f"band wavelength must be within [0.1, 1000] um, "
                f"got {self.wavelength_um}"
            )


def default_bands(n_bands: int = 8) -> tuple[Band, ...]:
    """Thermal-infrared channels spanning the 8–12 µm window.

    Spectral correlation "falls drastically on either side of a band of
    wavelengths" (§7.1); keeping the defaults inside one atmospheric
    window keeps neighbouring bands well correlated, as for real OTIS
    data.
    """
    if n_bands < 1:
        raise ConfigurationError(f"need at least one band, got {n_bands}")
    wavelengths = np.linspace(8.0, 12.0, n_bands)
    return tuple(
        Band(name=f"B{i + 1}", wavelength_um=float(w))
        for i, w in enumerate(wavelengths)
    )


class Spectrometer:
    """Radiance-cube acquisition from a surface temperature scene.

    Args:
        bands: spectral channels to sense.
        dn_scale: physical radiance per DN count of the storage encoding.
            The default resolves typical 8–12 µm radiances (≈ 3–13
            W·m⁻²·sr⁻¹·µm⁻¹) with ~0.0005 resolution and full scale ≈ 33.
        noise_sigma: additive Gaussian detector noise per sample.
    """

    def __init__(
        self,
        bands: tuple[Band, ...] | None = None,
        dn_scale: float = 5e-4,
        noise_sigma: float = 0.002,
    ) -> None:
        if dn_scale <= 0:
            raise ConfigurationError(f"dn_scale must be > 0, got {dn_scale}")
        if noise_sigma < 0:
            raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.bands = tuple(bands) if bands is not None else default_bands()
        if not self.bands:
            raise ConfigurationError("spectrometer needs at least one band")
        self.dn_scale = dn_scale
        self.noise_sigma = noise_sigma

    def sense_radiance(
        self,
        temperature_k: np.ndarray,
        emissivity: np.ndarray | float = 0.97,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Acquire a float64 radiance cube ``(n_bands, rows, cols)``.

        Args:
            temperature_k: 2-D surface temperature scene in kelvin.
            emissivity: scalar, 2-D map, or per-band ``(n_bands, rows,
                cols)`` cube of emissivities in (0, 1].
            rng: source of detector noise; noiseless when omitted.
        """
        temperature_k = np.asarray(temperature_k, dtype=np.float64)
        if temperature_k.ndim != 2:
            raise DataFormatError(
                f"temperature scene must be 2-D, got {temperature_k.ndim}-D"
            )
        emissivity = self._broadcast_emissivity(emissivity, temperature_k.shape)
        cube = np.empty((len(self.bands),) + temperature_k.shape, dtype=np.float64)
        for z, band in enumerate(self.bands):
            cube[z] = emissivity[z] * planck_radiance(band.wavelength_um, temperature_k)
        if rng is not None and self.noise_sigma > 0:
            cube += rng.normal(0.0, self.noise_sigma, size=cube.shape)
            np.clip(cube, 0.0, None, out=cube)
        return cube

    def sense_dn(
        self,
        temperature_k: np.ndarray,
        emissivity: np.ndarray | float = 0.97,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Acquire a stored DN cube (uint16) — the fault-exposed form."""
        return encode_dn(self.sense_radiance(temperature_k, emissivity, rng), self.dn_scale)

    def _broadcast_emissivity(
        self, emissivity: np.ndarray | float, shape: tuple[int, int]
    ) -> np.ndarray:
        n = len(self.bands)
        eps = np.asarray(emissivity, dtype=np.float64)
        if eps.ndim == 0:
            eps = np.full((n,) + shape, float(eps))
        elif eps.ndim == 2:
            if eps.shape != shape:
                raise DataFormatError(
                    f"emissivity map {eps.shape} does not match scene {shape}"
                )
            eps = np.broadcast_to(eps, (n,) + shape).copy()
        elif eps.ndim == 3:
            if eps.shape != (n,) + shape:
                raise DataFormatError(
                    f"emissivity cube {eps.shape} does not match {(n,) + shape}"
                )
        else:
            raise DataFormatError(f"emissivity must be scalar/2-D/3-D, got {eps.ndim}-D")
        if np.any(eps <= 0) or np.any(eps > 1):
            raise DataFormatError("emissivities must lie in (0, 1]")
        return eps
