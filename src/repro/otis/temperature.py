"""OTIS science output products (§7.1): the two-dimensional temperature
diagram in kelvin and the three-dimensional emissivity diagram.

Since OTIS has "no inherent averaging or multiple imaging as in NGST,
the correlation between precision at output and input is much higher"
— these products are where input bit-flips surface, which is what the
end-to-end OTIS experiments measure.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataFormatError
from repro.otis.planck import brightness_temperature, planck_radiance
from repro.otis.spectrometer import Band


def _check_cube(cube: np.ndarray, bands: tuple[Band, ...]) -> np.ndarray:
    cube = np.asarray(cube, dtype=np.float64)
    if cube.ndim != 3:
        raise DataFormatError(f"radiance cube must be 3-D, got {cube.ndim}-D")
    if cube.shape[0] != len(bands):
        raise DataFormatError(
            f"cube has {cube.shape[0]} bands but {len(bands)} band defs given"
        )
    return cube


def temperature_map(
    cube: np.ndarray,
    bands: tuple[Band, ...],
    emissivity: float = 0.97,
) -> np.ndarray:
    """The 2-D temperature product: per-pixel kelvin estimate.

    Each band's radiance is corrected for the assumed emissivity and
    inverted through Planck's law; the per-pixel estimate is the median
    over bands, which tolerates residual single-band damage.
    """
    cube = _check_cube(cube, bands)
    if not 0 < emissivity <= 1:
        raise DataFormatError(f"emissivity must be in (0, 1], got {emissivity}")
    temps = np.empty_like(cube)
    for z, band in enumerate(bands):
        temps[z] = brightness_temperature(band.wavelength_um, cube[z] / emissivity)
    return np.median(temps, axis=0)


def emissivity_cube(
    cube: np.ndarray,
    bands: tuple[Band, ...],
    temperature_k: np.ndarray,
) -> np.ndarray:
    """The 3-D emissivity product: per-band ratio of sensed to blackbody
    radiance at the retrieved temperature, clipped into (0, 1]."""
    cube = _check_cube(cube, bands)
    temperature_k = np.asarray(temperature_k, dtype=np.float64)
    if temperature_k.shape != cube.shape[1:]:
        raise DataFormatError(
            f"temperature map {temperature_k.shape} does not match cube "
            f"spatial shape {cube.shape[1:]}"
        )
    out = np.empty_like(cube)
    for z, band in enumerate(bands):
        blackbody = planck_radiance(band.wavelength_um, temperature_k)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(blackbody > 0, cube[z] / blackbody, 0.0)
        out[z] = np.clip(ratio, 1e-6, 1.0)
    return out
