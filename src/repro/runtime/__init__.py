"""Parallel campaign execution runtime: sharded trials, pluggable
serial/process-pool backends, JSONL checkpointing, and telemetry.

The paper's evaluation averages every data point over many
independently seeded trials (Figure 5 uses 100 datasets per point).
This subsystem makes that loop a scheduling problem: a
:class:`TrialPlan` derives per-trial seeds via
``SeedSequence.spawn`` and splits them into shards, an
:class:`Executor` backend runs the shards (in-process or across a
process pool), a :class:`CheckpointStore` records completions so an
interrupted campaign resumes where it stopped, and a
:class:`Telemetry` hub reports per-shard timing and throughput.
Results are bit-identical across backends, shard sizes, and
interrupt/resume cycles.
"""

from repro.runtime.backend import (
    Executor,
    ProcessPoolBackend,
    SerialBackend,
    ShardResult,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import TrialRuntime
from repro.runtime.plan import Shard, TrialPlan, default_shard_size
from repro.runtime.telemetry import (
    ProgressPrinter,
    RunCompleted,
    RunStarted,
    ShardCompleted,
    Telemetry,
)

__all__ = [
    "CheckpointStore",
    "Executor",
    "ProcessPoolBackend",
    "ProgressPrinter",
    "RunCompleted",
    "RunStarted",
    "SerialBackend",
    "Shard",
    "ShardCompleted",
    "ShardResult",
    "Telemetry",
    "TrialPlan",
    "TrialRuntime",
    "default_shard_size",
]
