"""Parallel campaign execution runtime: sharded trials, pluggable
serial/process-pool backends, JSONL checkpointing, and telemetry.

The paper's evaluation averages every data point over many
independently seeded trials (Figure 5 uses 100 datasets per point).
This subsystem makes that loop a scheduling problem: a
:class:`TrialPlan` derives per-trial seeds via
``SeedSequence.spawn`` and splits them into shards, an
:class:`Executor` backend runs the shards (in-process or across a
process pool), a :class:`CheckpointStore` records completions so an
interrupted campaign resumes where it stopped, and a
:class:`Telemetry` hub reports per-shard timing and throughput.
Results are bit-identical across backends, shard sizes, and
interrupt/resume cycles.

Multi-arm sweeps additionally go through the **plan-fusion pass**
(:mod:`repro.runtime.fusion`): arm plans sharing a (dataset,
fault-realization) fingerprint fuse into one schedule whose artifacts
are produced once per trial, served through a content-addressed
:class:`~repro.cache.ArtifactCache`, and broadcast zero-copy to pool
workers over shared memory — still bit-identical to the per-arm
unfused plans.
"""

from repro.runtime.backend import (
    BACKEND_CHOICES,
    Executor,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    ShardResult,
    default_start_method,
    resolve_backend,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import TrialRuntime
from repro.runtime.fusion import (
    Arm,
    ArmRequest,
    ArtifactPipeline,
    DatasetSpec,
    FaultSpec,
    FusedGroup,
    fuse,
)
from repro.runtime.plan import Shard, TrialPlan, default_shard_size
from repro.runtime.telemetry import (
    CacheSnapshot,
    DagCompleted,
    DagStarted,
    NodeCompleted,
    ProgressPrinter,
    RunCompleted,
    RunStarted,
    ShardCompleted,
    Telemetry,
)

__all__ = [
    "Arm",
    "ArmRequest",
    "ArtifactPipeline",
    "BACKEND_CHOICES",
    "CacheSnapshot",
    "CheckpointStore",
    "DagCompleted",
    "DagStarted",
    "DatasetSpec",
    "Executor",
    "FaultSpec",
    "FusedGroup",
    "NodeCompleted",
    "ProcessPoolBackend",
    "ProgressPrinter",
    "RunCompleted",
    "RunStarted",
    "SerialBackend",
    "ThreadPoolBackend",
    "Shard",
    "ShardCompleted",
    "ShardResult",
    "Telemetry",
    "TrialPlan",
    "TrialRuntime",
    "default_shard_size",
    "default_start_method",
    "fuse",
    "resolve_backend",
]
