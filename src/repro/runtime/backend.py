"""Execution backends: where a plan's shards actually run.

Both backends implement the one-method :class:`Executor` interface —
take a shard function and a list of shards, yield a
:class:`ShardResult` per shard as each completes (possibly out of
order) — so everything above them (checkpointing, telemetry, result
assembly) is backend-agnostic.

:class:`ProcessPoolBackend` uses a fork-context ``multiprocessing``
pool and passes the shard function to workers through the pool
initializer, which fork inherits rather than pickles.  Campaign trial
functions are typically closures over lambdas (dataset generators,
preprocessing arms) that could never cross a pickle boundary; fork
inheritance lets exactly the same campaign objects run serially or in
parallel.
"""

from __future__ import annotations

import multiprocessing
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.runtime.plan import Shard

#: A shard function: runs every trial in a shard, returns their values
#: in trial order.
ShardFn = Callable[[Shard], list]


@dataclass(frozen=True)
class ShardResult:
    """One completed shard.

    Attributes:
        index: the shard's position in its plan.
        values: per-trial results in trial order.
        elapsed_s: wall-clock seconds spent running the shard (measured
            inside the worker, so it excludes queueing).
    """

    index: int
    values: list
    elapsed_s: float


class Executor(ABC):
    """Interface every execution backend implements.

    Attributes:
        jobs: worker count (1 for serial backends).
    """

    jobs: int = 1

    @abstractmethod
    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        """Run *shard_fn* over *shards*, yielding results as they finish.

        Results may arrive out of shard order; callers reassemble by
        ``ShardResult.index``.
        """

    def describe(self) -> str:
        """Human-readable backend identity for telemetry."""
        return f"{type(self).__name__}(jobs={self.jobs})"


def _timed_shard(shard_fn: ShardFn, shard: Shard) -> ShardResult:
    start = time.perf_counter()
    values = shard_fn(shard)
    return ShardResult(
        index=shard.index, values=list(values), elapsed_s=time.perf_counter() - start
    )


class SerialBackend(Executor):
    """Runs every shard in the calling process, in plan order."""

    jobs = 1

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        for shard in shards:
            yield _timed_shard(shard_fn, shard)


#: Worker-process slot for the inherited shard function; set by
#: :func:`_init_worker` in each pool worker.
_WORKER_SHARD_FN: ShardFn | None = None


def _init_worker(shard_fn: ShardFn) -> None:
    global _WORKER_SHARD_FN
    _WORKER_SHARD_FN = shard_fn


def _run_worker_shard(shard: Shard) -> ShardResult:
    assert _WORKER_SHARD_FN is not None, "pool worker not initialised"
    return _timed_shard(_WORKER_SHARD_FN, shard)


class ProcessPoolBackend(Executor):
    """Runs shards across a fork-context multiprocessing pool.

    Args:
        jobs: number of worker processes (>= 1).
        start_method: multiprocessing start method; only ``fork``
            supports non-picklable trial functions, so it is the
            default and the only method accepted unless the shard
            function is known to be picklable.
    """

    def __init__(self, jobs: int, start_method: str = "fork") -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()})"
            )
        self.jobs = jobs
        self.start_method = start_method

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        shards = list(shards)
        if not shards:
            return
        n_workers = min(self.jobs, len(shards))
        if n_workers == 1:
            # One worker cannot beat in-process execution; skip the pool.
            yield from SerialBackend().run_shards(shard_fn, shards)
            return
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(
            processes=n_workers, initializer=_init_worker, initargs=(shard_fn,)
        ) as pool:
            yield from pool.imap_unordered(_run_worker_shard, shards)
