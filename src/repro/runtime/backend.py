"""Execution backends: where a plan's shards actually run.

Both backends implement the one-method :class:`Executor` interface —
take a shard function and a list of shards, yield a
:class:`ShardResult` per shard as each completes (possibly out of
order) — so everything above them (checkpointing, telemetry, result
assembly) is backend-agnostic.

:class:`ProcessPoolBackend` prefers a fork-context ``multiprocessing``
pool and passes the shard function to workers through the pool
initializer, which fork inherits rather than pickles.  Campaign trial
functions are typically closures over lambdas (dataset generators,
preprocessing arms) that could never cross a pickle boundary; fork
inheritance lets exactly the same campaign objects run serially or in
parallel.  Where fork is unavailable (macOS with threads, Windows) the
backend falls back to the platform's spawn context, which pickles the
initializer arguments — shard functions must then be picklable
(module-level functions, or closures rebuilt worker-side from
picklable specs).  A pre-flight pickle check catches unpicklable shard
functions before any worker starts: the backend warns once per process
with the underlying pickle failure reason and degrades to in-process
serial execution, so the run still completes (values are backend-
independent) instead of deadlocking the pool or dying mid-campaign.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import warnings
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import Future, ThreadPoolExecutor, as_completed
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.runtime.plan import Shard

#: A shard function: runs every trial in a shard, returns their values
#: in trial order — either a bare list, or a ``(values, meta)`` tuple
#: when the shard has side data (e.g. worker cache counters) to ship
#: back alongside the values.
ShardFn = Callable[[Shard], list]


@dataclass(frozen=True)
class ShardResult:
    """One completed shard.

    Attributes:
        index: the shard's position in its plan.
        values: per-trial results in trial order.
        elapsed_s: wall-clock seconds spent running the shard (measured
            inside the worker, so it excludes queueing).
        meta: optional worker-side side data (e.g. cache counter
            deltas); never checkpointed.
    """

    index: int
    values: list
    elapsed_s: float
    meta: dict | None = None


class Executor(ABC):
    """Interface every execution backend implements.

    Attributes:
        jobs: worker count (1 for serial backends).
        crosses_process_boundary: True when shards may run in other
            processes, so artifacts shared with workers must travel
            through inherited or shared memory, not object references.
        ships_artifacts: True when the backend moves artifacts to its
            workers itself (content-addressed pulls over its own
            transport), so callers must not pre-broadcast payloads
            through shared memory — keys alone suffice.
    """

    jobs: int = 1
    crosses_process_boundary: bool = False
    ships_artifacts: bool = False

    @abstractmethod
    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        """Run *shard_fn* over *shards*, yielding results as they finish.

        Results may arrive out of shard order; callers reassemble by
        ``ShardResult.index``.
        """

    def describe(self) -> str:
        """Human-readable backend identity for telemetry."""
        return f"{type(self).__name__}(jobs={self.jobs})"


def _timed_shard(shard_fn: ShardFn, shard: Shard) -> ShardResult:
    start = time.perf_counter()
    out = shard_fn(shard)
    meta = None
    if isinstance(out, tuple):  # (values, meta) — see ShardFn docs
        values, meta = out
    else:
        values = out
    return ShardResult(
        index=shard.index,
        values=list(values),
        elapsed_s=time.perf_counter() - start,
        meta=meta,
    )


class SerialBackend(Executor):
    """Runs every shard in the calling process, in plan order."""

    jobs = 1

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        for shard in shards:
            yield _timed_shard(shard_fn, shard)


class ThreadPoolBackend(Executor):
    """Runs shards (or ad-hoc jobs) across a persistent thread pool.

    Threads share the calling process, so shard functions need no
    pickling and shared state (caches, pipelines) needs no IPC; the
    GIL is the ceiling, but the hot kernels are NumPy calls that
    release it, so CPU-bound shards still overlap usefully.  This is
    the backend the serve layer multiplexes its per-tenant stream
    sessions onto: :meth:`submit` exposes the pool for one-off jobs
    (an asyncio loop bridges them with ``asyncio.wrap_future``), while
    :meth:`run_shards` keeps the backend drop-in compatible with the
    trial runtime.

    The pool is created lazily on first use and persists across calls
    (a long-running service must not pay thread startup per chunk);
    call :meth:`shutdown` when done.

    Args:
        jobs: number of worker threads (>= 1).
    """

    crosses_process_boundary = False

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: ThreadPoolExecutor | None = None

    @property
    def pool(self) -> ThreadPoolExecutor:
        """The lazily created executor backing this backend."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-worker"
            )
        return self._pool

    def submit(self, fn: Callable, /, *args, **kwargs) -> "Future":
        """Run ``fn(*args, **kwargs)`` on the pool; returns its future."""
        return self.pool.submit(fn, *args, **kwargs)

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        futures = [
            self.pool.submit(_timed_shard, shard_fn, shard) for shard in shards
        ]
        for future in as_completed(futures):
            yield future.result()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool (idempotent); a later use recreates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None


#: Worker-process slot for the inherited shard function; set by
#: :func:`_init_worker` in each pool worker.
_WORKER_SHARD_FN: ShardFn | None = None


def _init_worker(shard_fn: ShardFn) -> None:
    global _WORKER_SHARD_FN
    _WORKER_SHARD_FN = shard_fn


def _run_worker_shard(shard: Shard) -> ShardResult:
    assert _WORKER_SHARD_FN is not None, "pool worker not initialised"
    return _timed_shard(_WORKER_SHARD_FN, shard)


#: Once-per-process latch for the spawn pre-flight fallback warning, so
#: a sweep with hundreds of runs reports the degradation exactly once.
_SPAWN_FALLBACK_WARNED = False


def default_start_method() -> str:
    """The platform's best start method: ``fork`` when available.

    Fork inherits non-picklable shard functions; platforms without it
    (Windows, and macOS once threads exist) fall back to ``spawn``,
    where shard functions must be picklable.
    """
    available = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in available else "spawn"


#: Backend names accepted by every repro CLI's ``--backend`` flag.
BACKEND_CHOICES = ("serial", "thread", "process", "cluster")


def resolve_backend(
    name: str | None = None,
    jobs: int = 1,
    threads: int = 0,
    workers: str | None = None,
) -> Executor:
    """Build an :class:`Executor` from the uniform CLI flags.

    Every repro CLI exposes the same surface — ``--backend
    {serial,thread,process,cluster}`` plus the sizing flags ``--jobs``
    (processes), ``--threads`` (threads), and ``--workers host:port,…``
    (cluster) — and resolves it here, so flag semantics cannot drift
    between entry points.

    Args:
        name: explicit backend choice; None infers one from the sizing
            flags for backward compatibility (``--threads N`` → thread,
            ``--jobs N>1`` → process, otherwise serial).
        jobs: worker-process count for the process backend.
        threads: worker-thread count for the thread backend.
        workers: cluster worker addresses (``host:port,host:port``);
            required by — and only meaningful for — the cluster
            backend.

    Raises:
        ConfigurationError: unknown name, missing/invalid sizing for
            the chosen backend, or ``--workers`` without ``cluster``.
    """
    if name is None:
        if workers:
            name = "cluster"
        elif threads:
            name = "thread"
        elif jobs > 1:
            name = "process"
        else:
            name = "serial"
    if name != "cluster" and workers:
        raise ConfigurationError(
            f"--workers only applies to the cluster backend, not {name!r}"
        )
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(threads or max(jobs, 1))
    if name == "process":
        return ProcessPoolBackend(max(jobs, 1))
    if name == "cluster":
        if not workers:
            raise ConfigurationError(
                "the cluster backend needs --workers host:port[,host:port…] "
                "(start them with 'repro worker')"
            )
        from repro.cluster import ClusterBackend  # deferred: repro.cluster
        # imports this module, so a top-level import would be circular.

        return ClusterBackend(workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; choose one of {', '.join(BACKEND_CHOICES)}"
    )


class ProcessPoolBackend(Executor):
    """Runs shards across a multiprocessing pool.

    Args:
        jobs: number of worker processes (>= 1).
        start_method: multiprocessing start method; default picks
            :func:`default_start_method` (``fork`` where available,
            else ``spawn``).  Only ``fork`` supports non-picklable
            shard functions; under ``spawn``/``forkserver`` the shard
            function crosses a pickle boundary, so a pre-flight pickle
            check runs before any worker starts and an unpicklable
            shard function degrades to in-process serial execution
            with a once-per-process :class:`RuntimeWarning` naming the
            pickle failure reason.
    """

    crosses_process_boundary = True

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if start_method is None:
            start_method = default_start_method()
        if start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()})"
            )
        self.jobs = jobs
        self.start_method = start_method

    def run_shards(
        self, shard_fn: ShardFn, shards: Sequence[Shard]
    ) -> Iterator[ShardResult]:
        shards = list(shards)
        if not shards:
            return
        n_workers = min(self.jobs, len(shards))
        if n_workers == 1:
            # One worker cannot beat in-process execution; skip the pool.
            yield from SerialBackend().run_shards(shard_fn, shards)
            return
        if self.start_method != "fork":
            try:
                pickle.dumps(shard_fn)
            except Exception as exc:
                global _SPAWN_FALLBACK_WARNED
                if not _SPAWN_FALLBACK_WARNED:
                    _SPAWN_FALLBACK_WARNED = True
                    warnings.warn(
                        f"shard function is not picklable under the "
                        f"{self.start_method!r} start method "
                        f"({type(exc).__name__}: {exc}); falling back to "
                        f"in-process serial execution — use the fork start "
                        f"method or a picklable (module-level) trial "
                        f"function for parallel speedup",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                yield from SerialBackend().run_shards(shard_fn, shards)
                return
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(
            processes=n_workers, initializer=_init_worker, initargs=(shard_fn,)
        ) as pool:
            yield from pool.imap_unordered(_run_worker_shard, shards)
