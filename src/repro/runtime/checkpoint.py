"""JSONL checkpoint store: crash-safe record of completed shards.

Each completed shard appends one self-contained JSON line::

    {"key": "fig5/point-3", "fingerprint": "n=100;seed=2003;shard=7;v1",
     "shard": 4, "values": [0.0123, ...], "elapsed_s": 0.8}

Append-only JSONL makes interrupted writes harmless: a run killed
mid-line leaves one trailing partial record, which the loader skips,
and every earlier line is still intact.  On resume the runtime asks
for the shards recorded under the same ``(key, fingerprint)`` pair and
runs only the rest; a checkpoint written by a parallel run resumes
under a serial one (and vice versa) because plans are sharded
identically regardless of backend.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ConfigurationError


class CheckpointStore:
    """Append-only JSONL record of completed shards.

    Args:
        path: checkpoint file; created (with parents) on first record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def completed(self, key: str, fingerprint: str) -> dict[int, list]:
        """Shard index → values for shards recorded under this run.

        Records whose ``key`` or ``fingerprint`` differ are ignored, so
        one store can hold many runs and a changed plan (different
        trial count, seed, or shard size) silently invalidates stale
        entries instead of resuming into the wrong campaign.
        """
        done: dict[int, list] = {}
        for record in self._records():
            if record.get("key") == key and record.get("fingerprint") == fingerprint:
                try:
                    done[int(record["shard"])] = list(record["values"])
                except (KeyError, TypeError, ValueError):
                    continue  # malformed record: treat the shard as not done
        return done

    def record(
        self,
        key: str,
        fingerprint: str,
        shard_index: int,
        values: list,
        elapsed_s: float = 0.0,
    ) -> None:
        """Append one completed shard and flush it to disk."""
        line = json.dumps(
            {
                "key": key,
                "fingerprint": fingerprint,
                "shard": int(shard_index),
                "values": list(values),
                "elapsed_s": float(elapsed_s),
            }
        )
        if "\n" in line:
            raise ConfigurationError("checkpoint record must be a single line")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()

    def clear(self) -> None:
        """Delete the checkpoint file (start the campaign from scratch)."""
        self.path.unlink(missing_ok=True)

    def _records(self) -> list[dict]:
        if not self.path.exists():
            return []
        records = []
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # partial line from an interrupted run
                if isinstance(record, dict):
                    records.append(record)
        return records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointStore({str(self.path)!r})"
