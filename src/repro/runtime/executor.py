"""The trial runtime: plan → (checkpoint filter) → backend → assemble.

:class:`TrialRuntime` is the one entry point the rest of the library
uses.  ``run(trial_fn, n_trials, seed)`` builds a :class:`TrialPlan`,
skips shards already recorded in the checkpoint store, dispatches the
rest to the configured backend, records each completion, emits
telemetry, and returns the per-trial values in trial order —
bit-identical for every backend because the values are reassembled by
shard index and every trial's ``Generator`` is built from the same
``SeedSequence`` child.
"""

from __future__ import annotations

import itertools
import os
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.cache.sharedmem import SharedArtifactMap
from repro.cache.store import ArtifactCache
from repro.runtime.backend import Executor, SerialBackend
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.fusion import FusedGroup
from repro.runtime.plan import Shard, TrialPlan
from repro.runtime.telemetry import (
    CacheSnapshot,
    RunCompleted,
    RunStarted,
    ShardCompleted,
    Telemetry,
)

#: A trial function: fresh per-trial ``Generator`` in, one JSON-able
#: result out (a float, or a list of floats for multi-statistic trials).
TrialFn = Callable[[np.random.Generator], object]


def _jsonable(value: object) -> object:
    """Coerce a trial result to something JSON round-trips exactly."""
    if isinstance(value, (list, tuple, np.ndarray)):
        return [float(v) for v in value]
    return float(value)  # type: ignore[arg-type]


class _TrialShardFn:
    """Runs one shard of independently seeded trials.

    A class (not a closure) so the object itself pickles; whether it
    can *ship* depends only on ``trial_fn`` — lambdas and closures
    cross to cluster workers by value through
    :mod:`repro.cluster.shipping`, and to fork-context pool workers by
    inheritance, exactly as before.
    """

    def __init__(self, trial_fn: TrialFn) -> None:
        self.trial_fn = trial_fn

    def __call__(self, shard: Shard) -> list:
        return [
            _jsonable(self.trial_fn(np.random.default_rng(seed)))
            for seed in shard.seeds
        ]


class _FusedShardFn:
    """Shard function for a fused group: produce once, evaluate all arms.

    Each trial's value is the *list* of its per-arm values in arm
    order.  When an *overlay* (the parent's shared-memory broadcast)
    is given, it is attached to the cache on entry, so pool workers
    serve warm artifacts zero-copy instead of reproducing them.  When
    the shard ran in a different process than the one that built this
    object, the worker's cache-counter delta rides back as shard meta
    so the parent's telemetry counts worker-side hits.

    :meth:`for_cluster` strips the cache and overlay (neither survives
    a TCP boundary); on a cluster worker the shard instead produces
    through the worker's own local artifact cache when one is active
    (:func:`repro.cluster.store.current_store`), so repeated trials on
    a warm worker still reuse pristine datasets and fault realizations.
    """

    def __init__(
        self,
        group: FusedGroup,
        cache: ArtifactCache | None,
        overlay: SharedArtifactMap | None,
    ) -> None:
        self.group = group
        self.cache = cache
        self.overlay = overlay
        self.parent_pid = os.getpid()

    def for_cluster(self) -> "_FusedShardFn":
        return _FusedShardFn(self.group, None, None)

    def _active_cache(self) -> ArtifactCache | None:
        if self.cache is not None:
            return self.cache
        from repro.cluster.store import current_store

        store = current_store()
        return store.cache if store is not None else None

    def __call__(self, shard: Shard) -> object:
        cache = self._active_cache()
        if cache is not None and self.overlay is not None:
            cache.attach_overlay(self.overlay)
        before = cache.counters() if cache is not None else None
        values = []
        for seed in shard.seeds:
            pristine, corrupted = self.group.pipeline.produce(seed, cache)
            values.append(
                [
                    _jsonable(arm.evaluate(corrupted, pristine))
                    for arm in self.group.arms
                ]
            )
        if cache is not None and os.getpid() != self.parent_pid:
            after = cache.counters()
            delta = {name: after[name] - before[name] for name in after}
            return values, {"cache_counters": delta}
        return values


class TrialRuntime:
    """Runs seeded trial campaigns through a pluggable backend.

    Args:
        backend: execution backend; :class:`SerialBackend` when None.
        checkpoint: optional :class:`CheckpointStore`; when set,
            completed shards are recorded there and skipped on re-runs.
        telemetry: optional :class:`Telemetry` hub to emit progress on.
        shard_size: trials per shard; defaults per-plan to
            :func:`repro.runtime.plan.default_shard_size`.
        cache: optional :class:`~repro.cache.ArtifactCache` serving
            pristine datasets and fault realizations to fused runs
            (see :meth:`run_fused`); unfused :meth:`run` ignores it.
    """

    def __init__(
        self,
        backend: Executor | None = None,
        checkpoint: CheckpointStore | None = None,
        telemetry: Telemetry | None = None,
        shard_size: int | None = None,
        cache: ArtifactCache | None = None,
    ) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.checkpoint = checkpoint
        self.telemetry = telemetry
        self.shard_size = shard_size
        self.cache = cache
        self._auto_keys = itertools.count()

    def run(
        self,
        trial_fn: TrialFn,
        n_trials: int,
        seed: int = 0,
        key: str | None = None,
    ) -> list:
        """Run *n_trials* seeded trials of *trial_fn*; values in trial order.

        Args:
            trial_fn: ``Generator -> float | sequence of floats``.
            n_trials: number of independently seeded trials.
            seed: root seed for the plan's ``SeedSequence``.
            key: stable identity for checkpointing; autogenerated
                (``run-0000``, ``run-0001``, …) when omitted, which is
                deterministic as long as calls happen in a fixed order.
        """
        if key is None:
            key = f"run-{next(self._auto_keys):04d}"
        plan = TrialPlan(n_trials, seed, self.shard_size)
        return self._execute(plan, _TrialShardFn(trial_fn), key)

    def run_fused(
        self,
        group: FusedGroup,
        key: str | None = None,
    ) -> dict[str, list]:
        """Run a fused multi-arm group; arm name → values in trial order.

        Generation and injection run **once per trial** through the
        runtime's artifact cache (when configured); every arm of
        *group* evaluates against the same read-only arrays.  The
        per-arm value lists are bit-identical to running each arm as
        its own unfused :meth:`run` plan, because artifact production
        replays the canonical trial RNG protocol exactly (see
        :meth:`repro.runtime.fusion.ArtifactPipeline.produce`).

        When the backend spans processes and the cache holds warm
        entries for the group's trials, those artifacts are broadcast
        to the workers through one shared-memory segment (zero-copy)
        instead of being re-produced or pickled per shard; the segment
        is always unlinked before this method returns, even on error
        or worker death.

        Args:
            group: the fused schedule (see :func:`repro.runtime.fusion.fuse`).
            key: checkpoint identity; autogenerated like :meth:`run`.
        """
        if key is None:
            key = f"run-{next(self._auto_keys):04d}"
        plan = TrialPlan(
            group.n_trials, group.seed, self.shard_size, variant=group.plan_variant
        )
        broadcast = None
        overlay = None
        broadcast_bytes = 0
        bind = getattr(self.backend, "bind_artifact_source", None)
        if callable(bind) and self.cache is not None:
            bind(self.cache)
        if (
            self.cache is not None
            and self.backend.crosses_process_boundary
            and not getattr(self.backend, "ships_artifacts", False)
            and self.backend.jobs > 1
        ):
            warm = self._warm_entries(group, plan)
            if warm:
                broadcast = SharedArtifactMap.broadcast(warm)
                overlay = broadcast.worker_view()
                broadcast_bytes = broadcast.nbytes
        def merge_worker_counters(result) -> None:
            if self.cache is not None and result.meta:
                delta = result.meta.get("cache_counters")
                if delta:
                    self.cache.merge_counters(delta)

        try:
            shard_fn = _FusedShardFn(group, self.cache, overlay)
            values = self._execute(
                plan, shard_fn, key, result_hook=merge_worker_counters
            )
        finally:
            if self.cache is not None:
                self.cache.attach_overlay(None)
            if overlay is not None:
                # Release any views materialised in-process (the jobs=1
                # serial fallback runs shards in the parent) so closing
                # the segment below never sees exported pointers.
                overlay.shutdown()
            if broadcast is not None:
                broadcast.shutdown()
        if self.cache is not None:
            stats = self.cache.stats()
            self._emit(
                CacheSnapshot(
                    key=key,
                    hits=stats.hits,
                    misses=stats.misses,
                    hit_rate=stats.hit_rate,
                    bytes_saved=stats.bytes_saved,
                    overlay_hits=stats.overlay_hits,
                    memory_hits=stats.memory_hits,
                    disk_hits=stats.disk_hits,
                    memory_bytes=stats.memory_bytes,
                    broadcast_bytes=broadcast_bytes,
                )
            )
        return {
            arm.name: [trial_values[i] for trial_values in values]
            for i, arm in enumerate(group.arms)
        }

    def _warm_entries(self, group: FusedGroup, plan: TrialPlan) -> dict:
        """Cache entries already warm for *plan*'s trials (no stat churn)."""
        assert self.cache is not None
        warm = {}
        for shard in plan.shards:
            for seed in shard.seeds:
                keys = [group.pipeline.pristine_key(seed)]
                if group.pipeline.fault is not None:
                    keys.append(group.pipeline.realization_key(seed))
                for cache_key in keys:
                    entry = self.cache.peek(cache_key)
                    if entry is not None:
                        warm[cache_key] = entry
        return warm

    def _execute(
        self,
        plan: TrialPlan,
        shard_fn: Callable[[Shard], object],
        key: str,
        result_hook: Callable[..., None] | None = None,
    ) -> list:
        """Plan → (checkpoint filter) → backend → assembled trial values.

        *result_hook*, when given, sees every freshly run
        :class:`~repro.runtime.backend.ShardResult` (not restored ones)
        before its values are recorded — the channel worker-side meta
        travels through.
        """
        restored: dict[int, list] = {}
        if self.checkpoint is not None:
            restored = {
                index: values
                for index, values in self.checkpoint.completed(
                    key, plan.fingerprint
                ).items()
                if 0 <= index < plan.n_shards
            }
        pending = [shard for shard in plan.shards if shard.index not in restored]

        started_at = time.perf_counter()
        self._emit(
            RunStarted(
                key=key,
                n_trials=plan.n_trials,
                n_shards=plan.n_shards,
                n_pending=len(pending),
                backend=self.backend.describe(),
            )
        )
        for shard in plan.shards:
            if shard.index in restored:
                self._emit(
                    ShardCompleted(
                        key=key,
                        shard_index=shard.index,
                        n_trials=shard.n_trials,
                        elapsed_s=0.0,
                        trials_per_sec=0.0,
                        from_checkpoint=True,
                    )
                )

        results: dict[int, list] = dict(restored)
        for result in self.backend.run_shards(shard_fn, pending):
            if result_hook is not None:
                result_hook(result)
            results[result.index] = result.values
            if self.checkpoint is not None:
                self.checkpoint.record(
                    key,
                    plan.fingerprint,
                    result.index,
                    result.values,
                    result.elapsed_s,
                )
            n_in_shard = plan.shards[result.index].n_trials
            self._emit(
                ShardCompleted(
                    key=key,
                    shard_index=result.index,
                    n_trials=n_in_shard,
                    elapsed_s=result.elapsed_s,
                    trials_per_sec=(
                        n_in_shard / result.elapsed_s if result.elapsed_s > 0 else 0.0
                    ),
                    from_checkpoint=False,
                )
            )

        values = self._assemble(plan, results)
        elapsed = time.perf_counter() - started_at
        self._emit(
            RunCompleted(
                key=key,
                n_trials=plan.n_trials,
                n_shards_run=len(pending),
                n_shards_restored=len(restored),
                elapsed_s=elapsed,
                trials_per_sec=plan.n_trials / elapsed if elapsed > 0 else 0.0,
            )
        )
        return values

    @staticmethod
    def _assemble(plan: TrialPlan, results: dict[int, list]) -> list:
        values: list = []
        for shard in plan.shards:
            shard_values = results[shard.index]
            if len(shard_values) != shard.n_trials:
                # A foreign/corrupt checkpoint record slipped through;
                # fail loudly rather than silently mis-assemble.
                raise RuntimeError(
                    f"shard {shard.index} returned {len(shard_values)} values, "
                    f"expected {shard.n_trials}"
                )
            values.extend(shard_values)
        return values

    def _emit(self, event) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event)
