"""Plan fusion: run generation + injection once, evaluate every arm.

The unfused campaign protocol runs one :class:`~repro.runtime.TrialPlan`
per arm (Λ value, algorithm baseline, no-preprocessing control), and
every arm's trial re-generates the pristine dataset and re-runs fault
injection — even though those artifacts are bit-identical across arms
of the same (seed, Γ) grid point, because every arm's trial ``i`` uses
the same ``SeedSequence`` child and draws from it in the same order.

This module makes that sharing explicit:

* :class:`DatasetSpec` / :class:`FaultSpec` describe artifact
  production declaratively, with canonical key parts for the
  content-addressed cache;
* :class:`ArtifactPipeline` produces a trial's (pristine, corrupted)
  pair through an :class:`~repro.cache.ArtifactCache`, capturing the
  generator state alongside the pristine dataset so that a cache hit
  leaves the RNG stream exactly where a cache miss would have — the
  invariant that keeps fused, cached, and unfused runs bit-identical;
* :func:`fuse` groups per-arm :class:`ArmRequest` entries that share a
  (dataset, fault-realization) fingerprint into :class:`FusedGroup`
  schedules, which :meth:`repro.runtime.TrialRuntime.run_fused`
  executes with one production pass per trial.

Arms must be *pure*: ``evaluate(corrupted, pristine)`` may not consume
random state or mutate its (read-only) inputs.  Under that contract a
fused run returns exactly the values the per-arm unfused plans would.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cache.fingerprint import fingerprint
from repro.cache.store import ArtifactCache, CachedArtifact
from repro.exceptions import ConfigurationError
from repro.faults.injector import FaultInjector, derive_injector_seed

#: An arm evaluator: ``(corrupted, pristine) -> float | list of floats``.
ArmFn = Callable[[np.ndarray, np.ndarray], object]


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative pristine-dataset production.

    Attributes:
        build: ``rng -> pristine array``; must be a deterministic
            function of its configuration and the generator stream.
        key_parts: canonical identity of the generator configuration
            (dataclasses/tuples/scalars — see
            :func:`repro.cache.fingerprint.canonicalize`).  Every field
            that changes the output must be represented here.
    """

    build: Callable[[np.random.Generator], np.ndarray]
    key_parts: tuple


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault-realization production.

    Attributes:
        model: any object with ``corrupt(data, rng)``.
        key_parts: canonical identity of the fault parameters.
    """

    model: object
    key_parts: tuple

    @classmethod
    def of(cls, model) -> "FaultSpec":
        """Derive the spec from a model exposing ``cache_key_parts()``."""
        parts = getattr(model, "cache_key_parts", None)
        if parts is None:
            raise ConfigurationError(
                f"{type(model).__name__} does not expose cache_key_parts(); "
                "construct FaultSpec with explicit key_parts instead"
            )
        return cls(model=model, key_parts=tuple(parts()))


@dataclass(frozen=True)
class Arm:
    """One preprocessing arm evaluated against the shared artifacts.

    Attributes:
        name: unique label within its fused group (also the result key).
        evaluate: pure ``(corrupted, pristine) -> value`` — no RNG, no
            mutation of the read-only inputs.
    """

    name: str
    evaluate: ArmFn


@dataclass(frozen=True)
class ArtifactPipeline:
    """Generate → corrupt production line behind a fused trial.

    Attributes:
        dataset: pristine-dataset spec.
        fault: fault-realization spec; None runs arms on the pristine
            data (corrupted is the pristine array itself).
    """

    dataset: DatasetSpec
    fault: FaultSpec | None = None

    def base_fingerprint(self) -> str:
        """Identity of the production line, independent of the trial seed.

        Two :class:`ArmRequest` entries may fuse only when this matches
        — same generator config *and* same fault parameters.
        """
        fault_parts = self.fault.key_parts if self.fault is not None else None
        return fingerprint("pipeline", self.dataset.key_parts, fault_parts)

    def pristine_key(self, seed: np.random.SeedSequence) -> str:
        """Cache key of the trial's pristine dataset."""
        return fingerprint("pristine", self.dataset.key_parts, seed)

    def realization_key(self, seed: np.random.SeedSequence) -> str:
        """Cache key of the trial's corrupted fault realization."""
        assert self.fault is not None
        return fingerprint(
            "realization", self.dataset.key_parts, self.fault.key_parts, seed
        )

    def produce(
        self,
        seed: np.random.SeedSequence,
        cache: ArtifactCache | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The trial's (pristine, corrupted) pair, through the cache.

        Replays the canonical unfused trial protocol exactly: build the
        dataset from ``default_rng(seed)``, then derive the injector
        seed with one :func:`~repro.faults.injector.derive_injector_seed`
        draw from the *same* stream.  A pristine cache hit restores the
        captured post-generation RNG state before that draw, so hits
        and misses leave the stream in identical positions and the
        realization is bit-identical either way.
        """
        rng = np.random.default_rng(seed)
        pristine = None
        if cache is not None:
            entry = cache.get(self.pristine_key(seed))
            if entry is not None:
                pristine = entry.arrays["pristine"]
                rng.bit_generator.state = entry.meta["rng_state"]
        if pristine is None:
            pristine = self.dataset.build(rng)
            if cache is not None:
                cache.put(
                    self.pristine_key(seed),
                    CachedArtifact.build(
                        {"pristine": pristine},
                        {"rng_state": rng.bit_generator.state},
                    ),
                )
            view = np.asarray(pristine).view()
            view.flags.writeable = False
            pristine = view
        if self.fault is None:
            return pristine, pristine

        corrupted = None
        realization_key = self.realization_key(seed)
        if cache is not None:
            entry = cache.get(realization_key)
            if entry is not None:
                corrupted = entry.arrays["corrupted"]
        if corrupted is None:
            injector = FaultInjector(self.fault.model, seed=derive_injector_seed(rng))
            corrupted, _ = injector.inject(np.asarray(pristine))
            if cache is not None:
                cache.put(
                    realization_key,
                    CachedArtifact.build({"corrupted": corrupted}),
                )
            view = np.asarray(corrupted).view()
            view.flags.writeable = False
            corrupted = view
        return pristine, corrupted


@dataclass(frozen=True)
class ArmRequest:
    """One logical single-arm trial plan, before fusion.

    Attributes:
        arm: the preprocessing arm.
        pipeline: the artifact production line the arm evaluates against.
        n_trials: trial count of the arm's plan.
        seed: root seed of the arm's plan.
    """

    arm: Arm
    pipeline: ArtifactPipeline
    n_trials: int
    seed: int


@dataclass(frozen=True)
class FusedGroup:
    """Arm plans fused onto one shared artifact production pass.

    Attributes:
        pipeline: the shared production line.
        arms: the arms to evaluate per trial, in request order.
        n_trials: shared trial count.
        seed: shared root seed.
    """

    pipeline: ArtifactPipeline
    arms: tuple[Arm, ...]
    n_trials: int
    seed: int

    def __post_init__(self) -> None:
        names = [arm.name for arm in self.arms]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate arm names in fused group: {names}")
        if not self.arms:
            raise ConfigurationError("a fused group needs at least one arm")

    @property
    def arm_names(self) -> tuple[str, ...]:
        return tuple(arm.name for arm in self.arms)

    @property
    def plan_variant(self) -> str:
        """Plan-fingerprint variant tag for checkpoint compatibility.

        Fused shard records store one value *list* per trial (one entry
        per arm), so they must never be resumed into an unfused plan —
        or into a fused plan with different arms.  Folding the arm
        names into the plan fingerprint guarantees both.
        """
        return "fused:" + fingerprint(list(self.arm_names))[:12]


def fuse(requests: Sequence[ArmRequest]) -> list[FusedGroup]:
    """Group arm requests that share a (dataset, fault) fingerprint.

    Requests fuse when their pipelines' :meth:`base_fingerprint`, trial
    count, and root seed all match: their per-trial artifacts are then
    provably identical, so generation and injection run once per group.
    Groups come back in first-request order, single-arm groups included
    (they simply gain the caching path).
    """
    groups: dict[tuple, list[ArmRequest]] = {}
    for request in requests:
        if request.n_trials < 1:
            raise ConfigurationError(
                f"n_trials must be >= 1, got {request.n_trials}"
            )
        signature = (
            request.pipeline.base_fingerprint(),
            request.n_trials,
            request.seed,
        )
        groups.setdefault(signature, []).append(request)
    fused = []
    for members in groups.values():
        fused.append(
            FusedGroup(
                pipeline=members[0].pipeline,
                arms=tuple(m.arm for m in members),
                n_trials=members[0].n_trials,
                seed=members[0].seed,
            )
        )
    return fused
