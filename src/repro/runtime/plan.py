"""Trial planning: deterministic sharding of a campaign's N trials.

A :class:`TrialPlan` splits ``n_trials`` independently seeded trials
into contiguous :class:`Shard` chunks.  Per-trial seeds come from
``numpy.random.SeedSequence(seed).spawn(n_trials)`` — the same spawn
tree regardless of how the trials are sharded or which backend runs
them — so a parallel run is bit-identical to a serial one, and a
resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

#: Target shard count for :func:`default_shard_size`.  Chosen purely as
#: a function of ``n_trials`` (never of the backend's worker count) so
#: that plans — and therefore checkpoint files — are interchangeable
#: between serial and parallel runs of the same campaign.
_TARGET_SHARDS = 16


def default_shard_size(n_trials: int) -> int:
    """Shard size aiming for ~:data:`_TARGET_SHARDS` shards.

    Small campaigns get one trial per shard (finest checkpoint
    granularity); large ones amortise dispatch overhead over bigger
    chunks.
    """
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    return max(1, math.ceil(n_trials / _TARGET_SHARDS))


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk of a campaign's trials.

    Attributes:
        index: position of this shard within the plan.
        start: index of the shard's first trial in the campaign.
        stop: one past the shard's last trial.
        seeds: the ``SeedSequence`` children for trials
            ``start..stop-1``, in trial order.
    """

    index: int
    start: int
    stop: int
    seeds: tuple[np.random.SeedSequence, ...]

    @property
    def n_trials(self) -> int:
        return self.stop - self.start


class TrialPlan:
    """Deterministic split of ``n_trials`` seeded trials into shards.

    Args:
        n_trials: total number of trials (>= 1).
        seed: root seed; children are spawned from
            ``SeedSequence(seed)`` exactly as a serial loop would.
        shard_size: trials per shard; defaults to
            :func:`default_shard_size`.
        variant: optional tag folded into :attr:`fingerprint` when the
            plan's per-trial *value layout* differs from the default
            one-scalar-per-trial protocol (fused multi-arm plans tag
            themselves here), so checkpoints recorded under one layout
            are never resumed into another.
    """

    def __init__(
        self,
        n_trials: int,
        seed: int = 0,
        shard_size: int | None = None,
        variant: str = "",
    ) -> None:
        if n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
        if shard_size is None:
            shard_size = default_shard_size(n_trials)
        if shard_size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
        if ";" in variant:
            raise ConfigurationError(
                f"plan variant must not contain ';', got {variant!r}"
            )
        self.n_trials = n_trials
        self.seed = seed
        self.shard_size = shard_size
        self.variant = variant
        children = np.random.SeedSequence(seed).spawn(n_trials)
        self.shards: tuple[Shard, ...] = tuple(
            Shard(
                index=index,
                start=start,
                stop=min(start + shard_size, n_trials),
                seeds=tuple(children[start : min(start + shard_size, n_trials)]),
            )
            for index, start in enumerate(range(0, n_trials, shard_size))
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def fingerprint(self) -> str:
        """Identity of this plan for checkpoint compatibility checks.

        Two runs may share checkpointed shards only when their
        fingerprints match — same trial count, same root seed, same
        shard boundaries, and same value-layout variant.
        """
        base = f"n={self.n_trials};seed={self.seed};shard={self.shard_size};v1"
        return f"{base};variant={self.variant}" if self.variant else base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrialPlan(n_trials={self.n_trials}, seed={self.seed}, "
            f"shard_size={self.shard_size}, n_shards={self.n_shards})"
        )
