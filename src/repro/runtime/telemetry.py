"""Runtime telemetry: progress and throughput events for subscribers.

The runtime emits one :class:`RunStarted` per ``TrialRuntime.run``
call, one :class:`ShardCompleted` per shard (including shards restored
from a checkpoint, flagged ``from_checkpoint``), and one
:class:`RunCompleted` at the end.  The DAG scheduler
(:mod:`repro.dag`) emits the parallel family :class:`DagStarted` /
:class:`NodeCompleted` / :class:`DagCompleted`, where restoration is
flagged per node (``from_store``) because completed work is detected
from the artifact store rather than a checkpoint file.  Experiments,
the CLI, tests and benchmarks subscribe callbacks on a
:class:`Telemetry` hub; :class:`ProgressPrinter` is the stock
subscriber that renders events as one-line progress messages.
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from dataclasses import dataclass
from typing import TextIO, Union


@dataclass(frozen=True)
class RunStarted:
    """Emitted when a trial run begins, before any shard executes.

    Attributes:
        key: the run's checkpoint key.
        n_trials: total trials in the plan.
        n_shards: total shards in the plan.
        n_pending: shards that will actually run (not checkpointed).
        backend: human-readable backend description.
    """

    key: str
    n_trials: int
    n_shards: int
    n_pending: int
    backend: str


@dataclass(frozen=True)
class ShardCompleted:
    """Emitted as each shard finishes (or is restored from checkpoint).

    Attributes:
        key: the run's checkpoint key.
        shard_index: which shard completed.
        n_trials: trials in this shard.
        elapsed_s: worker-side wall-clock seconds (0 when restored).
        trials_per_sec: shard throughput (0 when restored).
        from_checkpoint: True when the shard was loaded, not run.
    """

    key: str
    shard_index: int
    n_trials: int
    elapsed_s: float
    trials_per_sec: float
    from_checkpoint: bool


@dataclass(frozen=True)
class RunCompleted:
    """Emitted once per run after every shard's values are assembled.

    Attributes:
        key: the run's checkpoint key.
        n_trials: total trials aggregated.
        n_shards_run: shards executed in this process.
        n_shards_restored: shards restored from the checkpoint.
        elapsed_s: end-to-end wall-clock seconds for the run call.
        trials_per_sec: overall throughput including restored shards.
    """

    key: str
    n_trials: int
    n_shards_run: int
    n_shards_restored: int
    elapsed_s: float
    trials_per_sec: float


@dataclass(frozen=True)
class CacheSnapshot:
    """Emitted after a fused run when an artifact cache is attached.

    Counters are cumulative over the cache's lifetime (one cache often
    serves every grid point of a sweep), sampled at run completion.

    Attributes:
        key: the run's checkpoint key.
        hits: lookups served from any cache tier so far.
        misses: lookups that produced artifacts from scratch.
        hit_rate: hits / (hits + misses); 0.0 before any lookup.
        bytes_saved: payload bytes served from cache instead of being
            regenerated.
        overlay_hits: hits served by a shared-memory broadcast overlay.
        memory_hits: hits served by the in-process LRU tier.
        disk_hits: hits served by the on-disk tier.
        memory_bytes: bytes currently held in the LRU tier.
        broadcast_bytes: bytes broadcast to workers over shared memory
            for this run (0 when nothing was warm or the run was
            in-process).
    """

    key: str
    hits: int
    misses: int
    hit_rate: float
    bytes_saved: int
    overlay_hits: int
    memory_hits: int
    disk_hits: int
    memory_bytes: int
    broadcast_bytes: int


@dataclass(frozen=True)
class DagStarted:
    """Emitted when a DAG run begins, after the recovery survey.

    Attributes:
        dag: the graph's name.
        n_nodes: nodes in the (target-restricted) run.
        n_restored: nodes whose output artifacts were found intact in
            the store during the survey — they will not execute.
        backend: human-readable backend description.
    """

    dag: str
    n_nodes: int
    n_restored: int
    backend: str


@dataclass(frozen=True)
class NodeCompleted:
    """Emitted as each DAG node finishes (or is restored from the store).

    Attributes:
        dag: the graph's name.
        name: the node's name.
        kind: the node's declared kind (dataset/fault/score/...).
        index: 1-based completion position within this run.
        n_nodes: nodes in the run, for ``index/n_nodes`` progress.
        elapsed_s: wall-clock seconds for the node's run function
            (0 when restored).
        from_store: True when the node's output artifact was found in
            the store and the run function was skipped.
    """

    dag: str
    name: str
    kind: str
    index: int
    n_nodes: int
    elapsed_s: float
    from_store: bool


@dataclass(frozen=True)
class DagCompleted:
    """Emitted once per DAG run after every target artifact is loaded.

    Attributes:
        dag: the graph's name.
        n_nodes: nodes in the run.
        n_run: nodes executed in this process.
        n_restored: nodes restored from the artifact store.
        elapsed_s: end-to-end wall-clock seconds for the run call.
    """

    dag: str
    n_nodes: int
    n_run: int
    n_restored: int
    elapsed_s: float


TelemetryEvent = Union[
    RunStarted,
    ShardCompleted,
    RunCompleted,
    CacheSnapshot,
    DagStarted,
    NodeCompleted,
    DagCompleted,
]


class Telemetry:
    """A minimal synchronous pub/sub hub for runtime events."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[TelemetryEvent], None]] = []

    def subscribe(
        self, callback: Callable[[TelemetryEvent], None]
    ) -> Callable[[], None]:
        """Register *callback* for every event; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver *event* to every subscriber, in subscription order."""
        for callback in list(self._subscribers):
            callback(event)


class ProgressPrinter:
    """Stock subscriber: renders events as one-line progress messages.

    Args:
        stream: output stream (default stderr, keeping stdout clean for
            experiment tables and JSON).
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: TelemetryEvent) -> None:
        print(self.format(event), file=self.stream, flush=True)

    @staticmethod
    def format(event: TelemetryEvent) -> str:
        """The one-line rendering of *event*."""
        if isinstance(event, RunStarted):
            restored = event.n_shards - event.n_pending
            suffix = f", {restored} shard(s) from checkpoint" if restored else ""
            return (
                f"[{event.key}] start: {event.n_trials} trial(s) in "
                f"{event.n_shards} shard(s) on {event.backend}{suffix}"
            )
        if isinstance(event, ShardCompleted):
            if event.from_checkpoint:
                return (
                    f"[{event.key}] shard {event.shard_index}: "
                    f"{event.n_trials} trial(s) restored from checkpoint"
                )
            return (
                f"[{event.key}] shard {event.shard_index}: "
                f"{event.n_trials} trial(s) in {event.elapsed_s:.3f}s "
                f"({event.trials_per_sec:.1f} trials/s)"
            )
        if isinstance(event, CacheSnapshot):
            broadcast = (
                f", {event.broadcast_bytes / 1e6:.1f} MB broadcast"
                if event.broadcast_bytes
                else ""
            )
            return (
                f"[{event.key}] cache: {event.hits} hit(s), "
                f"{event.misses} miss(es) ({event.hit_rate:.0%} hit rate), "
                f"{event.bytes_saved / 1e6:.1f} MB saved{broadcast}"
            )
        if isinstance(event, DagStarted):
            suffix = (
                f", {event.n_restored} node(s) restored from store"
                if event.n_restored
                else ""
            )
            return (
                f"[{event.dag}] start: {event.n_nodes} node(s) on "
                f"{event.backend}{suffix}"
            )
        if isinstance(event, NodeCompleted):
            if event.from_store:
                return (
                    f"[{event.dag}] node {event.index}/{event.n_nodes} "
                    f"{event.name} ({event.kind}) restored from store"
                )
            return (
                f"[{event.dag}] node {event.index}/{event.n_nodes} "
                f"{event.name} ({event.kind}) in {event.elapsed_s:.3f}s"
            )
        if isinstance(event, DagCompleted):
            return (
                f"[{event.dag}] done: {event.n_nodes} node(s) in "
                f"{event.elapsed_s:.3f}s ({event.n_run} run, "
                f"{event.n_restored} restored)"
            )
        if isinstance(event, RunCompleted):
            return (
                f"[{event.key}] done: {event.n_trials} trial(s) in "
                f"{event.elapsed_s:.3f}s ({event.trials_per_sec:.1f} trials/s; "
                f"{event.n_shards_run} shard(s) run, "
                f"{event.n_shards_restored} restored)"
            )
        return repr(event)
