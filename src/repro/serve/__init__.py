"""Always-on multi-tenant streaming preprocessing service (``repro.serve``).

The serve layer turns the bounded-memory streaming engine
(:mod:`repro.stream`) into a long-running network service: many
concurrent frame streams arrive over a newline-delimited JSON TCP
protocol, each bound to a per-tenant pipeline (inline Γ₀ fault
injection, the Υ/Λ-configured ``Algo_NGST`` voter, an optional §4
smoother), multiplexed onto one shared
:class:`~repro.runtime.ThreadPoolBackend` worker pool.  An HTTP control
plane exposes health, Prometheus metrics, tenant CRUD, and graceful
drain; durable streams checkpoint every chunk boundary, so a drained or
killed server resumes every stream **byte-identically** after restart.

Quick start (one process, in-code)::

    import asyncio
    from repro.serve import ReproServer, ServerConfig, StreamClient

    async def demo():
        server = ReproServer(ServerConfig(checkpoint_dir="/tmp/serve"))
        await server.start()
        client = StreamClient(
            "127.0.0.1", server.ingest_port, "default", "s1", frames
        )
        result = await client.run()
        await server.drain(); await server.stop()
        return result

Or from the command line: ``repro serve --port 7801`` and drive it with
``tools/load_serve.py``.  See docs/SERVING.md for the protocol and the
resume semantics.
"""

from repro.serve.client import ClientResult, StreamClient
from repro.serve.control import ControlPlane
from repro.serve.drain import DrainController
from repro.serve.listener import IngestHandler, decode_frames, encode_frames
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.server import (
    ChaosMonkey,
    ReproServer,
    ServerConfig,
    SessionManager,
)
from repro.serve.session import IngestResult, StreamSession
from repro.serve.tenant import DEFAULT_TENANT, TenantConfig, TenantRegistry

__all__ = [
    "ChaosMonkey",
    "ClientResult",
    "ControlPlane",
    "DEFAULT_TENANT",
    "DrainController",
    "IngestHandler",
    "IngestResult",
    "LatencyHistogram",
    "ReproServer",
    "ServeMetrics",
    "ServerConfig",
    "SessionManager",
    "StreamClient",
    "StreamSession",
    "TenantConfig",
    "TenantRegistry",
    "decode_frames",
    "encode_frames",
]
