"""``repro serve`` — run the always-on streaming preprocessing server.

Usage::

    repro serve [--host H] [--port P] [--control-port C]
                [--checkpoint-dir DIR] [--jobs N]
                [--chaos-kill-rate R] [--chaos-seed S]
                [--drain-timeout S]

The server binds the ingest socket (newline-delimited JSON frame
protocol; see docs/SERVING.md) and the HTTP control plane, prints both
bound ports, and runs until SIGINT/SIGTERM — at which point it drains
gracefully (every connection finishes its in-flight message, every
durable session lands on a checkpointed chunk boundary) before exiting.
``POST /drain`` on the control plane does the same without a signal.

Port 0 asks the OS for a free port; the printed line is the contract
scripts parse::

    repro-serve listening ingest=127.0.0.1:41523 control=127.0.0.1:41817
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.exceptions import ReproError
from repro.serve.server import ReproServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="always-on multi-tenant streaming preprocessing service",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7801, help="ingest TCP port (0 = any free)"
    )
    parser.add_argument(
        "--control-port",
        type=int,
        default=7802,
        help="HTTP control-plane port (0 = any free)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=".repro-serve",
        help="root for durable session state and the tenant registry",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker threads in the pipeline pool"
    )
    parser.add_argument(
        "--chaos-kill-rate",
        type=float,
        default=0.0,
        help="probability of abruptly killing a connection per strike "
        "point (fault injection; 0 disables)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, help="chaos monkey RNG seed"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds a graceful drain waits for connections",
    )
    return parser


async def _serve(config: ServerConfig) -> int:
    server = ReproServer(config)
    await server.start()
    print(
        f"repro-serve listening "
        f"ingest={config.host}:{server.ingest_port} "
        f"control={config.host}:{server.control_port}",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, shutdown.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers; Ctrl-C still raises
    stopped = asyncio.ensure_future(server._stopped.wait())
    waiter = asyncio.ensure_future(shutdown.wait())
    # POST /drain on the control plane also ends the process: once the
    # drain it started completes, there is nothing left to serve.
    draining = asyncio.ensure_future(server.drainer.wait_signal())
    done, pending = await asyncio.wait(
        {stopped, waiter, draining}, return_when=asyncio.FIRST_COMPLETED
    )
    for task in pending:
        task.cancel()
    print("repro-serve draining", file=sys.stderr, flush=True)
    if server.drainer.draining:
        drained = await server.drainer.wait_drained(config.drain_timeout_s)
    else:
        drained = await server.drain()
    await server.stop()
    if not drained:
        print(
            "repro-serve: drain timed out with connections open",
            file=sys.stderr,
            flush=True,
        )
        return 1
    print("repro-serve stopped", file=sys.stderr, flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for ``repro serve``; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = ServerConfig(
            host=args.host,
            ingest_port=args.port,
            control_port=args.control_port,
            checkpoint_dir=args.checkpoint_dir,
            jobs=args.jobs,
            chaos_kill_rate=args.chaos_kill_rate,
            chaos_seed=args.chaos_seed,
            drain_timeout_s=args.drain_timeout,
        )
        return asyncio.run(_serve(config))
    except ReproError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C fallback
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
