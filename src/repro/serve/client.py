"""An asyncio client for the ingest protocol, with automatic resume.

:class:`StreamClient` drives one stream end to end: it sends frames in
batches, collects the outputs from acks, and — when the connection dies
mid-stream (server kill, chaos monkey, drain) — reconnects, tells the
server how many output frames it already holds, and continues sending
from the ``resume_frame`` the server reports.  Output dedupe is by
global frame index, so however many times the link breaks, the
collected output is byte-identical to an uninterrupted run — the
client-side half of the serve layer's resume contract, and what the
load harness and the end-to-end tests assert with.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServeError
from repro.serve.listener import decode_frames, encode_frames


@dataclass
class ClientResult:
    """What one completed stream looked like from the client.

    Attributes:
        outputs: every output frame, in order, deduped across resumes.
        result: the server's final ``result`` payload (Ψ accounting).
        reconnects: times the client had to reconnect mid-stream.
        drained: times the server answered with a drain notice.
        latencies_s: per frames-message round-trip times.
    """

    outputs: np.ndarray
    result: dict
    reconnects: int = 0
    drained: int = 0
    latencies_s: list = field(default_factory=list)


class _Drained(Exception):
    """Internal: the server drained this connection mid-stream."""

    def __init__(self, resume_frame: int) -> None:
        super().__init__(f"drained at frame {resume_frame}")
        self.resume_frame = resume_frame


class StreamClient:
    """Send one in-memory frame stack through a serve stream, resiliently.

    Args:
        host: ingest host.
        port: ingest port.
        tenant: tenant name the stream runs under.
        stream: stream name (unique within the tenant).
        frames: the whole ``(T,) + coord_shape`` stack to send.  Held in
            memory so a resume can re-send any suffix deterministically.
        batch_frames: frames per protocol message.
        max_attempts: connection attempts before giving up.
        retry_delay_s: pause between reconnection attempts (the server
            may be restarting).
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        stream: str,
        frames: np.ndarray,
        batch_frames: int = 64,
        max_attempts: int = 60,
        retry_delay_s: float = 0.1,
    ) -> None:
        if batch_frames < 1:
            raise ServeError(f"batch_frames must be >= 1, got {batch_frames}")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.stream = stream
        self.frames = np.ascontiguousarray(frames)
        self.batch_frames = int(batch_frames)
        self.max_attempts = int(max_attempts)
        self.retry_delay_s = float(retry_delay_s)
        self._outputs: list[np.ndarray] = []
        self._out_count = 0
        self._result: dict | None = None
        self._latencies: list[float] = []
        self._reconnects = 0
        self._drains = 0

    # -- output dedupe ----------------------------------------------------

    def _absorb(self, start: int, count: int, data: str) -> None:
        """Fold replayed/acked outputs in, discarding what we hold."""
        if count == 0:
            return
        frames = decode_frames(
            data, count, self.frames.shape[1:], self.frames.dtype
        )
        end = start + count
        if end <= self._out_count:
            return  # wholly re-delivered; already held
        if start > self._out_count:
            raise ServeError(
                f"output gap: have {self._out_count}, server sent from {start}"
            )
        fresh = frames[self._out_count - start :]
        self._outputs.append(fresh)
        self._out_count += fresh.shape[0]

    # -- protocol ---------------------------------------------------------

    async def _recv(self, reader: asyncio.StreamReader) -> dict:
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        message = json.loads(line)
        if message.get("type") == "error":
            if message.get("code") in ("draining", "busy"):
                # Transient: the server is restarting, or our dead
                # connection's server side has not unwound yet.
                raise _Drained(0)
            raise ServeError(
                f"server error [{message.get('code')}]: {message.get('error')}"
            )
        if message.get("type") == "drained":
            raise _Drained(int(message.get("resume_frame", 0)))
        return message

    async def _run_once(self) -> bool:
        """One connection's worth of progress; True when the stream is done."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            hello = {
                "type": "hello",
                "tenant": self.tenant,
                "stream": self.stream,
                "shape": list(self.frames.shape[1:]),
                "dtype": self.frames.dtype.str,
                "have_outputs": self._out_count,
            }
            writer.write(json.dumps(hello).encode() + b"\n")
            await writer.drain()
            welcome = await self._recv(reader)
            if welcome.get("type") != "welcome":
                raise ServeError(f"expected welcome, got {welcome.get('type')!r}")
            sent = int(welcome["resume_frame"])
            self._absorb(
                int(welcome["output_start"]),
                int(welcome["output_count"]),
                welcome.get("outputs", ""),
            )
            total = self.frames.shape[0]
            loop = asyncio.get_running_loop()
            while sent < total:
                batch = self.frames[sent : sent + self.batch_frames]
                message = {
                    "type": "frames",
                    "count": int(batch.shape[0]),
                    "data": encode_frames(batch),
                }
                t0 = loop.time()
                writer.write(json.dumps(message).encode() + b"\n")
                await writer.drain()
                ack = await self._recv(reader)
                self._latencies.append(loop.time() - t0)
                if ack.get("type") != "ack":
                    raise ServeError(f"expected ack, got {ack.get('type')!r}")
                self._absorb(
                    int(ack["output_start"]),
                    int(ack["output_count"]),
                    ack.get("outputs", ""),
                )
                sent = int(ack["received"])
            writer.write(json.dumps({"type": "end"}).encode() + b"\n")
            await writer.drain()
            result = await self._recv(reader)
            if result.get("type") != "result":
                raise ServeError(f"expected result, got {result.get('type')!r}")
            self._absorb(
                int(result["output_start"]),
                int(result["output_count"]),
                result.get("outputs", ""),
            )
            self._result = result["result"]
            return True
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def run(self) -> ClientResult:
        """Drive the stream to completion, reconnecting as needed."""
        attempts = 0
        while True:
            try:
                done = await self._run_once()
                if done:
                    break
            except _Drained:
                self._drains += 1
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                json.JSONDecodeError,
                OSError,
            ):
                self._reconnects += 1
            attempts += 1
            if attempts >= self.max_attempts:
                raise ServeError(
                    f"stream {self.tenant}/{self.stream} gave up after "
                    f"{attempts} attempt(s)"
                )
            await asyncio.sleep(self.retry_delay_s)
        outputs = (
            np.concatenate(self._outputs, axis=0)
            if self._outputs
            else self.frames[:0]
        )
        assert self._result is not None
        return ClientResult(
            outputs=outputs,
            result=self._result,
            reconnects=self._reconnects,
            drained=self._drains,
            latencies_s=self._latencies,
        )
