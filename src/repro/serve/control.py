"""The HTTP/1.1 control plane: health, metrics, tenants, drain.

A deliberately tiny hand-rolled HTTP server (the repo adds no
dependencies): one request per connection, ``Connection: close``, JSON
bodies.  Routes:

========================  =====================================================
``GET /healthz``          liveness + drain state + session/connection counts
``GET /metrics``          Prometheus text exposition of :class:`ServeMetrics`
``GET /metrics.json``     the same numbers as JSON
``GET /tenants``          the tenant table
``GET /tenants/<name>``   one tenant config
``PUT /tenants/<name>``   create/replace a tenant (JSON body, validated)
``DELETE /tenants/<name>``remove a tenant (``default`` is permanent)
``POST /drain``           begin a graceful drain (returns immediately)
========================  =====================================================

Mutations are refused with 503 once a drain has begun — the server is
committed to shutting down with the state it has.
"""

from __future__ import annotations

import asyncio
import json

from repro.exceptions import ConfigurationError, ServeError
from repro.serve.tenant import TenantConfig

#: Largest accepted request body (tenant configs are tiny).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class ControlPlane:
    """Routes control requests against a live server.

    Args:
        server: the owning :class:`~repro.serve.server.ReproServer`
            (duck-typed: needs ``registry``, ``metrics``, ``sessions``,
            ``drainer``, and an async ``drain()``).
    """

    def __init__(self, server) -> None:
        self.server = server

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP request and close the connection."""
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                await self._respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            status, payload, content_type = self._route(method, path, body)
            await self._respond(writer, status, payload, content_type)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1")
            if header in ("\r\n", "\n", ""):
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY_BYTES:
            raise ValueError(f"body of {content_length} bytes is too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    def _route(self, method: str, path: str, body: bytes):
        """Dispatch; returns ``(status, payload, content_type)``."""
        server = self.server
        if path == "/healthz" and method == "GET":
            return (
                200,
                {
                    "status": "draining" if server.drainer.draining else "ok",
                    "sessions": server.sessions.active_count,
                    "parked_sessions": server.sessions.parked_count,
                    "connections": server.drainer.active_connections,
                },
                "application/json",
            )
        if path == "/metrics" and method == "GET":
            return 200, server.metrics.render_prometheus(), "text/plain; version=0.0.4"
        if path == "/metrics.json" and method == "GET":
            return 200, server.metrics.snapshot(), "application/json"
        if path == "/tenants" and method == "GET":
            return (
                200,
                {"tenants": [t.to_dict() for t in server.registry.list()]},
                "application/json",
            )
        if path.startswith("/tenants/"):
            name = path[len("/tenants/") :]
            if method == "GET":
                try:
                    return 200, server.registry.get(name).to_dict(), "application/json"
                except ServeError as exc:
                    return 404, {"error": str(exc)}, "application/json"
            if method == "PUT":
                if server.drainer.draining:
                    return 503, {"error": "server is draining"}, "application/json"
                try:
                    payload = json.loads(body.decode("utf-8")) if body else {}
                    payload.setdefault("name", name)
                    if payload["name"] != name:
                        raise ConfigurationError(
                            f"body name {payload['name']!r} != path name {name!r}"
                        )
                    config = TenantConfig.from_dict(payload)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    return 400, {"error": f"bad JSON body: {exc}"}, "application/json"
                except ConfigurationError as exc:
                    return 400, {"error": str(exc)}, "application/json"
                server.registry.put(config)
                return 200, config.to_dict(), "application/json"
            if method == "DELETE":
                if server.drainer.draining:
                    return 503, {"error": "server is draining"}, "application/json"
                try:
                    server.registry.delete(name)
                except ServeError as exc:
                    return 404, {"error": str(exc)}, "application/json"
                return 200, {"deleted": name}, "application/json"
            return 405, {"error": f"{method} not allowed here"}, "application/json"
        if path == "/drain" and method == "POST":
            already = server.drainer.draining
            if not already:
                asyncio.get_running_loop().create_task(server.drain())
            return (
                202,
                {"draining": True, "already_draining": already},
                "application/json",
            )
        if path in ("/healthz", "/metrics", "/metrics.json", "/tenants", "/drain"):
            return 405, {"error": f"{method} not allowed on {path}"}, "application/json"
        return 404, {"error": f"no route for {path}"}, "application/json"

    async def _respond(
        self, writer, status: int, payload, content_type: str = "application/json"
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        else:
            body = str(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
