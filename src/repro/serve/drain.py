"""Graceful-drain coordination for the ingest listener.

One :class:`DrainController` per server: ingest handlers register on
accept and unregister on close, and :meth:`DrainController.begin` flips
the drain signal every handler waits on between messages.  A draining
handler finishes the message in flight (its chunk boundary is then
checkpointed), tells its client where to resume, and closes; when the
last handler unregisters the controller's ``drained`` future resolves
and the server can stop its listeners knowing every session's state is
flushed to disk.

Everything here runs on the event loop thread, so plain counters are
safe; the only synchronisation primitives are ``asyncio.Event``s.
"""

from __future__ import annotations

import asyncio


class DrainController:
    """Coordinates a graceful drain across the live ingest connections."""

    def __init__(self) -> None:
        self._draining = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()  # no connections yet
        self._active = 0

    @property
    def draining(self) -> bool:
        """Whether a drain has begun."""
        return self._draining.is_set()

    @property
    def active_connections(self) -> int:
        """Ingest connections currently registered."""
        return self._active

    def register(self) -> None:
        """An ingest handler accepted a connection."""
        self._active += 1
        self._idle.clear()

    def unregister(self) -> None:
        """An ingest handler closed its connection."""
        self._active -= 1
        if self._active <= 0:
            self._active = 0
            self._idle.set()

    def begin(self) -> None:
        """Signal every handler to finish its in-flight message and close."""
        self._draining.set()

    async def wait_signal(self) -> None:
        """Block until a drain begins (handlers race this against reads)."""
        await self._draining.wait()

    async def wait_drained(self, timeout: "float | None" = None) -> bool:
        """Wait for every registered handler to close; False on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False
