"""The TCP ingest listener: newline-delimited JSON frame streaming.

One connection drives at most one stream at a time, request–response:

* ``{"type": "hello", "tenant": T, "stream": S, "shape": [...],
  "dtype": "<u2", "have_outputs": H}`` binds the connection to a
  session.  The reply ``welcome`` carries ``resume_frame`` (how many
  frames the stream history already holds — the producer continues
  from there) and replays any outputs the client is missing.
* ``{"type": "frames", "count": n, "data": <base64>}`` delivers ``n``
  frames as raw little-endian bytes.  The reply ``ack`` confirms the
  new ``received`` total and carries whatever the pipeline emitted.
* ``{"type": "end"}`` flushes the stages; the reply ``result`` carries
  the tail outputs and the stream's final Ψ accounting.
* ``{"type": "detach"}`` parks the session (kept in memory) and closes.

Every server reply is one JSON line.  Outputs travel as base64 of the
frames' raw bytes plus the global index of the first frame, so a client
reconnecting after a kill can discard the prefix it already holds —
the dedupe that makes resumed output byte-identical.

A drain signal is raced against every read: a draining connection gets
``{"type": "drained", "resume_frame": N}`` and a clean close, never a
mid-message cut.  The optional :class:`~repro.serve.server.ChaosMonkey`
aborts connections abruptly before or after a message is processed —
the fault-injection hook the resume tests and the churn phase of the
load harness rely on.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import json
from typing import Awaitable, Callable

import numpy as np

from repro.exceptions import ReproError, ServeError
from repro.serve.drain import DrainController
from repro.serve.metrics import ServeMetrics
from repro.serve.session import StreamSession

#: Sentinel returned by the read-or-drain race when the drain wins.
_DRAIN = object()


class DrainingRefusal(ServeError):
    """A hello arrived while the server was draining (retry later)."""


class BusyStreamError(ServeError):
    """The stream is attached to another connection (usually a dying
    one whose abort has not unwound yet — retryable)."""

#: Maximum accepted line length (frames messages are base64-heavy).
MAX_LINE_BYTES = 16 * 1024 * 1024


def encode_frames(frames: np.ndarray) -> str:
    """Frames as base64 of their raw contiguous bytes ('' when empty)."""
    if frames.shape[0] == 0:
        return ""
    return base64.b64encode(np.ascontiguousarray(frames).tobytes()).decode(
        "ascii"
    )


def decode_frames(
    data: str, count: int, coord_shape: tuple[int, ...], dtype: np.dtype
) -> np.ndarray:
    """Invert :func:`encode_frames`; raises :class:`ServeError` on junk."""
    if count == 0:
        return np.empty((0,) + coord_shape, dtype=dtype)
    try:
        raw = base64.b64decode(data, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ServeError(f"frames payload is not valid base64: {exc}") from None
    expected = count * int(np.prod(coord_shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ServeError(
            f"frames payload holds {len(raw)} byte(s), expected {expected} "
            f"for {count} frame(s) of shape {coord_shape} dtype {dtype.str}"
        )
    return (
        np.frombuffer(raw, dtype=dtype).reshape((count,) + coord_shape).copy()
    )


class IngestHandler:
    """The per-connection protocol driver behind the ingest socket.

    Args:
        sessions: the server's session manager (see
            :class:`~repro.serve.server.SessionManager`).
        metrics: the server's metrics sink.
        drain: the drain controller every read races against.
        run_in_pool: awaitable bridge onto the worker pool; all pipeline
            work goes through it so the event loop never blocks on NumPy.
        chaos: optional connection killer (``None`` disables chaos).
    """

    def __init__(
        self,
        sessions,
        metrics: ServeMetrics,
        drain: DrainController,
        run_in_pool: Callable[..., Awaitable],
        chaos=None,
    ) -> None:
        self.sessions = sessions
        self.metrics = metrics
        self.drain = drain
        self.run_in_pool = run_in_pool
        self.chaos = chaos

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one ingest connection to completion."""
        self.metrics.incr("connections_opened")
        self.drain.register()
        session: StreamSession | None = None
        attached = False
        try:
            while True:
                line = await self._read_line_or_drain(reader)
                if line is _DRAIN:
                    await self._send(
                        writer,
                        {
                            "type": "drained",
                            "resume_frame": session.received if session else 0,
                        },
                    )
                    break
                if not line:
                    break  # client closed
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ServeError("message must be a JSON object")
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    await self._error(writer, "protocol", f"bad JSON line: {exc}")
                    break
                kind = message.get("type")
                try:
                    if kind == "hello":
                        if session is not None:
                            raise ServeError("connection already has a stream")
                        session, attached = await self._hello(writer, message)
                    elif kind == "frames":
                        if session is None:
                            raise ServeError("frames before hello")
                        killed = await self._frames(writer, session, message)
                        if killed:
                            break  # abrupt end: the finally block drops
                    elif kind == "end":
                        await self._end(writer, session)
                        session, attached = None, False
                    elif kind == "detach":
                        if session is None:
                            raise ServeError("detach before hello")
                        await self._send(
                            writer,
                            {"type": "detached", "resume_frame": session.received},
                        )
                        self.sessions.park(session)
                        session, attached = None, False
                        break
                    else:
                        raise ServeError(f"unknown message type {kind!r}")
                except ReproError as exc:
                    await self._error(writer, _error_code(exc), str(exc))
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # abrupt peer loss: the finally block drops the session
        finally:
            if session is not None and attached:
                # Abrupt end (peer loss, protocol error, drain): drop the
                # live object; durable streams resume from their
                # checkpoint, non-durable ones start over.
                self.sessions.drop(session)
            with contextlib.suppress(Exception):
                writer.close()
            self.drain.unregister()
            self.metrics.incr("connections_closed")

    # -- message handlers -------------------------------------------------

    async def _hello(self, writer, message) -> tuple[StreamSession, bool]:
        tenant_name = message.get("tenant")
        stream = message.get("stream")
        shape = message.get("shape")
        dtype = message.get("dtype")
        have = int(message.get("have_outputs", 0))
        if not isinstance(tenant_name, str) or not isinstance(stream, str):
            raise ServeError("hello needs string 'tenant' and 'stream'")
        if not isinstance(shape, list) or not all(
            isinstance(s, int) and s > 0 for s in shape
        ):
            raise ServeError("hello needs 'shape' as a list of positive ints")
        if self.drain.draining:
            raise DrainingRefusal("server is draining; retry after restart")
        try:
            np_dtype = np.dtype(dtype)
        except (TypeError, ValueError) as exc:
            raise ServeError(f"bad dtype {dtype!r}: {exc}") from None
        session = self.sessions.acquire(tenant_name, stream, tuple(shape), np_dtype)
        try:
            resume_frame = await self.run_in_pool(session.open)
            start, outputs = session.replay_outputs(have)
        except Exception:
            self.sessions.drop(session)
            raise
        await self._send(
            writer,
            {
                "type": "welcome",
                "tenant": session.tenant.name,
                "stream": session.stream,
                "resume_frame": resume_frame,
                "chunk_frames": session.tenant.chunk_frames,
                "buffer_frames": session.tenant.buffer_frames,
                "output_start": start,
                "output_count": int(outputs.shape[0]),
                "outputs": encode_frames(outputs),
            },
        )
        return session, True

    async def _frames(self, writer, session: StreamSession, message) -> bool:
        """Process one frames message; True when chaos killed the link."""
        count = message.get("count")
        if not isinstance(count, int) or count < 0:
            raise ServeError("frames needs a non-negative integer 'count'")
        frames = decode_frames(
            str(message.get("data", "")),
            count,
            session.source.coord_shape,
            session.source.dtype,
        )
        if self.chaos is not None and self.chaos.strike():
            self.metrics.incr("chaos_kills")
            writer.transport.abort()  # frames lost before processing
            return True
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        result = await self.run_in_pool(session.ingest, frames)
        self.metrics.observe("ingest_latency", loop.time() - t0)
        self.metrics.incr("messages")
        if result.refused:
            self.metrics.incr("backpressure_refusals", result.refused)
        if self.chaos is not None and self.chaos.strike():
            self.metrics.incr("chaos_kills")
            writer.transport.abort()  # processed and checkpointed, ack lost
            return True
        await self._send(
            writer,
            {
                "type": "ack",
                "received": result.received,
                "output_start": result.output_start,
                "output_count": int(result.outputs.shape[0]),
                "outputs": encode_frames(result.outputs),
            },
        )
        return False

    async def _end(self, writer, session: StreamSession | None) -> None:
        if session is None:
            raise ServeError("end before hello")
        result, start, outputs = await self.run_in_pool(session.finish)
        self.sessions.drop(session)
        await self._send(
            writer,
            {
                "type": "result",
                "output_start": start,
                "output_count": int(outputs.shape[0]),
                "outputs": encode_frames(outputs),
                "result": {
                    "n_frames_in": result.n_frames_in,
                    "n_frames_out": result.n_frames_out,
                    "n_chunks": result.n_chunks,
                    "psi_no_preprocessing": result.psi_no_preprocessing,
                    "psi_algorithm": result.psi_algorithm,
                    "improvement": result.improvement,
                    "high_water": result.high_water,
                },
            },
        )

    # -- plumbing ---------------------------------------------------------

    async def _read_line_or_drain(self, reader: asyncio.StreamReader):
        """One protocol line, or the ``_DRAIN`` sentinel if a drain begins."""
        if self.drain.draining:
            return _DRAIN
        read = asyncio.ensure_future(reader.readline())
        drain = asyncio.ensure_future(self.drain.wait_signal())
        done, _ = await asyncio.wait(
            {read, drain}, return_when=asyncio.FIRST_COMPLETED
        )
        if read in done:
            drain.cancel()
            return read.result()
        read.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await read
        return _DRAIN

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _error(self, writer, code: str, detail: str) -> None:
        self.metrics.incr("protocol_errors")
        with contextlib.suppress(ConnectionError):
            await self._send(writer, {"type": "error", "code": code, "error": detail})


def _error_code(exc: ReproError) -> str:
    """Map an exception to the protocol's stable error code."""
    from repro.exceptions import CheckpointMismatchError, DataFormatError

    if isinstance(exc, DrainingRefusal):
        return "draining"
    if isinstance(exc, BusyStreamError):
        return "busy"
    if isinstance(exc, CheckpointMismatchError):
        return "checkpoint-mismatch"
    if isinstance(exc, DataFormatError):
        return "format"
    if isinstance(exc, ServeError):
        return "refused"
    return "internal"
