"""Service metrics: counters and latency histograms for ``/metrics``.

:class:`ServeMetrics` is the one mutable metrics object a server owns.
It is fed from three directions — the ingest listener (connections,
messages, protocol errors), the session layer (frames, streams), and
the shared telemetry hub (it is a subscriber, so every
:class:`~repro.stream.telemetry.ChunkCompleted` and runtime
:class:`~repro.runtime.telemetry.ShardCompleted` lands here without the
emitters knowing metrics exist).  All mutation is behind one
``threading.Lock`` because pipeline work runs on the worker pool's
threads while the control plane scrapes from the event loop.

Rendering is dependency-free: :meth:`ServeMetrics.render_prometheus`
emits the Prometheus text exposition format by hand, and
:meth:`ServeMetrics.snapshot` the JSON twin served at ``/metrics.json``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.exceptions import ConfigurationError
from repro.runtime.telemetry import RunCompleted, RunStarted, ShardCompleted
from repro.stream.telemetry import (
    ChunkCompleted,
    LambdaAdjusted,
    StreamCompleted,
    StreamStarted,
)


def _log_spaced_bounds(
    lo: float = 1e-5, hi: float = 100.0, per_decade: int = 5
) -> list[float]:
    """Log-spaced histogram bucket upper bounds covering [lo, hi]."""
    bounds = []
    i = 0
    while True:
        bound = lo * 10 ** (i / per_decade)
        if bound > hi * 1.0000001:
            return bounds
        bounds.append(bound)
        i += 1


class LatencyHistogram:
    """A fixed-bucket latency histogram with quantile estimates.

    Buckets are log-spaced upper bounds in seconds (default 10 µs to
    100 s, five per decade, ~12 % resolution) plus an overflow bucket;
    quantiles are read by walking the cumulative counts and reporting
    the matched bucket's upper bound — an upper-bound estimate, which
    is the honest direction for latency SLOs.  Exact min/max/sum ride
    along for the mean and the tails.
    """

    def __init__(self, bounds: "list[float] | None" = None) -> None:
        self.bounds = sorted(bounds) if bounds else _log_spaced_bounds()
        if not self.bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        seconds = max(0.0, float(seconds))
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the *q*-quantile (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    @property
    def p50(self) -> float:
        """Median latency estimate in seconds."""
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        """99th-percentile latency estimate in seconds."""
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-serializable summary (count/mean/min/max/p50/p99)."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.p50,
            "p99_s": self.p99,
        }


#: The counter names ServeMetrics tracks, in exposition order.
COUNTER_NAMES = (
    "connections_opened",
    "connections_closed",
    "sessions_opened",
    "sessions_resumed",
    "sessions_completed",
    "messages",
    "frames_in",
    "frames_out",
    "chunks",
    "protocol_errors",
    "backpressure_refusals",
    "chaos_kills",
    "drains",
    "runtime_shards",
    "lambda_adjustments",
)

#: The histogram names ServeMetrics tracks.
HISTOGRAM_NAMES = ("ingest_latency", "chunk_latency")


class ServeMetrics:
    """Thread-safe counters and latency histograms for one server.

    Subscribe the instance to the shared telemetry hub
    (``telemetry.subscribe(metrics)``) and every stream chunk and
    runtime shard event is folded in automatically; the listener and
    session layers call :meth:`incr` / :meth:`observe` directly for the
    transport-level numbers the hub never sees.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {name: 0 for name in COUNTER_NAMES}
        self._histograms = {name: LatencyHistogram() for name in HISTOGRAM_NAMES}
        # Per-tenant Λ gauge: the online autotuner's current operating
        # sensitivity, keyed by the LambdaAdjusted event label.
        self._lambda_current: dict[str, float] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the named counter."""
        with self._lock:
            if name not in self._counters:
                raise ConfigurationError(f"unknown counter {name!r}")
            self._counters[name] += amount

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation in the named histogram."""
        with self._lock:
            if name not in self._histograms:
                raise ConfigurationError(f"unknown histogram {name!r}")
            self._histograms[name].record(seconds)

    def __call__(self, event: object) -> None:
        """Telemetry-hub subscriber: fold stream/runtime events in."""
        if isinstance(event, ChunkCompleted):
            with self._lock:
                self._counters["chunks"] += 1
                self._counters["frames_in"] += event.frames_in
                self._counters["frames_out"] += event.frames_out
                self._histograms["chunk_latency"].record(event.elapsed_s)
        elif isinstance(event, StreamStarted):
            with self._lock:
                self._counters["sessions_opened"] += 1
                if event.resumed_frames:
                    self._counters["sessions_resumed"] += 1
        elif isinstance(event, LambdaAdjusted):
            with self._lock:
                self._counters["lambda_adjustments"] += 1
                self._lambda_current[event.label or "-"] = float(
                    event.new_sensitivity
                )
        elif isinstance(event, StreamCompleted):
            self.incr("sessions_completed")
        elif isinstance(event, (RunStarted, RunCompleted)):
            pass  # campaign bookkeeping; nothing to count per-server
        elif isinstance(event, ShardCompleted):
            self.incr("runtime_shards")

    def counter(self, name: str) -> int:
        """Current value of the named counter."""
        with self._lock:
            return self._counters[name]

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every counter and histogram."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "latency": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
                "lambda_current": dict(self._lambda_current),
            }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of the current state."""
        with self._lock:
            lines = []
            for name, value in self._counters.items():
                metric = f"repro_serve_{name}_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {value}")
            if self._lambda_current:
                metric = "repro_serve_lambda_current"
                lines.append(f"# TYPE {metric} gauge")
                for tenant in sorted(self._lambda_current):
                    lines.append(
                        f'{metric}{{tenant="{tenant}"}} '
                        f"{self._lambda_current[tenant]:g}"
                    )
            for name, hist in self._histograms.items():
                metric = f"repro_serve_{name}_seconds"
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    lines.append(
                        f'{metric}_bucket{{le="{bound:.6g}"}} {cumulative}'
                    )
                lines.append(
                    f'{metric}_bucket{{le="+Inf"}} {hist.count}'
                )
                lines.append(f"{metric}_sum {hist.sum:.9g}")
                lines.append(f"{metric}_count {hist.count}")
            return "\n".join(lines) + "\n"
