"""The always-on streaming preprocessing server.

:class:`ReproServer` assembles the subsystem: a TCP ingest listener
(:mod:`repro.serve.listener`) and an HTTP control plane
(:mod:`repro.serve.control`) on the asyncio event loop, a
:class:`~repro.runtime.ThreadPoolBackend` worker pool all pipeline work
is bridged onto (``asyncio.wrap_future`` around ``pool.submit``, so a
slow chunk never blocks the loop), a :class:`SessionManager` mapping
``tenant/stream`` pairs to live :class:`~repro.serve.session.StreamSession`
objects, and one shared telemetry hub whose events feed
:class:`~repro.serve.metrics.ServeMetrics`.

Lifecycle: :meth:`ReproServer.start` binds both sockets (port 0 picks
free ports, reported via :attr:`ingest_port` / :attr:`control_port`),
:meth:`ReproServer.drain` lets every connection finish its in-flight
message — at which point every durable session's state is at a
checkpointed chunk boundary — and :meth:`ReproServer.stop` closes the
sockets and the pool.  A new server started on the same checkpoint
directory resumes every durable stream bit-identically.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError, ServeError
from repro.runtime.backend import ThreadPoolBackend
from repro.serve.control import ControlPlane
from repro.serve.drain import DrainController
from repro.serve.listener import MAX_LINE_BYTES, BusyStreamError, IngestHandler
from repro.serve.metrics import ServeMetrics
from repro.serve.session import StreamSession
from repro.serve.tenant import TenantRegistry
from repro.stream.telemetry import Telemetry


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`ReproServer` needs to come up.

    Attributes:
        host: interface both listeners bind.
        ingest_port: frame-stream TCP port (0 picks a free port).
        control_port: HTTP control-plane port (0 picks a free port).
        checkpoint_dir: root for durable session state and the tenant
            registry file.
        jobs: worker threads in the shared pipeline pool.
        chaos_kill_rate: probability, evaluated twice per frames message
            (before processing and before the ack), of abruptly killing
            the connection — fault injection for resume testing; 0
            disables chaos.
        chaos_seed: seed of the chaos monkey's RNG.
        drain_timeout_s: longest a drain waits for connections to finish.
    """

    host: str = "127.0.0.1"
    ingest_port: int = 0
    control_port: int = 0
    checkpoint_dir: "str | Path" = ".repro-serve"
    jobs: int = 4
    chaos_kill_rate: float = 0.0
    chaos_seed: int = 0
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.chaos_kill_rate < 1.0:
            raise ConfigurationError(
                f"chaos_kill_rate must be in [0, 1), got {self.chaos_kill_rate}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )


class ChaosMonkey:
    """Seeded random connection killer for resume testing.

    Args:
        kill_rate: per-strike-point kill probability in [0, 1).
        seed: RNG seed (deterministic chaos, reproducible tests).
    """

    def __init__(self, kill_rate: float, seed: int = 0) -> None:
        self.kill_rate = float(kill_rate)
        self._rng = random.Random(seed)
        self.kills = 0

    def strike(self) -> bool:
        """Roll the dice; True means kill the connection now."""
        if self.kill_rate <= 0.0:
            return False
        if self._rng.random() < self.kill_rate:
            self.kills += 1
            return True
        return False


class SessionManager:
    """The live and parked :class:`StreamSession` table.

    A session is *active* while a connection drives it and *parked*
    after a clean detach (kept in memory, frames and all).  Exactly one
    connection may drive a stream at a time; a second hello for an
    active stream is refused.  Dropped sessions vanish from memory —
    durable ones resume from their checkpoint on the next hello.

    All methods run on the event loop thread (the listener is the only
    caller), so plain dicts suffice.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        checkpoint_dir: "str | Path | None",
        telemetry: Telemetry | None = None,
    ) -> None:
        self.registry = registry
        self.checkpoint_dir = checkpoint_dir
        self.telemetry = telemetry
        self._active: dict[tuple[str, str], StreamSession] = {}
        self._parked: dict[tuple[str, str], StreamSession] = {}

    @property
    def active_count(self) -> int:
        """Streams currently driven by a connection."""
        return len(self._active)

    @property
    def parked_count(self) -> int:
        """Streams detached but kept in memory."""
        return len(self._parked)

    def acquire(
        self,
        tenant_name: str,
        stream: str,
        coord_shape: tuple[int, ...],
        dtype: "np.dtype",
    ) -> StreamSession:
        """Bind a stream to the calling connection, creating or reattaching.

        Raises :class:`~repro.exceptions.ServeError` for an unknown
        tenant, a stream already driven by another connection, or a
        frame format that contradicts the parked session's.
        """
        key = (tenant_name, stream)
        if key in self._active:
            raise BusyStreamError(
                f"stream {tenant_name}/{stream} is already attached to "
                f"another connection"
            )
        parked = self._parked.pop(key, None)
        if parked is not None:
            if not parked.matches(coord_shape, dtype):
                self._parked[key] = parked
                raise ServeError(
                    f"stream {tenant_name}/{stream} was opened with shape "
                    f"{parked.source.coord_shape} dtype "
                    f"{parked.source.dtype.str}; cannot reattach with shape "
                    f"{tuple(coord_shape)} dtype {np.dtype(dtype).str}"
                )
            self._active[key] = parked
            return parked
        tenant = self.registry.get(tenant_name)
        session = StreamSession(
            tenant,
            stream,
            coord_shape,
            dtype,
            checkpoint_dir=self.checkpoint_dir,
            telemetry=self.telemetry,
        )
        self._active[key] = session
        return session

    def park(self, session: StreamSession) -> None:
        """Clean detach: keep the session in memory for reattachment."""
        key = (session.tenant.name, session.stream)
        self._active.pop(key, None)
        self._parked[key] = session

    def drop(self, session: StreamSession) -> None:
        """Forget the session (completed, errored, or connection lost)."""
        key = (session.tenant.name, session.stream)
        self._active.pop(key, None)
        self._parked.pop(key, None)


class ReproServer:
    """The assembled service; see the module docstring for the shape.

    Args:
        config: sockets, pool size, durability root, chaos settings.
        registry: tenant table; default loads/creates
            ``<checkpoint_dir>/tenants.json``.
        telemetry: shared event hub; default builds one private to the
            server.  Metrics subscribe to it either way.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        registry: TenantRegistry | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        checkpoint_dir = Path(self.config.checkpoint_dir)
        self.registry = registry or TenantRegistry(checkpoint_dir / "tenants.json")
        self.metrics = ServeMetrics()
        self.telemetry = telemetry or Telemetry()
        self.telemetry.subscribe(self.metrics)
        self.backend = ThreadPoolBackend(self.config.jobs)
        self.drainer = DrainController()
        self.chaos = (
            ChaosMonkey(self.config.chaos_kill_rate, self.config.chaos_seed)
            if self.config.chaos_kill_rate > 0
            else None
        )
        self.sessions = SessionManager(
            self.registry, checkpoint_dir, telemetry=self.telemetry
        )
        self.ingest = IngestHandler(
            self.sessions,
            self.metrics,
            self.drainer,
            self.run_in_pool,
            chaos=self.chaos,
        )
        self.control = ControlPlane(self)
        self._ingest_server: asyncio.AbstractServer | None = None
        self._control_server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()

    # -- worker pool bridge ----------------------------------------------

    async def run_in_pool(self, fn, /, *args, **kwargs):
        """Run blocking pipeline work on the pool; await its result."""
        return await asyncio.wrap_future(self.backend.submit(fn, *args, **kwargs))

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners; ports are final once this returns."""
        self._ingest_server = await asyncio.start_server(
            self.ingest.handle,
            self.config.host,
            self.config.ingest_port,
            limit=MAX_LINE_BYTES,
        )
        self._control_server = await asyncio.start_server(
            self.control.handle, self.config.host, self.config.control_port
        )

    @property
    def ingest_port(self) -> int:
        """The bound ingest port (resolves port 0 to the real one)."""
        assert self._ingest_server is not None, "server not started"
        return self._ingest_server.sockets[0].getsockname()[1]

    @property
    def control_port(self) -> int:
        """The bound control-plane port."""
        assert self._control_server is not None, "server not started"
        return self._control_server.sockets[0].getsockname()[1]

    async def drain(self) -> bool:
        """Graceful drain: every connection finishes its message and closes.

        Stops accepting new ingest connections, signals the live ones,
        and waits (bounded by ``drain_timeout_s``) for them to unwind.
        Durable sessions are then at checkpointed chunk boundaries —
        the whole point of draining before :meth:`stop`.  Returns False
        if the timeout expired with connections still open.
        """
        self.metrics.incr("drains")
        if self._ingest_server is not None:
            self._ingest_server.close()
        self.drainer.begin()
        return await self.drainer.wait_drained(self.config.drain_timeout_s)

    async def stop(self) -> None:
        """Close listeners and the worker pool (idempotent)."""
        for listener in (self._ingest_server, self._control_server):
            if listener is not None:
                listener.close()
                try:
                    await listener.wait_closed()
                except Exception:
                    pass
        self.backend.shutdown(wait=True)
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Start and run until :meth:`stop` (for the CLI entry point)."""
        await self.start()
        await self._stopped.wait()
