"""One tenant stream bound to a live :class:`StreamPipeline`.

A :class:`StreamSession` owns the push source, stage chain, and
checkpoint store for one ``tenant/stream`` pair.  The ingest listener
hands it decoded frame chunks; it drains them through the pipeline
incrementally (``push`` → ``pump``) and collects whatever the final
stage emits so the listener can ship the outputs back in the ack.

Durability contract (durable tenants): the pipeline checkpoints every
chunk boundary, and the session appends every emitted output chunk to a
JSONL *output log* before the ack leaves the process.  Together they
make resume byte-identical from the client's point of view:

* the checkpoint replays the exact pipeline state at the last boundary,
  so frames re-sent from ``resume_frame`` produce the same outputs an
  uninterrupted run would;
* the output log replays the outputs the pipeline emitted but the
  client never acknowledged (a kill between ack-write and ack-receipt),
  so the client's collected output has no gap.

Both files live under ``<checkpoint_dir>/<tenant>/`` and are deleted
when the stream completes cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import ServeError
from repro.serve.tenant import TenantConfig
from repro.stream.autotune_stage import AutotuneVoterStage
from repro.stream.checkpoint import StreamCheckpoint, decode_array, encode_array
from repro.stream.pipeline import StreamPipeline, StreamResult
from repro.stream.source import PushFrameSource
from repro.stream.telemetry import Telemetry


@dataclass(frozen=True)
class IngestResult:
    """What one :meth:`StreamSession.ingest` call accomplished.

    Attributes:
        accepted: frames absorbed into the stream history (equals the
            offered count except under ``drop-oldest``, where it still
            counts every offered frame).
        received: the stream's total accepted frames so far — the index
            the producer continues from.
        output_start: global index of ``outputs[0]``.
        outputs: frames the final stage emitted during this call
            (possibly empty while stage windows fill).
        refused: push attempts the ingest buffer turned away before the
            pipeline drained room for them (the ``block`` policy's
            backpressure at work; retried internally, never lost).
    """

    accepted: int
    received: int
    output_start: int
    outputs: np.ndarray
    refused: int = 0


class StreamSession:
    """The server-side state of one ``tenant/stream`` pair.

    Args:
        tenant: the tenant contract the stream runs under.
        stream: stream name (unique within the tenant).
        coord_shape: per-frame coordinate shape from the client's hello.
        dtype: frame dtype from the client's hello.
        checkpoint_dir: root directory for durable state; ``None``
            disables durability regardless of the tenant setting.
        telemetry: optional shared hub for stream events.
    """

    def __init__(
        self,
        tenant: TenantConfig,
        stream: str,
        coord_shape: tuple[int, ...],
        dtype: "np.dtype | str",
        checkpoint_dir: "str | Path | None" = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not stream or "/" in stream or stream != stream.strip():
            raise ServeError(
                f"stream name must be non-empty, trimmed, and '/'-free, "
                f"got {stream!r}"
            )
        self.tenant = tenant
        self.stream = stream
        self.source = PushFrameSource(
            coord_shape,
            dtype,
            capacity=tenant.buffer_frames,
            policy=tenant.policy,
            label=f"serve:{tenant.name}/{stream}",
        )
        self.durable = bool(tenant.durable and checkpoint_dir is not None)
        checkpoint = None
        self._output_log: Path | None = None
        if self.durable:
            base = Path(checkpoint_dir) / tenant.name
            checkpoint = StreamCheckpoint(base / f"{stream}.jsonl")
            self._output_log = base / f"{stream}.outputs.jsonl"
        stages = tenant.build_stages()
        for stage in stages:
            # The tuner emits LambdaAdjusted events itself (they happen
            # at stack boundaries inside process(), which the pipeline
            # cannot see), so it needs the shared hub directly.
            if isinstance(stage, AutotuneVoterStage):
                stage.telemetry = telemetry
        self.pipeline = StreamPipeline(
            self.source,
            stages,
            chunk_frames=tenant.chunk_frames,
            policy=tenant.policy,
            telemetry=telemetry,
            checkpoint=checkpoint,
            strict_resume=True,
            measure=tenant.measure,
            sink=self._sink,
        )
        self._pending: list[np.ndarray] = []
        self._sink_next = 0  # global index of the next frame _sink sees
        self._take_next = 0  # global index of the next frame taken
        self.completed = False

    # -- lifecycle --------------------------------------------------------

    def open(self) -> int:
        """Resume durable state (if any); returns the resume frame.

        The resume frame is the count of frames already accepted into
        the stream history — exactly where the producer must continue.
        Raises :class:`~repro.exceptions.CheckpointMismatchError` when a
        checkpoint exists but was written under a different tenant
        configuration.
        """
        self.pipeline.resume()
        self._sink_next = self.pipeline.frames_out
        self._take_next = self.pipeline.frames_out
        self.pipeline.announce()
        return self.source.received

    def ingest(self, frames: np.ndarray) -> IngestResult:
        """Absorb a frame chunk and drain it through the pipeline.

        Pushes in slices sized to what the ingest buffer will take and
        pumps the pipeline between slices, so a message larger than the
        buffer still lands whole — that loop *is* the per-connection
        backpressure under the ``block`` policy.  Raises
        :class:`~repro.exceptions.ServeError` if no progress is
        possible (a single push larger than the buffer capacity that
        the pipeline cannot drain).
        """
        frames = np.asarray(frames)
        offered = int(frames.shape[0])
        offset = 0
        refused = 0
        while offset < offered:
            accepted = self.source.push(frames[offset:])
            offset += accepted
            refused += (offered - offset > 0)
            pumped = self.pipeline.pump()
            if accepted == 0 and pumped == 0:
                raise ServeError(
                    f"{self.name}: ingest wedged — buffer full "
                    f"({self.source.buffered}/{self.tenant.buffer_frames}) "
                    f"and the pipeline cannot drain it"
                )
        start, outputs = self._take_outputs()
        return IngestResult(
            accepted=offered,
            received=self.source.received,
            output_start=start,
            outputs=outputs,
            refused=refused,
        )

    def finish(self) -> tuple[StreamResult, int, np.ndarray]:
        """End of stream: flush stages, return the final result.

        Returns ``(result, output_start, outputs)`` where *outputs* are
        the frames the flush released.  Durable state is deleted — the
        stream is complete, there is nothing left to resume.
        """
        self.pipeline.pump()  # drain anything still buffered
        result = self.pipeline.finalize()
        start, outputs = self._take_outputs()
        self.completed = True
        if self.durable:
            self.pipeline.checkpoint.clear()
            if self._output_log is not None:
                self._output_log.unlink(missing_ok=True)
        return result, start, outputs

    # -- output collection and replay -------------------------------------

    def _sink(self, chunk: np.ndarray) -> None:
        self._pending.append(chunk)
        if self._output_log is not None:
            line = json.dumps(
                {"start": self._sink_next, "frames": encode_array(chunk)}
            )
            self._output_log.parent.mkdir(parents=True, exist_ok=True)
            with self._output_log.open("a") as fh:
                fh.write(line + "\n")
                fh.flush()
        self._sink_next += chunk.shape[0]

    def _take_outputs(self) -> tuple[int, np.ndarray]:
        start = self._take_next
        if not self._pending:
            return start, self.source._empty()
        if len(self._pending) == 1:
            outputs = self._pending[0]
        else:
            outputs = np.concatenate(self._pending, axis=0)
        self._pending.clear()
        self._take_next += outputs.shape[0]
        return start, outputs

    def replay_outputs(self, have: int) -> tuple[int, np.ndarray]:
        """Outputs ``[have, frames_out)`` the client missed, from the log.

        A reconnecting client reports how many output frames it already
        holds; anything the restored pipeline emitted beyond that was
        acknowledged into the log but lost with the old connection, so
        it is replayed here.  Log entries past the restored boundary
        (written between the last checkpoint and the kill) are clipped —
        the pipeline will deterministically re-emit them.
        """
        want_end = self._take_next
        if have >= want_end:
            return have, self.source._empty()
        if self._output_log is None or not self._output_log.exists():
            raise ServeError(
                f"{self.name}: client is missing outputs "
                f"[{have}, {want_end}) and no output log exists"
            )
        pieces: list[np.ndarray] = []
        cursor = have
        with self._output_log.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # partial trailing line from a kill
                start = int(record["start"])
                frames = decode_array(record["frames"])
                end = start + frames.shape[0]
                if end <= cursor or start >= want_end:
                    continue
                if start > cursor:
                    raise ServeError(
                        f"{self.name}: output log gap at frame {cursor} "
                        f"(next entry starts at {start})"
                    )
                lo = cursor - start
                hi = min(end, want_end) - start
                pieces.append(frames[lo:hi])
                cursor += hi - lo
        if cursor < want_end:
            raise ServeError(
                f"{self.name}: output log ends at frame {cursor}, "
                f"client needs up to {want_end}"
            )
        outputs = (
            pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)
        )
        return have, outputs

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The ``tenant/stream`` pair as one display string."""
        return f"{self.tenant.name}/{self.stream}"

    @property
    def received(self) -> int:
        """Frames accepted into the stream history so far."""
        return self.source.received

    def matches(self, coord_shape: tuple[int, ...], dtype: "np.dtype | str") -> bool:
        """Whether a hello's frame format matches this session's."""
        return self.source.coord_shape == tuple(
            int(s) for s in coord_shape
        ) and self.source.dtype == np.dtype(dtype)
