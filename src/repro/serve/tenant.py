"""Per-tenant stream configuration and the tenant registry.

A *tenant* is one named preprocessing contract: which faults to inject
(if any), the ``Algo_NGST`` voter parameters (Υ, Λ, N), an optional
windowed smoother, and the transport envelope (chunk size, ingest
buffer capacity, backpressure policy).  Every stream a client opens
under a tenant runs exactly the pipeline :meth:`TenantConfig.build_stages`
describes — the same stages the ``repro stream`` CLI would build from
the equivalent flags, so checkpoints written by one resume under the
other.

:class:`TenantRegistry` holds the live tenant table behind the control
plane's ``/tenants`` CRUD and persists it as one JSON file, re-read at
startup — a restarted server serves the same tenants it drained with.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.config import NGSTConfig
from repro.exceptions import ConfigurationError, ServeError
from repro.faults import UncorrelatedFaultModel
from repro.stream.autotune_stage import AutotuneVoterStage
from repro.stream.buffer import BackpressurePolicy
from repro.stream.pipeline import InjectStage, Stage, VoterStage
from repro.stream.smoothers import SMOOTHERS, smoother_stage

#: The tenant every fresh registry starts with.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's preprocessing contract and transport envelope.

    Attributes:
        name: registry key; also the checkpoint subdirectory name.
        gamma: Γ₀ bit-flip probability for inline injection; 0 disables
            the inject stage (the tenant streams already-faulty data).
        inject_seed: root entropy of the injector's per-frame spawn tree.
        upsilon: Υ, voter ways for ``Algo_NGST``; 0 disables the voter.
        sensitivity: Λ ∈ [0, 100] for the voter's dynamic thresholds.
        stack_frames: N, temporal variants per voter stack.
        smoother: named §4 smoother to append, or ``None``.
        window: centred window width for the smoother.
        chunk_frames: transport chunk size the pipeline processes at.
        policy: ingest-buffer backpressure policy name.
        buffer_frames: per-stream ingest buffer capacity in frames.
        durable: checkpoint every chunk boundary so streams survive a
            server restart; non-durable streams restart from frame 0.
        measure: accumulate Ψ metrics per stream.
        strategy: preprocessing strategy for the voter
            (:data:`repro.config.STRATEGY_CHOICES`).
        coherence_beta: adaptive-strategy shift gain (see
            :class:`repro.config.NGSTConfig`).
        coherence_prune_ratio: adaptive-strategy way-abstain score.
        margin: selective-strategy low-sensitivity border width.
        header_rows: selective-strategy always-protected leading rows.
        science_fast: selective-strategy cheap path for the interior.
        autotune: run the voter as an online Λ autotuner
            (:class:`repro.stream.autotune_stage.AutotuneVoterStage`);
            ``sensitivity`` is the starting Λ and the committed
            trajectory is surfaced per tenant on ``/metrics``.
        autotune_window: sliding-window size in stacks.
        autotune_interval: re-estimate every this many stacks.
        autotune_min_delta: hysteresis dead band on |ΔΛ|.
        autotune_confirm: consecutive agreeing estimates to commit.
        autotune_seed: calibration seed of the tuner's synthetic sweep.
    """

    name: str = DEFAULT_TENANT
    gamma: float = 0.0
    inject_seed: int = 0
    upsilon: int = 4
    sensitivity: float = 50.0
    stack_frames: int = 16
    smoother: str | None = None
    window: int = 5
    chunk_frames: int = 64
    policy: str = "block"
    buffer_frames: int = 4096
    durable: bool = True
    measure: bool = True
    strategy: str = "fixed"
    coherence_beta: float = 1.0
    coherence_prune_ratio: float = 0.0
    margin: int = 0
    header_rows: int = 0
    science_fast: bool = False
    autotune: bool = False
    autotune_window: int = 2
    autotune_interval: int = 1
    autotune_min_delta: float = 15.0
    autotune_confirm: int = 2
    autotune_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or self.name != self.name.strip():
            raise ConfigurationError(
                f"tenant name must be non-empty, trimmed, and '/'-free, "
                f"got {self.name!r}"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.smoother is not None and self.smoother not in SMOOTHERS:
            raise ConfigurationError(
                f"unknown smoother {self.smoother!r}; "
                f"choose from {sorted(SMOOTHERS)}"
            )
        if self.chunk_frames < 1:
            raise ConfigurationError(
                f"chunk_frames must be >= 1, got {self.chunk_frames}"
            )
        if self.buffer_frames < self.chunk_frames:
            raise ConfigurationError(
                f"buffer_frames ({self.buffer_frames}) must be >= "
                f"chunk_frames ({self.chunk_frames})"
            )
        BackpressurePolicy.parse(self.policy)
        if self.autotune:
            if self.autotune_window < 1 or self.autotune_interval < 1:
                raise ConfigurationError(
                    "autotune_window and autotune_interval must be >= 1"
                )
            if self.autotune_min_delta < 0 or self.autotune_confirm < 1:
                raise ConfigurationError(
                    "autotune_min_delta must be >= 0 and autotune_confirm >= 1"
                )
        if self.upsilon:
            # Surfaces bad Υ/Λ/N/strategy combinations at registration,
            # not at the first stream open.
            config = self.ngst_config()
            if self.stack_frames <= config.upsilon // 2:
                raise ConfigurationError(
                    f"stack_frames must exceed upsilon/2="
                    f"{config.upsilon // 2}, got {self.stack_frames}"
                )

    def ngst_config(self) -> NGSTConfig:
        """The validated ``Algo_NGST`` config this tenant's voter runs."""
        return NGSTConfig(
            upsilon=self.upsilon,
            sensitivity=self.sensitivity,
            strategy=self.strategy,
            coherence_beta=self.coherence_beta,
            coherence_prune_ratio=self.coherence_prune_ratio,
            margin=self.margin,
            header_rows=self.header_rows,
            science_fast=self.science_fast,
        )

    def build_stages(self) -> list[Stage]:
        """Fresh stage instances for one stream under this tenant.

        Stage identity (names, ``describe()`` output) is a pure function
        of the config, so every stream of a tenant shares a checkpoint
        fingerprint family and a restarted server resumes cleanly.
        """
        stages: list[Stage] = []
        if self.gamma > 0.0:
            stages.append(
                InjectStage(UncorrelatedFaultModel(self.gamma), seed=self.inject_seed)
            )
        if self.upsilon:
            if self.autotune:
                stages.append(
                    AutotuneVoterStage(
                        self.ngst_config(),
                        stack_frames=self.stack_frames,
                        window_stacks=self.autotune_window,
                        interval_stacks=self.autotune_interval,
                        min_delta=self.autotune_min_delta,
                        confirm=self.autotune_confirm,
                        autotune_seed=self.autotune_seed,
                        label=self.name,
                    )
                )
            else:
                stages.append(
                    VoterStage(
                        self.ngst_config(),
                        stack_frames=self.stack_frames,
                    )
                )
        if self.smoother is not None:
            stages.append(smoother_stage(self.smoother, self.window))
        return stages

    def to_dict(self) -> dict:
        """JSON-serializable form (the control plane's wire format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantConfig":
        """Build and validate a config from untrusted JSON.

        Unknown keys raise — a typo'd field silently ignored would give
        the tenant a different pipeline than the operator asked for.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"tenant config must be a JSON object, got {type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown tenant config key(s) {sorted(unknown)}; "
                f"valid keys: {sorted(known)}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigurationError(f"bad tenant config: {exc}") from None

    def describe(self) -> str:
        """One-line identity for logs and telemetry."""
        stages = [s.name for s in self.build_stages()]
        return (
            f"tenant {self.name}: {' -> '.join(stages) or 'passthrough'} "
            f"(chunk={self.chunk_frames}, policy={self.policy}, "
            f"buffer={self.buffer_frames}, durable={self.durable})"
        )


class TenantRegistry:
    """The live tenant table, optionally persisted as one JSON file.

    Args:
        path: persistence file; ``None`` keeps the registry in-memory
            only.  When the file exists it is loaded eagerly (a
            restarted server serves its pre-drain tenants); otherwise
            the registry starts with the ``default`` tenant.
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self.path = None if path is None else Path(path)
        self._tenants: dict[str, TenantConfig] = {}
        if self.path is not None and self.path.exists():
            self._load()
        if not self._tenants:
            self._tenants[DEFAULT_TENANT] = TenantConfig()
            self._save()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read tenant registry {self.path}: {exc}"
            ) from None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("tenants"), list
        ):
            raise ConfigurationError(
                f"tenant registry {self.path} must be "
                f'{{"tenants": [...]}}, got {type(payload).__name__}'
            )
        for entry in payload["tenants"]:
            config = TenantConfig.from_dict(entry)
            self._tenants[config.name] = config

    def _save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"tenants": [t.to_dict() for t in self.list()]}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        tmp.replace(self.path)

    def list(self) -> list[TenantConfig]:
        """Every tenant, sorted by name."""
        return [self._tenants[name] for name in sorted(self._tenants)]

    def get(self, name: str) -> TenantConfig:
        """The named tenant; :class:`ServeError` when absent."""
        try:
            return self._tenants[name]
        except KeyError:
            raise ServeError(
                f"unknown tenant {name!r}; have {sorted(self._tenants)}"
            ) from None

    def put(self, config: TenantConfig) -> None:
        """Create or replace a tenant and persist the table."""
        self._tenants[config.name] = config
        self._save()

    def delete(self, name: str) -> None:
        """Remove a tenant (the ``default`` tenant is permanent)."""
        if name == DEFAULT_TENANT:
            raise ServeError("the default tenant cannot be deleted")
        if name not in self._tenants:
            raise ServeError(f"unknown tenant {name!r}")
        del self._tenants[name]
        self._save()

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)
