"""A small discrete-event simulation substrate.

Models the §2.1 system architecture: a 16-node COTS workstation cluster
joined by a Myrinet-class network, over which the master fragments each
1024×1024 exposure into 128×128 segments for slave-side processing.
The simulator provides deterministic, seedable event ordering so the
cluster experiments are exactly reproducible.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.network import Link, Network
from repro.sim.node import Node, ProcessingModel

__all__ = ["Event", "Link", "Network", "Node", "ProcessingModel", "Simulator"]
