"""Heap-based discrete-event engine.

Events are ``(time, sequence, callback)`` triples; the sequence number
makes simultaneous events fire in schedule order, so runs are fully
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled event; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str | None = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """A minimal deterministic discrete-event simulator.

    With ``trace=True``, every processed event that carries a label is
    recorded as ``(time, label)`` in :attr:`trace_events` — a cheap
    timeline for debugging cluster schedules.
    """

    def __init__(self, trace: bool = False) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._tracing = trace
        self.trace_events: list[tuple[float, str]] = []

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str | None = None
    ) -> Event:
        """Schedule *callback* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._sequence), callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str | None = None
    ) -> Event:
        """Schedule *callback* at absolute simulation time *time*."""
        return self.schedule(time - self._now, callback, label=label)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains or *until* is reached.

        Returns the final simulation time.  ``max_events`` guards against
        runaway feedback loops in user callbacks.
        """
        while self._queue:
            if self._processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway event loop?"
                )
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._queue, event)
                self._now = until
                return self._now
            if event.time < self._now:
                raise SimulationError(
                    f"event time {event.time} precedes current time {self._now}"
                )
            self._now = event.time
            self._processed += 1
            if self._tracing and event.label is not None:
                self.trace_events.append((self._now, event.label))
            event.callback()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
