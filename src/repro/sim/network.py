"""Network model: point-to-point links with latency and bandwidth.

Calibrated by default to Myrinet-class figures (the interconnect STSci's
16-processor estimate assumes): ~10 µs end-to-end latency and
~1 Gbit/s effective bandwidth.  Transfers on one link serialise, which
is what creates the master-side fan-out bottleneck the cluster
experiments show.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.engine import Simulator

MYRINET_LATENCY_S = 10e-6
MYRINET_BANDWIDTH_BPS = 1.0e9  # bits per second


class Link:
    """A serialising point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = MYRINET_LATENCY_S,
        bandwidth_bps: float = MYRINET_BANDWIDTH_BPS,
    ) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency_s}")
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_bps}")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._free_at = 0.0
        self.bytes_carried = 0
        self.transfers = 0

    def transfer_time(self, n_bytes: int) -> float:
        """Pure wire time for *n_bytes* (excluding queueing)."""
        return self.latency_s + (n_bytes * 8) / self.bandwidth_bps

    def send(self, n_bytes: int, on_delivered: Callable[[], None]) -> float:
        """Queue a transfer; fires *on_delivered* at completion.

        Returns the absolute delivery time.  Transfers serialise: a send
        issued while the link is busy waits for the wire to free up.
        """
        if n_bytes < 0:
            raise SimulationError(f"cannot send negative bytes: {n_bytes}")
        start = max(self.sim.now, self._free_at)
        done = start + self.transfer_time(n_bytes)
        self._free_at = done
        self.bytes_carried += n_bytes
        self.transfers += 1
        self.sim.schedule_at(done, on_delivered)
        return done


class Network:
    """A star network: every node reaches every other through one switch.

    Each (src, dst) pair gets a lazily created dedicated link, which
    approximates Myrinet's full-bisection fabric while still modelling
    per-path serialisation.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = MYRINET_LATENCY_S,
        bandwidth_bps: float = MYRINET_BANDWIDTH_BPS,
    ) -> None:
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._links: dict[tuple[str, str], Link] = {}

    def link(self, src: str, dst: str) -> Link:
        """The (lazily created) link for the ordered pair (src, dst)."""
        if src == dst:
            raise SimulationError(f"no self-links: {src!r} -> {dst!r}")
        key = (src, dst)
        if key not in self._links:
            self._links[key] = Link(self.sim, self.latency_s, self.bandwidth_bps)
        return self._links[key]

    def send(
        self, src: str, dst: str, n_bytes: int, on_delivered: Callable[[], None]
    ) -> float:
        """Send *n_bytes* from *src* to *dst*; returns delivery time."""
        return self.link(src, dst).send(n_bytes, on_delivered)

    @property
    def total_bytes(self) -> int:
        return sum(link.bytes_carried for link in self._links.values())
