"""Processing-node model: a single-server queue with a calibrated
per-byte service rate.

Slave nodes of the §2.1 architecture process one 128×128 fragment at a
time; work queued while the CPU is busy waits in FIFO order.  "The
slack CPU time in the slave nodes can be very well utilized for a
suitable fault-tolerance scheme" — the preprocessing overhead factor
models exactly that extra work.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ProcessingModel:
    """Service-time model for one class of work.

    ``seconds = fixed_s + n_bytes * per_byte_s``
    """

    fixed_s: float = 1e-4
    per_byte_s: float = 3e-9

    def __post_init__(self) -> None:
        if self.fixed_s < 0 or self.per_byte_s < 0:
            raise ConfigurationError("processing model times must be >= 0")

    def service_time(self, n_bytes: int) -> float:
        return self.fixed_s + n_bytes * self.per_byte_s


class Node:
    """A named single-server FIFO processing node.

    ``speed`` models heterogeneous COTS hardware: service times divide
    by it (a 2.0 node is twice as fast as nominal).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        model: ProcessingModel | None = None,
        speed: float = 1.0,
    ) -> None:
        if not name:
            raise ConfigurationError("node needs a non-empty name")
        if speed <= 0:
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        self.sim = sim
        self.name = name
        self.model = model or ProcessingModel()
        self.speed = speed
        self._free_at = 0.0
        self.busy_seconds = 0.0
        self.jobs_done = 0

    @property
    def free_at(self) -> float:
        """Earliest time the node's server is free (master's view)."""
        return self._free_at

    def submit(
        self,
        n_bytes: int,
        on_done: Callable[[], None],
        work_factor: float = 1.0,
        label: str | None = None,
    ) -> float:
        """Queue *n_bytes* of work; fires *on_done* at completion.

        ``work_factor`` scales the service time (e.g. the preprocessing
        overhead multiplier at a given sensitivity).  Returns the
        absolute completion time.  ``label`` tags the completion in the
        simulator's trace (default: ``"<node>:done"``).
        """
        if work_factor < 0:
            raise SimulationError(f"work_factor must be >= 0, got {work_factor}")
        start = max(self.sim.now, self._free_at)
        service = self.model.service_time(n_bytes) * work_factor / self.speed
        done = start + service
        self._free_at = done
        self.busy_seconds += service
        self.jobs_done += 1
        self.sim.schedule_at(done, on_done, label=label or f"{self.name}:done")
        return done

    def utilisation(self, horizon_s: float) -> float:
        """Busy fraction of the node over a horizon."""
        if horizon_s <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon_s}")
        return min(1.0, self.busy_seconds / horizon_s)
