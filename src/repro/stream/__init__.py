"""Bounded-memory streaming preprocessing pipeline (``repro.stream``).

The batch pipeline materializes a whole ``(T,) + coord_shape`` stack;
this subsystem runs the same algorithms — ``Algo_NGST``, the §4
smoothers, inline fault injection, Ψ accounting — over unbounded frame
sequences in O(chunk + window) memory, with explicit backpressure,
per-stage telemetry, and crash-safe chunk-boundary checkpoints.

The load-bearing contract (see :mod:`repro.stream.pipeline`): for any
chunk size, backpressure policy, and seed, the streamed outputs and Ψ
values are bit-identical to the batch pipeline on the same stream.

Quick start::

    from repro.stream import (
        InjectStage, StreamPipeline, SyntheticWalkSource, VoterStage,
    )
    from repro.faults import UncorrelatedFaultModel

    source = SyntheticWalkSource(shape=(64,), seed=7, n_frames=4096)
    result = StreamPipeline(
        source,
        [InjectStage(UncorrelatedFaultModel(), seed=11), VoterStage()],
        chunk_frames=128,
    ).run()
    print(result.psi_no_preprocessing, result.psi_algorithm)

Or from the command line: ``repro stream --frames 4096 --chunk-frames
128 --progress``.
"""

from repro.stream.autotune_stage import AutotuneVoterStage
from repro.stream.buffer import BackpressurePolicy, BufferStats, RingBuffer
from repro.stream.checkpoint import StreamCheckpoint, decode_array, encode_array
from repro.stream.pipeline import (
    BatchResult,
    InjectStage,
    Stage,
    StreamingPsi,
    StreamPipeline,
    StreamResult,
    VoterStage,
    WindowedStage,
    run_batch,
    run_stream,
)
from repro.stream.smoothers import SMOOTHERS, smoother_stage
from repro.stream.source import (
    ArraySource,
    DownlinkSource,
    FrameSource,
    LimitedSource,
    PushFrameSource,
    SyntheticWalkSource,
    frame_rng,
    read_all,
)
from repro.stream.telemetry import (
    ChunkCompleted,
    LambdaAdjusted,
    StageStats,
    StreamCompleted,
    StreamProgressPrinter,
    StreamStarted,
)

__all__ = [
    "ArraySource",
    "AutotuneVoterStage",
    "BackpressurePolicy",
    "BatchResult",
    "BufferStats",
    "ChunkCompleted",
    "LambdaAdjusted",
    "DownlinkSource",
    "FrameSource",
    "InjectStage",
    "LimitedSource",
    "PushFrameSource",
    "RingBuffer",
    "SMOOTHERS",
    "Stage",
    "StageStats",
    "StreamCheckpoint",
    "StreamCompleted",
    "StreamPipeline",
    "StreamProgressPrinter",
    "StreamResult",
    "StreamStarted",
    "StreamingPsi",
    "SyntheticWalkSource",
    "VoterStage",
    "WindowedStage",
    "decode_array",
    "encode_array",
    "frame_rng",
    "read_all",
    "run_batch",
    "run_stream",
    "smoother_stage",
]
