"""Online Λ autotuning for streams: re-estimate, confirm, adjust.

:class:`AutotuneVoterStage` extends the stream's
:class:`~repro.stream.pipeline.VoterStage` with the self-calibration of
:mod:`repro.core.autotune` run *online*: a sliding window of the most
recent input stacks is re-estimated at stack boundaries, and the
resulting Λ candidate replaces the operating sensitivity once a
hysteresis rule accepts it.  Flying instruments need this because Γ is
not static — a South Atlantic Anomaly crossing (see
:mod:`repro.faults.profile`) moves the optimum Λ mid-stream, and a fixed
setting is wrong on one side of the crossing or the other.

Determinism contract (the strategy-equivalence harness gates all of it):

* Estimation happens only at stack boundaries, over window content that
  is a pure function of the frame sequence, with a fixed calibration
  seed — so the Λ trajectory, and hence every output byte, is chunk-
  invariant and identical across serial/thread/process/cluster drives.
* ``state_dict``/``load_state`` carry the full tuner state (window
  frames, operating Λ, confirmation streak, trajectory), so kill/resume
  replays the exact same trajectory.
* ``frozen=True`` never re-estimates: the stage is then byte-identical
  to a plain ``VoterStage`` at the configured Λ (the static-Λ
  degeneracy).

Hysteresis: a candidate must differ from the operating Λ by at least
``min_delta`` and be produced by ``confirm`` *consecutive* estimates
before it is committed — one noisy window cannot flap the sensitivity.
Each commit emits a :class:`~repro.stream.telemetry.LambdaAdjusted`
event and appends to :attr:`lambda_trajectory` (surfaced per tenant by
``repro.serve``'s metrics endpoint).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import NGSTConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.autotune import DEFAULT_LAMBDA_GRID, autotune_sensitivity
from repro.exceptions import ConfigurationError
from repro.stream.checkpoint import decode_array, encode_array
from repro.stream.pipeline import VoterStage
from repro.stream.telemetry import LambdaAdjusted, Telemetry


class AutotuneVoterStage(VoterStage):
    """``Algo_NGST`` stacks with an online Λ autotuner (see module doc).

    Args:
        config: base ``Algo_NGST`` parameters; ``config.sensitivity`` is
            the starting Λ (the first stacks always run at it).
        stack_frames: N, temporal variants per stack (> Υ/2).
        window_stacks: input stacks retained for re-estimation (the
            sliding window; bounds the extra memory to
            ``window_stacks × stack_frames`` frames).
        interval_stacks: re-estimate every this many stacks.
        min_delta: minimum |candidate − operating Λ| to even consider a
            change (the hysteresis dead band).
        confirm: consecutive agreeing estimates required to commit.
        lambda_grid: candidate sensitivities for the calibration sweep.
        autotune_seed: calibration seed (fixed ⇒ deterministic sweep).
        frozen: never re-estimate; byte-identical to a plain VoterStage.
        telemetry: optional hub for :class:`LambdaAdjusted` events.
        label: owner label stamped on emitted events (tenant name under
            ``repro serve``; '' for CLI streams).
    """

    def __init__(
        self,
        config: NGSTConfig | None = None,
        stack_frames: int = 64,
        *,
        window_stacks: int = 2,
        interval_stacks: int = 1,
        min_delta: float = 15.0,
        confirm: int = 2,
        lambda_grid: tuple[float, ...] = DEFAULT_LAMBDA_GRID,
        autotune_seed: int = 0,
        frozen: bool = False,
        telemetry: Telemetry | None = None,
        label: str = "",
    ) -> None:
        super().__init__(config=config, stack_frames=stack_frames)
        if window_stacks < 1:
            raise ConfigurationError(
                f"window_stacks must be >= 1, got {window_stacks}"
            )
        if interval_stacks < 1:
            raise ConfigurationError(
                f"interval_stacks must be >= 1, got {interval_stacks}"
            )
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be >= 0, got {min_delta}")
        if confirm < 1:
            raise ConfigurationError(f"confirm must be >= 1, got {confirm}")
        if not lambda_grid:
            raise ConfigurationError("lambda_grid must not be empty")
        self.window_stacks = int(window_stacks)
        self.interval_stacks = int(interval_stacks)
        self.min_delta = float(min_delta)
        self.confirm = int(confirm)
        self.lambda_grid = tuple(float(v) for v in lambda_grid)
        self.autotune_seed = int(autotune_seed)
        self.frozen = bool(frozen)
        self.telemetry = telemetry
        self.label = str(label)
        self.name = f"autotune_ngst[N={self.stack_frames}]"
        self._current = float(self.config.sensitivity)
        self._candidate: float | None = None
        self._streak = 0
        self._frames_seen = 0
        self._window: list[np.ndarray] = []
        self._trajectory: list[dict] = []

    # -- tuner --------------------------------------------------------------

    @property
    def current_sensitivity(self) -> float:
        """The Λ the next stack will run at."""
        return self._current

    @property
    def lambda_trajectory(self) -> tuple[dict, ...]:
        """Committed adjustments, in order (JSON-safe dicts)."""
        return tuple(self._trajectory)

    def _set_lambda(self, value: float) -> None:
        self._current = float(value)
        self._algo = AlgoNGST(
            dataclasses.replace(self.config, sensitivity=self._current)
        )

    def _observe(self, stack: np.ndarray) -> None:
        """Feed the tuner one processed input stack; maybe retune."""
        self._frames_seen += stack.shape[0]
        if self.frozen:
            return
        self._window.append(np.array(stack, copy=True))
        if len(self._window) > self.window_stacks:
            del self._window[: len(self._window) - self.window_stacks]
        if self.n_stacks % self.interval_stacks != 0:
            return
        window = (
            self._window[0]
            if len(self._window) == 1
            else np.concatenate(self._window, axis=0)
        )
        if window.shape[0] < 2:
            return
        result = autotune_sensitivity(
            window,
            upsilon=self.config.upsilon,
            lambda_grid=self.lambda_grid,
            seed=self.autotune_seed,
        )
        candidate = float(result.sensitivity)
        if abs(candidate - self._current) < self.min_delta:
            self._candidate, self._streak = None, 0
            return
        if self._candidate is not None and candidate == self._candidate:
            self._streak += 1
        else:
            self._candidate, self._streak = candidate, 1
        if self._streak < self.confirm:
            return
        old = self._current
        self._set_lambda(candidate)
        self._candidate, self._streak = None, 0
        record = {
            "stack_index": int(self.n_stacks),
            "frame_index": int(self._frames_seen),
            "old_sensitivity": float(old),
            "new_sensitivity": float(candidate),
            "estimated_sigma": float(result.estimated_sigma),
            "estimated_gamma": float(result.estimated_gamma),
        }
        self._trajectory.append(record)
        if self.telemetry is not None:
            self.telemetry.emit(LambdaAdjusted(label=self.label, **record))

    def _run_stack(self, stack: np.ndarray) -> np.ndarray:
        corrected = super()._run_stack(stack)
        # Tune strictly *after* correcting, so the decision for stack k
        # can never depend on how stack k was going to be processed and
        # the first stacks always run at the configured Λ.
        self._observe(stack)
        return corrected

    # -- batch equivalence --------------------------------------------------

    def _clone(self) -> "AutotuneVoterStage":
        return AutotuneVoterStage(
            config=self.config,
            stack_frames=self.stack_frames,
            window_stacks=self.window_stacks,
            interval_stacks=self.interval_stacks,
            min_delta=self.min_delta,
            confirm=self.confirm,
            lambda_grid=self.lambda_grid,
            autotune_seed=self.autotune_seed,
            frozen=self.frozen,
            label=self.label,
        )

    def batch(self, stack: np.ndarray) -> np.ndarray:
        # A fresh clone replays the whole trajectory from stack zero —
        # batch() must be pure and must match the streamed output.
        clone = self._clone()
        out = np.empty_like(stack)
        t = 0
        while t + self.stack_frames <= stack.shape[0]:
            out[t : t + self.stack_frames] = clone._run_stack(
                stack[t : t + self.stack_frames]
            )
            t += self.stack_frames
        remainder = stack[t:]
        if remainder.shape[0] > self.config.upsilon // 2:
            out[t:] = clone._run_stack(remainder)
        else:
            out[t:] = remainder
        return out

    # -- checkpoint state ---------------------------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["autotune"] = {
            "current": self._current,
            "candidate": self._candidate,
            "streak": self._streak,
            "frames_seen": self._frames_seen,
            "window": [encode_array(s) for s in self._window],
            "trajectory": list(self._trajectory),
        }
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        sub = state["autotune"]
        self._set_lambda(float(sub["current"]))
        self._candidate = (
            None if sub["candidate"] is None else float(sub["candidate"])
        )
        self._streak = int(sub["streak"])
        self._frames_seen = int(sub["frames_seen"])
        self._window = [decode_array(s) for s in sub["window"]]
        self._trajectory = [dict(r) for r in sub["trajectory"]]

    def describe(self) -> str:
        base = super().describe()
        grid = ",".join(f"{v:g}" for v in self.lambda_grid)
        return base + (
            f"+autotune(window={self.window_stacks}, "
            f"interval={self.interval_stacks}, min_delta={self.min_delta}, "
            f"confirm={self.confirm}, grid=[{grid}], "
            f"seed={self.autotune_seed}, frozen={self.frozen})"
        )
