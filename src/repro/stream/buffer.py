"""Bounded frame ring buffers with explicit backpressure policies.

A :class:`RingBuffer` is the staging element between the stream source
and the stage pipeline: it holds at most ``capacity`` frames in a
preallocated contiguous ring (no per-frame allocations on the steady
path) and makes the overflow behaviour an explicit, named policy
instead of an accident:

* ``block`` — the buffer accepts only what fits and reports how many
  frames it took; the caller must retry the rest later.  In the
  pull-based :class:`~repro.stream.pipeline.StreamPipeline` this is the
  natural backpressure mode: the driver never pulls more frames from
  the source than the inlet has room for, so nothing is ever refused.
* ``drop-oldest`` — the oldest buffered frames are evicted to make
  room; the eviction count is tracked.  This is the lossy real-time
  mode (keep the freshest readouts when downstream stalls).
* ``error`` — overflow raises :class:`BufferOverflowError`.  Used for
  internal invariants: a buffer sized to a proven bound turns a broken
  bound into a loud failure instead of silent unbounded growth.

Occupancy accounting (``high_water``, pushed/popped/dropped/refused
counters) feeds the stream telemetry events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BufferOverflowError, ConfigurationError


class BackpressurePolicy(enum.Enum):
    """What a :class:`RingBuffer` does when a push exceeds its capacity."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    ERROR = "error"

    @classmethod
    def parse(cls, name: "str | BackpressurePolicy") -> "BackpressurePolicy":
        """Accept either an enum member or its CLI spelling."""
        if isinstance(name, cls):
            return name
        for member in cls:
            if member.value == name:
                return member
        raise ConfigurationError(
            f"unknown backpressure policy {name!r}; "
            f"choose from {[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class BufferStats:
    """Lifetime accounting for one :class:`RingBuffer`.

    Attributes:
        capacity: maximum frames the buffer can hold.
        depth: frames currently buffered.
        high_water: maximum simultaneous occupancy ever observed.
        n_pushed: frames accepted into the buffer.
        n_popped: frames handed downstream.
        n_dropped: frames evicted by the ``drop-oldest`` policy.
        n_refused: frames turned away by the ``block`` policy.
    """

    capacity: int
    depth: int
    high_water: int
    n_pushed: int
    n_popped: int
    n_dropped: int
    n_refused: int


class RingBuffer:
    """A bounded FIFO of equally shaped frames with policy-driven overflow.

    Frame storage is lazily allocated on the first push (the coordinate
    shape and dtype come from the frames themselves) as one
    ``(capacity,) + coord_shape`` block, so a buffer's memory footprint
    is fixed by its capacity — the load-bearing property behind the
    pipeline's O(chunk + window) bound.

    Args:
        capacity: maximum number of frames held at once (>= 1).
        policy: overflow behaviour; see :class:`BackpressurePolicy`.
    """

    def __init__(
        self,
        capacity: int,
        policy: "str | BackpressurePolicy" = BackpressurePolicy.BLOCK,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = BackpressurePolicy.parse(policy)
        self._storage: np.ndarray | None = None
        self._head = 0  # index of the oldest frame
        self._size = 0
        self._high_water = 0
        self._n_pushed = 0
        self._n_popped = 0
        self._n_dropped = 0
        self._n_refused = 0

    def __len__(self) -> int:
        return self._size

    @property
    def free(self) -> int:
        """Frames that can be pushed right now without overflow."""
        return self.capacity - self._size

    @property
    def stats(self) -> BufferStats:
        """A snapshot of the buffer's occupancy accounting."""
        return BufferStats(
            capacity=self.capacity,
            depth=self._size,
            high_water=self._high_water,
            n_pushed=self._n_pushed,
            n_popped=self._n_popped,
            n_dropped=self._n_dropped,
            n_refused=self._n_refused,
        )

    def _ensure_storage(self, frames: np.ndarray) -> None:
        if self._storage is None:
            self._storage = np.empty(
                (self.capacity,) + frames.shape[1:], dtype=frames.dtype
            )
        elif self._storage.shape[1:] != frames.shape[1:]:
            raise ConfigurationError(
                f"frame shape {frames.shape[1:]} does not match the buffer's "
                f"established shape {self._storage.shape[1:]}"
            )

    def _write(self, frames: np.ndarray) -> None:
        """Copy *frames* (guaranteed to fit) into the ring."""
        assert self._storage is not None
        k = frames.shape[0]
        tail = (self._head + self._size) % self.capacity
        first = min(k, self.capacity - tail)
        self._storage[tail : tail + first] = frames[:first]
        if first < k:
            self._storage[: k - first] = frames[first:]
        self._size += k
        self._n_pushed += k
        self._high_water = max(self._high_water, self._size)

    def push(self, frames: np.ndarray) -> int:
        """Offer a ``(k,) + coord_shape`` chunk; returns frames accepted.

        Under ``block`` the leading frames that fit are accepted and the
        rest refused (the return value tells the caller how far it got).
        Under ``drop-oldest`` everything is accepted and the oldest
        buffered frames are evicted to make room.  Under ``error`` an
        overflowing push raises :class:`BufferOverflowError` without
        accepting anything.
        """
        frames = np.asarray(frames)
        if frames.ndim < 1:
            raise ConfigurationError("push expects a (k,) + coord_shape chunk")
        k = frames.shape[0]
        if k == 0:
            return 0
        self._ensure_storage(frames)
        if k > self.capacity and self.policy is not BackpressurePolicy.DROP_OLDEST:
            if self.policy is BackpressurePolicy.ERROR:
                raise BufferOverflowError(
                    f"chunk of {k} frame(s) exceeds buffer capacity {self.capacity}"
                )
            # block: accept the head that fits (if any room at all).
        if self.policy is BackpressurePolicy.BLOCK:
            accepted = min(k, self.free)
            self._n_refused += k - accepted
            if accepted:
                self._write(frames[:accepted])
            return accepted
        if self.policy is BackpressurePolicy.ERROR:
            if k > self.free:
                raise BufferOverflowError(
                    f"push of {k} frame(s) overflows buffer "
                    f"({self._size}/{self.capacity} used)"
                )
            self._write(frames)
            return k
        # drop-oldest
        if k >= self.capacity:
            # The chunk alone fills the ring: everything buffered and the
            # chunk's own head are superseded by the freshest frames.
            self._n_dropped += self._size + (k - self.capacity)
            self._n_pushed += k - self.capacity  # pushed-then-superseded
            self._head = 0
            self._size = 0
            self._write(frames[k - self.capacity :])
            return k
        overflow = max(0, k - self.free)
        if overflow:
            self._head = (self._head + overflow) % self.capacity
            self._size -= overflow
            self._n_dropped += overflow
        self._write(frames)
        return k

    def pop(self, k: int | None = None) -> np.ndarray:
        """Remove and return the ``min(k, len)`` oldest frames, FIFO order.

        With ``k=None`` the whole buffer is drained.  Returns a fresh
        contiguous ``(m,) + coord_shape`` array (possibly empty).
        """
        if self._storage is None:
            raise BufferOverflowError("cannot pop from a never-pushed buffer")
        m = self._size if k is None else max(0, min(int(k), self._size))
        out = np.empty((m,) + self._storage.shape[1:], dtype=self._storage.dtype)
        first = min(m, self.capacity - self._head)
        out[:first] = self._storage[self._head : self._head + first]
        if first < m:
            out[first:] = self._storage[: m - first]
        self._head = (self._head + m) % self.capacity
        self._size -= m
        self._n_popped += m
        return out

    def peek(self, k: int | None = None) -> np.ndarray:
        """Like :meth:`pop` but leaves the frames buffered."""
        head, size, popped = self._head, self._size, self._n_popped
        out = self.pop(k)
        self._head, self._size, self._n_popped = head, size, popped
        return out

    def state_dict(self) -> dict:
        """JSON-serializable exact state (frames included) for checkpoints."""
        from repro.stream.checkpoint import encode_array

        frames = self.peek() if self._storage is not None else None
        return {
            "frames": None if frames is None else encode_array(frames),
            "high_water": self._high_water,
            "n_pushed": self._n_pushed,
            "n_popped": self._n_popped,
            "n_dropped": self._n_dropped,
            "n_refused": self._n_refused,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        from repro.stream.checkpoint import decode_array

        self._storage = None
        self._head = 0
        self._size = 0
        if state.get("frames") is not None:
            frames = decode_array(state["frames"])
            if frames.shape[0]:
                self._ensure_storage(frames)
                self._write(frames)
        # The counters below overwrite whatever _write just accumulated.
        self._high_water = int(state["high_water"])
        self._n_pushed = int(state["n_pushed"])
        self._n_popped = int(state["n_popped"])
        self._n_dropped = int(state["n_dropped"])
        self._n_refused = int(state["n_refused"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingBuffer(capacity={self.capacity}, policy={self.policy.value!r}, "
            f"depth={self._size})"
        )
