"""Crash-safe JSONL checkpoints for streaming runs.

A streaming campaign cannot checkpoint "completed shards" the way the
trial runtime does — its unit of progress is a chunk boundary, and the
state that must survive a kill is the *exact* pipeline state: source
position and walk state, every stage's carry buffer, the Kahan/Welford
Ψ accumulators, and the pristine-alignment buffer.  This module stores
that state as one self-contained JSON line per completed chunk::

    {"fingerprint": "src=walk(...);stages=[...];v1", "chunk": 12,
     "frames_done": 768, "state": {...}}

Arrays are serialized as base64 of their exact bytes (bit-identical
round trip, including float64 walk state), and Python's ``json`` floats
use shortest-repr round-tripping, so a resumed run continues from
*exactly* the killed run's state — the resumed final Ψ is byte-for-byte
the uninterrupted one.  Append-only JSONL keeps interrupted writes
harmless: a partial trailing line is skipped and the previous boundary
is used instead.

Because the pipeline itself is chunk-size invariant, a checkpoint
written with one ``--chunk-frames`` may be resumed with another; the
fingerprint deliberately excludes transport parameters.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError


def encode_array(array: np.ndarray) -> dict:
    """Serialize *array* exactly (dtype, shape, raw bytes as base64)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Invert :func:`encode_array`, bit-identically."""
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(
        tuple(payload["shape"])
    ).copy()


class StreamCheckpoint:
    """Append-only JSONL record of completed chunk boundaries.

    Args:
        path: checkpoint file; created (with parents) on first record.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def record(self, fingerprint: str, chunk: int, frames_done: int, state: dict) -> None:
        """Append one completed chunk boundary and flush it to disk."""
        line = json.dumps(
            {
                "fingerprint": fingerprint,
                "chunk": int(chunk),
                "frames_done": int(frames_done),
                "state": state,
            }
        )
        if "\n" in line:
            raise ConfigurationError("checkpoint record must be a single line")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()

    def latest(self, fingerprint: str) -> dict | None:
        """The most recent well-formed record matching *fingerprint*.

        Records under other fingerprints are ignored, so a changed
        source or stage configuration silently invalidates stale
        checkpoints instead of resuming into the wrong stream.  Returns
        ``None`` when there is nothing to resume from.
        """
        best: dict | None = None
        if not self.path.exists():
            return None
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # partial line from an interrupted run
                if not isinstance(record, dict):
                    continue
                if record.get("fingerprint") != fingerprint:
                    continue
                if not isinstance(record.get("state"), dict):
                    continue
                try:
                    chunk = int(record["chunk"])
                except (KeyError, TypeError, ValueError):
                    continue
                if best is None or chunk >= int(best["chunk"]):
                    best = record
        return best

    def fingerprints(self) -> set[str]:
        """Every fingerprint with at least one well-formed record.

        Strict resumers use this to tell "nothing to resume" (empty
        set) apart from "records exist, but for a different stream
        configuration" — the latter aborts instead of silently starting
        over.
        """
        found: set[str] = set()
        if not self.path.exists():
            return found
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                fingerprint = record.get("fingerprint")
                if isinstance(fingerprint, str) and isinstance(
                    record.get("state"), dict
                ):
                    found.add(fingerprint)
        return found

    def clear(self) -> None:
        """Delete the checkpoint file (start the stream from scratch)."""
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamCheckpoint({str(self.path)!r})"
