"""The ``repro stream`` subcommand: drive a streaming preprocessing run.

Usage (via the main entry point)::

    repro stream --frames 4096 --chunk-frames 128 --progress
    repro stream --frames 100000 --gamma 0.01 --smoother median --window 5
    repro stream --input frames.npy --no-inject --smoother majority
    repro stream --frames 8192 --resume --checkpoint-dir .repro-checkpoints
    repro stream --frames 8192 --resume --limit-chunks 10   # stop early (rc 3)

The pipeline is source → [inject] → Algo_NGST voter → [smoother] → Ψ,
assembled from the flags below; ``--chunk-frames`` and ``--policy`` are
transport knobs only — results are bit-identical for every setting (see
docs/STREAMING.md).  ``--limit-chunks`` stops after N chunks with exit
code 3 and, with ``--resume``, leaves a checkpoint a later invocation
picks up — the mid-campaign kill/resume tests drive exactly this path.
``--max-chunks`` / ``--max-seconds`` instead end the stream *cleanly*
(stages flush, exit code 0), so unbounded demos terminate without a
kill.  A ``--resume`` whose checkpoint holds records only for a
different stream configuration exits with code 4
(:data:`EXIT_FINGERPRINT_MISMATCH`) instead of silently starting over.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import NGSTConfig, NGSTDatasetConfig, STRATEGY_CHOICES
from repro.exceptions import CheckpointMismatchError, ReproError
from repro.faults import UncorrelatedFaultModel
from repro.faults.profile import parse_profile
from repro.stream.autotune_stage import AutotuneVoterStage
from repro.stream.buffer import BackpressurePolicy
from repro.stream.checkpoint import StreamCheckpoint
from repro.stream.pipeline import (
    InjectStage,
    Stage,
    StreamPipeline,
    StreamResult,
    VoterStage,
)
from repro.stream.smoothers import SMOOTHERS, smoother_stage
from repro.stream.source import (
    ArraySource,
    DownlinkSource,
    FrameSource,
    LimitedSource,
    SyntheticWalkSource,
)
from repro.runtime.backend import BACKEND_CHOICES
from repro.stream.telemetry import StreamProgressPrinter, Telemetry

#: Exit code when --limit-chunks stopped the run before exhaustion.
EXIT_INCOMPLETE = 3

#: Exit code when --resume found checkpoint records, none matching this
#: stream's configuration (see CheckpointMismatchError) — distinct from
#: the generic failure code so schedulers can tell "operator changed the
#: config" from "the stream broke".
EXIT_FINGERPRINT_MISMATCH = 4


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro stream``."""
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Run the streaming preprocessing pipeline "
        "(bounded memory, bit-identical to the batch pipeline).",
    )
    src = parser.add_argument_group("source")
    src.add_argument(
        "--frames",
        type=int,
        default=1024,
        metavar="N",
        help="synthetic-walk frames to stream (default %(default)s; 0 "
        "streams unbounded and requires --max-chunks or --max-seconds)",
    )
    src.add_argument(
        "--shape",
        type=int,
        nargs="*",
        default=[64],
        metavar="DIM",
        help="coordinate shape of each frame (default: 64; pass two "
        "values for a 2-D frame, none for a scalar pixel)",
    )
    src.add_argument(
        "--seed", type=int, default=0, help="walk RNG seed (default %(default)s)"
    )
    src.add_argument(
        "--sigma",
        type=float,
        default=None,
        metavar="S",
        help="walk step σ (default: the NGST dataset default)",
    )
    src.add_argument(
        "--input",
        metavar="PATH",
        help="replay frames from an .npy (memory-mapped) or .npz file "
        "instead of the synthetic walk",
    )
    src.add_argument(
        "--key",
        default="frames",
        help="array name inside an .npz --input (default %(default)s)",
    )
    src.add_argument(
        "--downlink",
        action="store_true",
        help="pass every frame through the packetised CRC/ARQ downlink "
        "channel before the pipeline sees it",
    )
    stages = parser.add_argument_group("stages")
    stages.add_argument(
        "--gamma",
        type=float,
        default=0.01,
        metavar="G",
        help="uncorrelated bit-flip probability Γ for the inline "
        "injector (default %(default)s)",
    )
    stages.add_argument(
        "--inject-seed",
        type=int,
        default=1,
        metavar="S",
        help="fault-injection seed (default %(default)s)",
    )
    stages.add_argument(
        "--no-inject",
        action="store_true",
        help="skip fault injection (measure smoothing distortion only)",
    )
    stages.add_argument(
        "--profile",
        metavar="SPEC",
        default=None,
        help="time-varying injection profile, e.g. "
        "'step:base=0.001,elevated=0.05,period=256,duty=0.25' or "
        "'sine:base=0.01,amplitude=0.009,period=256'; overrides --gamma "
        "per frame index (see repro.faults.profile)",
    )
    stages.add_argument(
        "--stack-frames",
        type=int,
        default=64,
        metavar="N",
        help="temporal variants per Algo_NGST voter stack "
        "(default %(default)s; 0 disables the voter stage)",
    )
    stages.add_argument(
        "--upsilon", type=int, default=4, help="voter Υ (default %(default)s)"
    )
    stages.add_argument(
        "--sensitivity",
        type=float,
        default=50.0,
        metavar="L",
        help="voter sensitivity Λ in [0, 100] (default %(default)s)",
    )
    stages.add_argument(
        "--strategy",
        choices=list(STRATEGY_CHOICES),
        default="fixed",
        help="voter preprocessing strategy (default %(default)s; see "
        "docs/ADAPTIVE.md)",
    )
    stages.add_argument(
        "--coherence-beta",
        type=float,
        default=1.0,
        metavar="B",
        help="adaptive strategy: incoherence shift gain (default "
        "%(default)s; 0 is byte-identical to --strategy fixed)",
    )
    stages.add_argument(
        "--coherence-prune-ratio",
        type=float,
        default=0.0,
        metavar="R",
        help="adaptive strategy: score at or above which a voter way "
        "abstains (default %(default)s = off; must be > 1 when set)",
    )
    stages.add_argument(
        "--margin",
        type=int,
        default=0,
        metavar="W",
        help="selective strategy: low-sensitivity border width "
        "(default %(default)s)",
    )
    stages.add_argument(
        "--header-rows",
        type=int,
        default=0,
        metavar="R",
        help="selective strategy: always-protected leading rows "
        "(default %(default)s)",
    )
    stages.add_argument(
        "--science-fast",
        action="store_true",
        help="selective strategy: run the whole science field on the "
        "cheap unanimous-vote path (headers stay fully protected)",
    )
    tuner = parser.add_argument_group("online autotuner")
    tuner.add_argument(
        "--autotune",
        action="store_true",
        help="run the voter as an online Lambda autotuner: re-estimate "
        "Lambda over a sliding window of recent stacks and adjust with "
        "hysteresis (--sensitivity is the starting Lambda)",
    )
    tuner.add_argument(
        "--autotune-window",
        type=int,
        default=2,
        metavar="N",
        help="sliding-window size in stacks (default %(default)s)",
    )
    tuner.add_argument(
        "--autotune-interval",
        type=int,
        default=1,
        metavar="N",
        help="re-estimate every N stacks (default %(default)s)",
    )
    tuner.add_argument(
        "--autotune-min-delta",
        type=float,
        default=15.0,
        metavar="D",
        help="hysteresis dead band on |candidate - operating Lambda| "
        "(default %(default)s)",
    )
    tuner.add_argument(
        "--autotune-confirm",
        type=int,
        default=2,
        metavar="K",
        help="consecutive agreeing estimates required to commit "
        "(default %(default)s)",
    )
    tuner.add_argument(
        "--autotune-seed",
        type=int,
        default=0,
        metavar="S",
        help="calibration seed of the tuner's synthetic sweep "
        "(default %(default)s)",
    )
    stages.add_argument(
        "--smoother",
        choices=sorted(SMOOTHERS),
        default=None,
        help="append a centred-window smoother stage after the voter",
    )
    stages.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="W",
        help="smoother window width, odd (default %(default)s)",
    )
    transport = parser.add_argument_group("transport")
    transport.add_argument(
        "--chunk-frames",
        type=int,
        default=64,
        metavar="K",
        help="frames per transport chunk (default %(default)s; results "
        "are bit-identical for every value)",
    )
    transport.add_argument(
        "--policy",
        choices=[p.value for p in BackpressurePolicy],
        default=BackpressurePolicy.BLOCK.value,
        help="inlet backpressure policy (default %(default)s)",
    )
    run = parser.add_argument_group("run control")
    run.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="serial",
        help="execution backend (uniform across repro CLIs; the stream "
        "pipeline is stateful and in-process, so only 'serial' and "
        "'thread' apply — 'process' and 'cluster' are refused with "
        "exit code 2)",
    )
    run.add_argument(
        "--workers",
        metavar="ADDRS",
        default=None,
        help="cluster worker addresses (accepted for flag uniformity; "
        "refused here — batch campaigns via 'repro report' are the "
        "cluster-capable path)",
    )
    run.add_argument(
        "--limit-chunks",
        type=int,
        default=None,
        metavar="N",
        help="stop after N chunks (exit code 3 if the stream was not "
        "exhausted); with --resume the run can be continued later",
    )
    run.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="end the stream cleanly after N full chunks: stages flush, "
        "the result reports completed, and the exit code is 0 — unlike "
        "--limit-chunks this is a stop condition of the stream itself, "
        "so unbounded demos and load tests terminate deterministically",
    )
    run.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="end the stream cleanly once S wall-clock seconds have "
        "elapsed (checked at chunk boundaries); like --max-chunks this "
        "is a clean end of stream, not an interruption",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint every chunk boundary to a JSONL file and resume "
        "from the latest record of a previous (interrupted) run",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=".repro-checkpoints",
        help="where --resume stores the stream checkpoint "
        "(default: %(default)s)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="print per-chunk telemetry (throughput, queue depth) to stderr",
    )
    run.add_argument(
        "--progress-every",
        type=int,
        default=10,
        metavar="N",
        help="with --progress, print every N-th chunk (default %(default)s)",
    )
    run.add_argument(
        "--json", metavar="PATH", help="also dump the result as JSON to PATH"
    )
    return parser


def _build_source(args: argparse.Namespace) -> FrameSource:
    if args.input:
        source: FrameSource = ArraySource.from_file(args.input, key=args.key)
    else:
        dataset = NGSTDatasetConfig()
        if args.sigma is not None:
            dataset = NGSTDatasetConfig(sigma=args.sigma)
        source = SyntheticWalkSource(
            shape=tuple(args.shape),
            config=dataset,
            seed=args.seed,
            n_frames=args.frames if args.frames else None,
        )
    if args.downlink:
        source = DownlinkSource(source, seed=args.seed + 1)
    if args.max_chunks is not None or args.max_seconds is not None:
        max_frames = (
            args.max_chunks * args.chunk_frames
            if args.max_chunks is not None
            else None
        )
        source = LimitedSource(
            source, max_frames=max_frames, max_seconds=args.max_seconds
        )
    return source


def _build_stages(args: argparse.Namespace) -> list[Stage]:
    stages: list[Stage] = []
    if not args.no_inject:
        profile = parse_profile(args.profile) if args.profile else None
        stages.append(
            InjectStage(
                UncorrelatedFaultModel(args.gamma),
                seed=args.inject_seed,
                profile=profile,
            )
        )
    if args.stack_frames:
        config = NGSTConfig(
            upsilon=args.upsilon,
            sensitivity=args.sensitivity,
            strategy=args.strategy,
            coherence_beta=args.coherence_beta,
            coherence_prune_ratio=args.coherence_prune_ratio,
            margin=args.margin,
            header_rows=args.header_rows,
            science_fast=args.science_fast,
        )
        if args.autotune:
            stages.append(
                AutotuneVoterStage(
                    config,
                    stack_frames=args.stack_frames,
                    window_stacks=args.autotune_window,
                    interval_stacks=args.autotune_interval,
                    min_delta=args.autotune_min_delta,
                    confirm=args.autotune_confirm,
                    autotune_seed=args.autotune_seed,
                )
            )
        else:
            stages.append(VoterStage(config, stack_frames=args.stack_frames))
    if args.smoother:
        stages.append(smoother_stage(args.smoother, args.window))
    return stages


def _result_lines(result: StreamResult) -> list[str]:
    lines = [
        f"frames in/out      {result.n_frames_in}/{result.n_frames_out}",
        f"chunks             {result.n_chunks}",
        f"throughput         {result.frames_per_sec:.1f} frames/s",
        f"inlet high-water   {result.high_water}",
    ]
    if result.psi_no_preprocessing is not None:
        lines.append(f"psi no-preproc     {result.psi_no_preprocessing:.6g}")
    if result.psi_algorithm is not None:
        lines.append(f"psi algorithm      {result.psi_algorithm:.6g}")
    improvement = result.improvement
    if improvement is not None:
        lines.append(f"improvement        {improvement:.3g}x")
    for stage in result.stages:
        lines.append(
            f"stage {stage.name:<24} {stage.frames_per_sec:>10.1f} frames/s"
            f"  (carry<={stage.max_buffered})"
        )
    if not result.completed:
        lines.append("stopped at --limit-chunks before exhausting the stream")
    return lines


def _result_json(result: StreamResult) -> dict:
    return {
        "n_frames_in": result.n_frames_in,
        "n_frames_out": result.n_frames_out,
        "n_chunks": result.n_chunks,
        "psi_no_preprocessing": result.psi_no_preprocessing,
        "psi_algorithm": result.psi_algorithm,
        "improvement": result.improvement,
        "elapsed_s": result.elapsed_s,
        "frames_per_sec": result.frames_per_sec,
        "high_water": result.high_water,
        "completed": result.completed,
        "stages": [
            {
                "name": s.name,
                "frames_in": s.frames_in,
                "frames_out": s.frames_out,
                "elapsed_s": s.elapsed_s,
                "frames_per_sec": s.frames_per_sec,
                "max_buffered": s.max_buffered,
            }
            for s in result.stages
        ],
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro stream``; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.workers and args.backend != "cluster":
        print("--workers only applies to --backend cluster", file=sys.stderr)
        return 2
    if args.backend in ("process", "cluster"):
        print(
            f"repro stream runs a stateful in-process pipeline (voter "
            f"stacks carry frames across chunk boundaries); --backend "
            f"{args.backend} is not supported — use serial or thread, or "
            f"run batch campaigns over the cluster with 'repro report "
            f"--backend cluster'",
            file=sys.stderr,
        )
        return 2
    if args.frames < 0:
        print(f"--frames must be >= 0, got {args.frames}", file=sys.stderr)
        return 2
    if args.frames == 0 and not args.input:
        if args.max_chunks is None and args.max_seconds is None:
            print(
                "--frames 0 (unbounded) requires --max-chunks or "
                "--max-seconds to terminate",
                file=sys.stderr,
            )
            return 2
    if args.limit_chunks is not None and args.limit_chunks < 1:
        print(
            f"--limit-chunks must be >= 1, got {args.limit_chunks}",
            file=sys.stderr,
        )
        return 2
    if args.max_chunks is not None and args.max_chunks < 1:
        print(
            f"--max-chunks must be >= 1, got {args.max_chunks}",
            file=sys.stderr,
        )
        return 2

    checkpoint = None
    if args.resume:
        from repro.cli import probe_writable

        problem = probe_writable(Path(args.checkpoint_dir))
        if problem:
            print(problem, file=sys.stderr)
            return 2
        checkpoint = StreamCheckpoint(Path(args.checkpoint_dir) / "stream.jsonl")

    telemetry = None
    if args.progress:
        telemetry = Telemetry()
        telemetry.subscribe(StreamProgressPrinter(every=args.progress_every))

    try:
        stages = _build_stages(args)
        for stage in stages:
            # The tuner emits LambdaAdjusted itself (at stack boundaries
            # inside process()), so it needs the hub directly.
            if isinstance(stage, AutotuneVoterStage):
                stage.telemetry = telemetry
        pipeline = StreamPipeline(
            _build_source(args),
            stages,
            chunk_frames=args.chunk_frames,
            policy=args.policy,
            telemetry=telemetry,
            checkpoint=checkpoint,
            strict_resume=True,
        )
        result = pipeline.run(limit_chunks=args.limit_chunks)
    except CheckpointMismatchError as exc:
        print(f"stream resume refused: {exc}", file=sys.stderr)
        return EXIT_FINGERPRINT_MISMATCH
    except (ReproError, OSError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 2

    for line in _result_lines(result):
        print(line)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_result_json(result), fh, indent=2)
        print(f"wrote stream result to {args.json}")
    return 0 if result.completed else EXIT_INCOMPLETE


if __name__ == "__main__":
    sys.exit(main())
