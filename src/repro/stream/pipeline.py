"""Composable streaming stages and the pull-based pipeline driver.

The engine runs the paper's preprocessing algorithms over unbounded
frame sequences in O(chunk + window) memory, under one load-bearing
contract, enforced by the property tests:

    For any chunk size and any seed, the streaming outputs and Ψ values
    are bit-identical to the batch pipeline run on the whole stream.
    Chunking is an execution detail, never a semantics change.

Three mechanisms make that hold:

* **Window carry** — :class:`WindowedStage` keeps the trailing
  ``window`` input frames between chunks and re-runs the *batch* kernel
  (the PR 2 vectorized implementations, unmodified) over the carried
  overlap plus the new frames, emitting only the outputs whose centred
  windows are complete.  Head and tail frames see the kernel's own
  clamped-edge handling exactly once, at the true stream boundaries.
* **Stack carry** — :class:`VoterStage` groups frames into consecutive
  Υ-voter stacks of ``stack_frames`` and runs ``Algo_NGST`` per stack;
  a chunk boundary mid-stack simply leaves a partial carry.
* **Per-frame seeding** — :class:`InjectStage` derives each frame's
  fault RNG from the frame *index* (``SeedSequence`` spawn children),
  so the flip pattern cannot depend on chunk boundaries.

Ψ is accumulated by :class:`StreamingPsi` — a Kahan-compensated sum of
per-frame error sums plus Welford mean/variance over per-frame means —
whose result is a function of the frame sequence only.  The batch side
of the contract is :func:`run_batch`, which applies each stage's
``batch()`` semantics to the materialized stream and feeds the same
accumulator; :class:`StreamPipeline` must match it byte for byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.config import NGSTConfig
from repro.core import bitops
from repro.core.algo_ngst import AlgoNGST
from repro.exceptions import (
    CheckpointMismatchError,
    ConfigurationError,
    DataFormatError,
    StreamError,
)
from repro.stream.buffer import BackpressurePolicy, RingBuffer
from repro.stream.checkpoint import StreamCheckpoint, decode_array, encode_array
from repro.stream.source import FrameSource, frame_rng, read_all
from repro.stream.telemetry import (
    ChunkCompleted,
    StageStats,
    StreamCompleted,
    StreamStarted,
    Telemetry,
)

#: Default Ψ clamps, kept in lockstep with repro.metrics.relative_error.psi.
PSI_FLOOR = 1e-9
PSI_CAP = 1e6


class StreamingPsi:
    """Chunk-invariant streaming accumulation of the paper's Ψ metric.

    Per frame, the element-wise relative error is computed exactly as
    :func:`repro.metrics.relative_error.psi` does (same float64 casts,
    denominator floor, and cap); the frame's error *sum* then enters a
    Kahan-compensated running total, and the frame's error *mean* a
    Welford mean/variance recursion (for dispersion telemetry).  Every
    floating-point operation happens at per-frame granularity in frame
    order, so the accumulated value is a function of the frame sequence
    alone — the streaming pipeline and the batch comparator produce the
    same bits no matter how the frames were chunked.

    ``value`` equals ``psi(observed, pristine)`` up to the difference
    between numpy's pairwise-summed mean and the compensated sum —
    ~1e-12 relative on realistic streams (asserted by the equivalence
    tests).
    """

    def __init__(self, floor: float = PSI_FLOOR, cap: float = PSI_CAP) -> None:
        if cap <= 0:
            raise ConfigurationError(f"cap must be > 0, got {cap}")
        self.floor = float(floor)
        self.cap = float(cap)
        self._sum = 0.0
        self._comp = 0.0  # Kahan compensation term
        self._count = 0
        self._n_frames = 0
        self._mean = 0.0  # Welford running mean of per-frame means
        self._m2 = 0.0

    def update(self, observed: np.ndarray, pristine: np.ndarray) -> None:
        """Accumulate a ``(k,) + coord_shape`` pair of frame chunks."""
        observed = np.asarray(observed)
        pristine = np.asarray(pristine)
        if observed.shape != pristine.shape:
            raise DataFormatError(
                f"shape mismatch: observed {observed.shape} vs "
                f"pristine {pristine.shape}"
            )
        for j in range(observed.shape[0]):
            obs = observed[j].astype(np.float64)
            ref = pristine[j].astype(np.float64)
            denom = np.maximum(np.abs(ref), self.floor)
            with np.errstate(over="ignore", invalid="ignore"):
                err = np.abs(obs - ref) / denom
            err = np.where(np.isfinite(err), np.minimum(err, self.cap), self.cap)
            frame_sum = float(err.sum())
            # Kahan-compensated addition of the frame sum.
            y = frame_sum - self._comp
            t = self._sum + y
            self._comp = (t - self._sum) - y
            self._sum = t
            self._count += err.size
            # Welford over per-frame means, for dispersion reporting.
            self._n_frames += 1
            frame_mean = frame_sum / err.size if err.size else 0.0
            delta = frame_mean - self._mean
            self._mean += delta / self._n_frames
            self._m2 += delta * (frame_mean - self._mean)

    @property
    def value(self) -> float:
        """The accumulated Ψ (mean element-wise relative error)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def n_frames(self) -> int:
        """Frames accumulated so far."""
        return self._n_frames

    @property
    def frame_variance(self) -> float:
        """Sample variance of the per-frame mean errors (ddof=1)."""
        return self._m2 / (self._n_frames - 1) if self._n_frames > 1 else 0.0

    def state_dict(self) -> dict:
        """Exact JSON-serializable accumulator state."""
        return {
            "sum": self._sum,
            "comp": self._comp,
            "count": self._count,
            "n_frames": self._n_frames,
            "mean": self._mean,
            "m2": self._m2,
            "floor": self.floor,
            "cap": self.cap,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        self._sum = float(state["sum"])
        self._comp = float(state["comp"])
        self._count = int(state["count"])
        self._n_frames = int(state["n_frames"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self.floor = float(state["floor"])
        self.cap = float(state["cap"])


class Stage:
    """Base class for pipeline stages.

    A stage consumes chunks of frames via :meth:`process` (returning
    the frames it can emit so far, possibly fewer while its window
    fills) and :meth:`flush` once at end-of-stream.  ``lag`` bounds the
    frames a stage may carry between chunks — the pipeline sizes its
    alignment buffer from the sum of lags, so the bound is part of the
    stage contract.  ``batch()`` states the stage's batch-pipeline
    semantics on a whole in-memory stack; it is pure (no streaming
    state touched) and is what :func:`run_batch` and the equivalence
    tests run against.
    """

    #: Stage name for telemetry and fingerprints.
    name: str = "stage"
    #: True when the stage injects faults; the pipeline measures
    #: Ψ_NoPreprocessing across it (such a stage must have lag 0).
    corrupts: bool = False
    #: Maximum frames carried between process calls.
    lag: int = 0

    def process(self, frames: np.ndarray) -> np.ndarray:
        """Consume a chunk; return the frames emittable so far."""
        raise NotImplementedError

    def flush(self) -> np.ndarray:
        """Emit whatever the stage still holds (end of stream)."""
        raise NotImplementedError

    def batch(self, stack: np.ndarray) -> np.ndarray:
        """The stage's semantics on a whole ``(T,) + coord_shape`` stack."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Exact JSON-serializable stage state for checkpoints."""
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot exactly."""
        raise NotImplementedError

    def describe(self) -> str:
        """Identity string used in checkpoint fingerprints."""
        return self.name


class InjectStage(Stage):
    """Inline fault injection with per-frame-index seeding.

    Frame *i* is corrupted with ``model.corrupt(frame, rng_i)`` where
    ``rng_i`` is the *i*-th spawn child of *seed* — identical flips for
    identical frame indices, regardless of chunking, and resumable from
    a bare frame counter.

    Args:
        model: any :mod:`repro.faults` model (``corrupt(data, rng)``).
        seed: root entropy of the per-frame spawn tree.
        profile: optional :data:`repro.faults.profile.GammaProfile`; when
            set, frame *i* is corrupted with an
            :class:`~repro.faults.uncorrelated.UncorrelatedFaultModel`
            at ``profile.gamma_at(i)`` instead of the static *model* —
            Γ as a function of the global frame index, so the
            time-varying rate is exactly as chunk-invariant and
            resume-safe as the static one.
    """

    corrupts = True
    lag = 0

    def __init__(self, model, seed: int = 0, profile=None) -> None:
        if not hasattr(model, "corrupt"):
            raise ConfigurationError(
                f"fault model must expose corrupt(data, rng), "
                f"got {type(model).__name__}"
            )
        if profile is not None and not hasattr(profile, "gamma_at"):
            raise ConfigurationError(
                f"profile must expose gamma_at(index), "
                f"got {type(profile).__name__}"
            )
        self.model = model
        self.profile = profile
        self.seed = int(seed)
        self.name = f"inject[{type(model).__name__}]"
        self._next = 0
        self._template: np.ndarray | None = None
        self._profiled: dict[float, object] = {}
        self.n_bits_flipped = 0
        self.n_words_hit = 0

    def _model_for(self, index: int):
        if self.profile is None:
            return self.model
        from repro.faults.uncorrelated import UncorrelatedFaultModel

        gamma = float(self.profile.gamma_at(index))
        model = self._profiled.get(gamma)
        if model is None:
            model = self._profiled[gamma] = UncorrelatedFaultModel(gamma)
        return model

    def _corrupt_one(self, frame: np.ndarray, index: int) -> np.ndarray:
        corrupted, mask = self._model_for(index).corrupt(
            frame, frame_rng(self.seed, index)
        )
        umask = mask if mask.dtype != np.float32 else bitops.float32_to_bits(mask)
        self.n_bits_flipped += int(bitops.popcount(umask).sum())
        self.n_words_hit += int(np.count_nonzero(umask))
        return corrupted

    def process(self, frames: np.ndarray) -> np.ndarray:
        out = np.empty_like(frames)
        for j in range(frames.shape[0]):
            out[j] = self._corrupt_one(frames[j], self._next + j)
        self._next += frames.shape[0]
        self._template = frames[:0]
        return out

    def flush(self) -> np.ndarray:
        # Lag-free: nothing is ever carried between chunks.
        if self._template is None:
            return np.empty((0,))
        return self._template

    def batch(self, stack: np.ndarray) -> np.ndarray:
        out = np.empty_like(stack)
        for i in range(stack.shape[0]):
            corrupted, _ = self._model_for(i).corrupt(
                stack[i], frame_rng(self.seed, i)
            )
            out[i] = corrupted
        return out

    def state_dict(self) -> dict:
        return {
            "next": self._next,
            "n_bits_flipped": self.n_bits_flipped,
            "n_words_hit": self.n_words_hit,
        }

    def load_state(self, state: dict) -> None:
        self._next = int(state["next"])
        self.n_bits_flipped = int(state["n_bits_flipped"])
        self.n_words_hit = int(state["n_words_hit"])

    def describe(self) -> str:
        cfg = getattr(self.model, "config", None)
        base = f"{self.name}(config={cfg!r}, seed={self.seed})"
        # Profile-less stages keep the historical fingerprint.
        if self.profile is None:
            return base
        return f"{base}+profile({self.profile.describe()})"


class WindowedStage(Stage):
    """A centred-window kernel run over sliding chunks with overlap carry.

    Wraps any batch kernel with the repo's centred-window conventions —
    :func:`~repro.baselines.median.median_smooth_temporal`,
    :func:`~repro.baselines.majority.majority_vote_window`, the §4
    weighted smoothers — and streams it: the stage keeps the trailing
    ``window`` input frames, re-runs the kernel over carry + new frames,
    and emits only the outputs whose centred windows are complete.

    Correctness at the seams, with ``half = window // 2``:

    * An *interior* output ``i`` needs exactly inputs
      ``[i - half, i + half]``; the carry guarantees they are present
      and lie strictly inside the kernel's sub-array (no edge handling
      touches them), so the value is the batch kernel's at that index.
    * The first ``half`` outputs are only emitted while the carry still
      starts at frame 0, so the kernel's own head clamping (nearest
      full window / edge pad) applies exactly as in the batch run.
    * The last ``half`` outputs are emitted by :meth:`flush`, where the
      carry holds the final ``window`` frames — the kernel's tail
      clamping sees the true end of stream.

    Args:
        kernel: ``stack -> stack`` batch kernel (same-length output).
        window: odd centred window width >= 3.
        name: telemetry/fingerprint name.
    """

    def __init__(
        self,
        kernel: Callable[[np.ndarray], np.ndarray],
        window: int,
        name: str,
    ) -> None:
        if window < 3 or window % 2 == 0:
            raise ConfigurationError(f"window must be odd and >= 3, got {window}")
        self.kernel = kernel
        self.window = int(window)
        self.name = name
        self.lag = self.window  # carry holds at most `window` frames
        self._buf: np.ndarray | None = None
        self._start = 0  # global index of _buf[0]
        self._emitted = 0  # next output index to emit
        self._seen = 0  # total input frames seen

    def process(self, frames: np.ndarray) -> np.ndarray:
        if frames.shape[0] == 0:
            return frames
        if self._buf is None:
            self._buf = np.array(frames, copy=True)
        else:
            self._buf = np.concatenate([self._buf, frames], axis=0)
        self._seen += frames.shape[0]
        half = self.window // 2
        ready = self._seen - half  # outputs [emitted, ready) are final
        if self._seen < self.window or ready <= self._emitted:
            return frames[:0]
        out = self.kernel(self._buf)
        emit = out[self._emitted - self._start : ready - self._start]
        self._emitted = ready
        keep_from = max(0, self._seen - self.window)
        self._buf = self._buf[keep_from - self._start :]
        self._start = keep_from
        return emit

    def flush(self) -> np.ndarray:
        if self._buf is None:
            raise DataFormatError(
                f"{self.name}: stream ended before any frame arrived"
            )
        # Streams shorter than the window fail here exactly as the
        # batch kernel does on the same short stack.
        out = self.kernel(self._buf)
        emit = out[self._emitted - self._start :]
        self._emitted = self._seen
        return emit

    def batch(self, stack: np.ndarray) -> np.ndarray:
        return self.kernel(stack)

    def state_dict(self) -> dict:
        return {
            "buf": None if self._buf is None else encode_array(self._buf),
            "start": self._start,
            "emitted": self._emitted,
            "seen": self._seen,
        }

    def load_state(self, state: dict) -> None:
        self._buf = None if state["buf"] is None else decode_array(state["buf"])
        self._start = int(state["start"])
        self._emitted = int(state["emitted"])
        self._seen = int(state["seen"])

    def describe(self) -> str:
        return f"{self.name}(window={self.window})"


class VoterStage(Stage):
    """``Algo_NGST`` over consecutive temporal stacks of the stream.

    The stream is grouped into back-to-back stacks of ``stack_frames``
    temporal variants — the paper's N readouts of one integration — and
    each full stack runs Algorithm 1 (Υ-way voter matrix, dynamic
    thresholds, bit-window correction) the moment its last frame
    arrives.  A chunk boundary mid-stack simply leaves a partial carry
    of at most ``stack_frames - 1`` frames.  At end of stream a
    remainder longer than Υ/2 frames is processed as a short final
    stack (the voter matrix needs more than Υ/2 variants); anything
    shorter passes through uncorrected — both rules are part of the
    batch semantics, so streaming and batch agree on every frame.

    Args:
        config: ``Algo_NGST`` parameters (Υ, Λ, per-coordinate thresholds).
        stack_frames: N, temporal variants per stack (> Υ/2).
    """

    def __init__(
        self, config: NGSTConfig | None = None, stack_frames: int = 64
    ) -> None:
        self.config = config or NGSTConfig()
        if stack_frames <= self.config.upsilon // 2:
            raise ConfigurationError(
                f"stack_frames must exceed upsilon/2="
                f"{self.config.upsilon // 2}, got {stack_frames}"
            )
        self.stack_frames = int(stack_frames)
        self._algo = AlgoNGST(self.config)
        self.name = f"algo_ngst[N={self.stack_frames}]"
        self.lag = self.stack_frames - 1
        self._pending: np.ndarray | None = None
        self.n_stacks = 0
        self.n_pixels_corrected = 0
        self.n_bits_corrected = 0

    def _run_stack(self, stack: np.ndarray) -> np.ndarray:
        result = self._algo(stack)
        self.n_stacks += 1
        self.n_pixels_corrected += result.n_pixels_corrected
        self.n_bits_corrected += result.n_bits_corrected
        return result.corrected

    def process(self, frames: np.ndarray) -> np.ndarray:
        if frames.shape[0] == 0:
            return frames
        if self._pending is None or self._pending.shape[0] == 0:
            self._pending = np.array(frames, copy=True)
        else:
            self._pending = np.concatenate([self._pending, frames], axis=0)
        emitted = []
        while self._pending.shape[0] >= self.stack_frames:
            stack = self._pending[: self.stack_frames]
            self._pending = self._pending[self.stack_frames :]
            emitted.append(self._run_stack(stack))
        if not emitted:
            return frames[:0]
        return emitted[0] if len(emitted) == 1 else np.concatenate(emitted, axis=0)

    def flush(self) -> np.ndarray:
        if self._pending is None:
            return np.empty((0,), dtype=np.uint16)
        remainder = self._pending
        self._pending = remainder[:0]
        if remainder.shape[0] > self.config.upsilon // 2:
            return self._run_stack(remainder)
        return remainder  # too short to vote on: pass through uncorrected

    def batch(self, stack: np.ndarray) -> np.ndarray:
        algo = AlgoNGST(self.config)  # fresh: batch() must not touch stats
        out = np.empty_like(stack)
        t = 0
        while t + self.stack_frames <= stack.shape[0]:
            out[t : t + self.stack_frames] = algo(
                stack[t : t + self.stack_frames]
            ).corrected
            t += self.stack_frames
        remainder = stack[t:]
        if remainder.shape[0] > self.config.upsilon // 2:
            out[t:] = algo(remainder).corrected
        else:
            out[t:] = remainder
        return out

    def state_dict(self) -> dict:
        return {
            "pending": None
            if self._pending is None
            else encode_array(self._pending),
            "n_stacks": self.n_stacks,
            "n_pixels_corrected": self.n_pixels_corrected,
            "n_bits_corrected": self.n_bits_corrected,
        }

    def load_state(self, state: dict) -> None:
        self._pending = (
            None if state["pending"] is None else decode_array(state["pending"])
        )
        self.n_stacks = int(state["n_stacks"])
        self.n_pixels_corrected = int(state["n_pixels_corrected"])
        self.n_bits_corrected = int(state["n_bits_corrected"])

    def describe(self) -> str:
        base = (
            f"{self.name}(upsilon={self.config.upsilon}, "
            f"sensitivity={self.config.sensitivity}, "
            f"per_coord={self.config.per_coordinate_thresholds})"
        )
        # The default strategy keeps the historical fingerprint so
        # checkpoints written before strategies existed still resume;
        # any non-default strategy field is part of the stream's
        # semantics and must invalidate mismatched checkpoints.
        if self.config.is_default_strategy:
            return base
        cfg = self.config
        return base + (
            f"+strategy({cfg.strategy}, beta={cfg.coherence_beta}, "
            f"prune={cfg.coherence_prune_ratio}, margin={cfg.margin}, "
            f"header_rows={cfg.header_rows}, science_fast={cfg.science_fast})"
        )


@dataclass(frozen=True)
class StreamResult:
    """What one streaming run produced.

    Attributes:
        n_frames_in: frames pulled from the source (counting resumed
            ones).
        n_frames_out: frames emitted by the final stage.
        n_chunks: transport chunks processed (counting resumed ones).
        psi_no_preprocessing: Ψ of the corrupted stream against the
            pristine one (None when the pipeline has no inject stage or
            measurement is off).
        psi_algorithm: Ψ of the pipeline output against the pristine
            stream (None when measurement is off).
        elapsed_s: wall-clock seconds spent in this process.
        frames_per_sec: ``n_frames_in / elapsed_s``.
        stages: per-stage totals, pipeline order.
        high_water: inlet buffer high-water mark.
        completed: False when the run stopped at ``limit_chunks`` with
            the source not yet exhausted (state checkpointed, resume to
            continue).
    """

    n_frames_in: int
    n_frames_out: int
    n_chunks: int
    psi_no_preprocessing: float | None
    psi_algorithm: float | None
    elapsed_s: float
    frames_per_sec: float
    stages: tuple[StageStats, ...] = field(default=())
    high_water: int = 0
    completed: bool = True

    @property
    def improvement(self) -> float | None:
        """Ψ_NoPreprocessing / Ψ_Algorithm, the paper's gain measure."""
        if self.psi_no_preprocessing is None or self.psi_algorithm is None:
            return None
        if self.psi_algorithm == 0.0:
            return float("inf") if self.psi_no_preprocessing > 0 else 1.0
        return self.psi_no_preprocessing / self.psi_algorithm


class _StageRunner:
    """A stage plus its driver-side accounting."""

    def __init__(self, stage: Stage) -> None:
        self.stage = stage
        self.frames_in = 0
        self.frames_out = 0
        self.elapsed_s = 0.0
        self.max_buffered = 0

    def run(self, frames: np.ndarray) -> np.ndarray:
        t0 = time.perf_counter()
        out = self.stage.process(frames)
        self.elapsed_s += time.perf_counter() - t0
        self.frames_in += frames.shape[0]
        self.frames_out += out.shape[0]
        self.max_buffered = max(
            self.max_buffered, self.frames_in - self.frames_out
        )
        return out

    def run_flush(self) -> np.ndarray:
        t0 = time.perf_counter()
        out = self.stage.flush()
        self.elapsed_s += time.perf_counter() - t0
        self.frames_out += out.shape[0]
        return out

    @property
    def stats(self) -> StageStats:
        return StageStats(
            name=self.stage.name,
            frames_in=self.frames_in,
            frames_out=self.frames_out,
            elapsed_s=self.elapsed_s,
            frames_per_sec=(
                self.frames_in / self.elapsed_s if self.elapsed_s > 0 else 0.0
            ),
            max_buffered=self.max_buffered,
        )

    def state_dict(self) -> dict:
        return {
            "stage": self.stage.state_dict(),
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "max_buffered": self.max_buffered,
        }

    def load_state(self, state: dict) -> None:
        self.stage.load_state(state["stage"])
        self.frames_in = int(state["frames_in"])
        self.frames_out = int(state["frames_out"])
        self.max_buffered = int(state["max_buffered"])


class StreamPipeline:
    """Pull-based streaming engine: source → inlet buffer → stages → Ψ.

    Each cycle pulls at most ``chunk_frames`` frames from the source
    (under the ``block`` policy, never more than the inlet has room
    for — that *is* the backpressure), stages them through the inlet
    ring buffer, and pushes them through the stage chain.  Pristine
    frames are parked in a bounded alignment buffer sized to
    ``chunk_frames + Σ stage lags`` with the ``error`` policy, so the
    documented O(chunk + window) memory bound is enforced at runtime,
    not just claimed.

    Ψ accounting: the frames *entering* the first ``corrupts`` stage
    are the pristine reference; Ψ_NoPreprocessing is accumulated across
    that stage (it must be lag-free) and Ψ_Algorithm between the final
    stage's output and the aligned reference frames.  Without a
    ``corrupts`` stage the source frames are the reference and only
    Ψ_Algorithm is reported (the smoothing-distortion view).

    Args:
        source: where frames come from.
        stages: the stage chain, upstream first (may be empty).
        chunk_frames: transport granularity in frames (>= 1).  Never a
            semantics knob: results are bit-identical for every value.
        policy: inlet backpressure policy (results identical for all
            three; they differ only when a buffer actually overflows,
            which the pull driver never causes).
        telemetry: optional hub for stream events.
        checkpoint: optional :class:`StreamCheckpoint`; when set, every
            chunk boundary records the exact pipeline state and
            :meth:`run` resumes from the latest matching record.
        strict_resume: when True, a checkpoint store that holds records
            but none matching this pipeline's fingerprint raises
            :class:`~repro.exceptions.CheckpointMismatchError` instead
            of silently restarting from frame zero (the stream's
            configuration changed since the interrupted run).  Default
            False preserves the permissive restart behaviour.
        measure: accumulate Ψ metrics (disable for pure throughput runs).
        sink: optional consumer called with every ``(k,) + coord_shape``
            chunk the final stage emits — the stream's output tap (the
            equivalence tests use it to collect frames for byte-for-byte
            comparison against the batch output).
    """

    def __init__(
        self,
        source: FrameSource,
        stages: Sequence[Stage] = (),
        chunk_frames: int = 64,
        policy: "str | BackpressurePolicy" = BackpressurePolicy.BLOCK,
        telemetry: Telemetry | None = None,
        checkpoint: StreamCheckpoint | None = None,
        strict_resume: bool = False,
        measure: bool = True,
        sink: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if chunk_frames < 1:
            raise ConfigurationError(
                f"chunk_frames must be >= 1, got {chunk_frames}"
            )
        self.source = source
        self.stages = list(stages)
        corrupting = [s for s in self.stages if s.corrupts]
        if len(corrupting) > 1:
            raise ConfigurationError(
                "at most one corrupting stage per pipeline "
                f"(got {[s.name for s in corrupting]})"
            )
        if corrupting and corrupting[0].lag != 0:
            raise ConfigurationError(
                f"corrupting stage {corrupting[0].name} must be lag-free"
            )
        self.chunk_frames = int(chunk_frames)
        self.policy = BackpressurePolicy.parse(policy)
        self.telemetry = telemetry
        self.checkpoint = checkpoint
        self.strict_resume = bool(strict_resume)
        self.measure = bool(measure)
        self.sink = sink
        self._runners = [_StageRunner(s) for s in self.stages]
        self._inlet = RingBuffer(self.chunk_frames, self.policy)
        total_lag = sum(s.lag for s in self.stages)
        self._pending = RingBuffer(
            self.chunk_frames + total_lag, BackpressurePolicy.ERROR
        )
        self._psi_nopre = StreamingPsi()
        self._psi_algo = StreamingPsi()
        self._has_injector = any(s.corrupts for s in self.stages)
        self._chunk_index = 0
        self._frames_in = 0
        self._frames_out = 0
        self._restored_frames = 0
        self._resume_checked = False
        self._processing_s = 0.0

    def fingerprint(self) -> str:
        """Stable identity of the stream's *semantics* for checkpoints.

        Deliberately excludes ``chunk_frames`` and ``policy``: the
        pipeline is chunk-invariant, so a checkpoint written under one
        transport configuration resumes correctly under another.
        """
        stages = ",".join(s.describe() for s in self.stages)
        return f"src={self.source.describe()};stages=[{stages}];v1"

    # -- state management -------------------------------------------------

    def _state_dict(self) -> dict:
        return {
            "chunk_index": self._chunk_index,
            "frames_in": self._frames_in,
            "frames_out": self._frames_out,
            "source": self.source.state_dict(),
            "runners": [r.state_dict() for r in self._runners],
            "pending": self._pending.state_dict(),
            "psi_nopre": self._psi_nopre.state_dict(),
            "psi_algo": self._psi_algo.state_dict(),
        }

    def _load_state(self, state: dict) -> None:
        self._chunk_index = int(state["chunk_index"])
        self._frames_in = int(state["frames_in"])
        self._frames_out = int(state["frames_out"])
        self.source.load_state(state["source"])
        if len(state["runners"]) != len(self._runners):
            raise StreamError(
                f"checkpoint has {len(state['runners'])} stage states, "
                f"pipeline has {len(self._runners)}"
            )
        for runner, sub in zip(self._runners, state["runners"]):
            runner.load_state(sub)
        self._pending.load_state(state["pending"])
        self._psi_nopre.load_state(state["psi_nopre"])
        self._psi_algo.load_state(state["psi_algo"])
        self._restored_frames = self._frames_in

    def _maybe_resume(self) -> None:
        if self.checkpoint is None:
            return
        fingerprint = self.fingerprint()
        record = self.checkpoint.latest(fingerprint)
        if record is not None:
            self._load_state(record["state"])
            return
        if self.strict_resume:
            stored = self.checkpoint.fingerprints()
            if stored:
                raise CheckpointMismatchError(
                    f"checkpoint {self.checkpoint.path} holds "
                    f"{len(stored)} record fingerprint(s) but none match "
                    f"this pipeline ({fingerprint!r}); the stream "
                    f"configuration changed since the interrupted run — "
                    f"restore the original configuration or clear the "
                    f"checkpoint to start over"
                )

    def resume(self) -> int:
        """Restore checkpointed state, once; returns frames restored.

        Safe to call repeatedly — only the first call consults the
        checkpoint store (:meth:`run` and the incremental drivers both
        route through here, so a pipeline is never resumed twice).
        """
        if not self._resume_checked:
            self._resume_checked = True
            self._maybe_resume()
        return self._restored_frames

    # -- the drive loop ---------------------------------------------------

    @property
    def frames_in(self) -> int:
        """Frames pulled from the source so far (counting resumed ones)."""
        return self._frames_in

    @property
    def frames_out(self) -> int:
        """Frames emitted by the final stage so far."""
        return self._frames_out

    @property
    def chunk_index(self) -> int:
        """Transport chunks processed so far (counting resumed ones)."""
        return self._chunk_index

    def _through_stages(self, frames: np.ndarray, first: int = 0) -> np.ndarray:
        """Push *frames* through ``runners[first:]``, with Ψ accounting."""
        data = frames
        for runner in self._runners[first:]:
            if runner.stage.corrupts and self.measure:
                self._pending.push(data)
                pristine = data
                data = runner.run(data)
                self._psi_nopre.update(data, pristine)
            else:
                data = runner.run(data)
        return data

    def _account_output(self, data: np.ndarray) -> None:
        if data.shape[0] == 0:
            return
        self._frames_out += data.shape[0]
        if self.measure:
            reference = self._pending.pop(data.shape[0])
            self._psi_algo.update(data, reference)
        if self.sink is not None:
            self.sink(data)

    def _emit(self, event: object) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event)

    def announce(self) -> None:
        """Emit the :class:`StreamStarted` event for this run/session."""
        self._emit(
            StreamStarted(
                source=self.source.describe(),
                stages=tuple(s.name for s in self.stages),
                chunk_frames=self.chunk_frames,
                policy=self.policy.value,
                resumed_frames=self._restored_frames,
            )
        )

    def step(self) -> int:
        """Pull and process at most one transport chunk.

        Returns the frames consumed; 0 means the source had nothing to
        give *right now* — end of stream for a pull source, "buffer
        empty" for a :class:`~repro.stream.source.PushFrameSource`.
        Each consumed chunk emits a :class:`ChunkCompleted` event and,
        when a checkpoint store is attached, records the exact pipeline
        state at the new chunk boundary.
        """
        room = (
            self._inlet.free
            if self.policy is BackpressurePolicy.BLOCK
            else self.chunk_frames
        )
        pull = min(self.chunk_frames, room)
        if pull == 0:  # pragma: no cover - inlet is drained every cycle
            raise StreamError("inlet buffer wedged with zero room")
        frames = self.source.read(pull)
        if frames.shape[0] == 0:
            return 0
        t0 = time.perf_counter()
        self._inlet.push(frames)
        chunk = self._inlet.pop()
        self._frames_in += chunk.shape[0]
        if self.measure and not self._has_injector:
            self._pending.push(chunk)
        out = self._through_stages(chunk)
        self._account_output(out)
        elapsed = time.perf_counter() - t0
        self._processing_s += elapsed
        self._chunk_index += 1
        self._emit(
            ChunkCompleted(
                chunk_index=self._chunk_index,
                frames_in=chunk.shape[0],
                frames_out=out.shape[0],
                elapsed_s=elapsed,
                frames_per_sec=(
                    chunk.shape[0] / elapsed if elapsed > 0 else 0.0
                ),
                queue_depth=len(self._inlet),
                high_water=self._inlet.stats.high_water,
            )
        )
        if self.checkpoint is not None:
            self.checkpoint.record(
                self.fingerprint(),
                self._chunk_index,
                self._frames_in,
                self._state_dict(),
            )
        return chunk.shape[0]

    def pump(self) -> int:
        """Process every full chunk the source can deliver right now.

        The incremental (push-mode) drive: returns the total frames
        consumed, stopping when the source comes up empty.  Call
        :meth:`resume` once before the first pump and :meth:`finalize`
        after the producer signals end of stream.
        """
        total = 0
        while True:
            consumed = self.step()
            if consumed == 0:
                return total
            total += consumed

    def _flush_stages(self) -> None:
        for i, runner in enumerate(self._runners):
            t0 = time.perf_counter()
            tail = runner.run_flush()
            out = self._through_stages(tail, first=i + 1)
            self._account_output(out)
            self._processing_s += time.perf_counter() - t0

    def _build_result(self, elapsed_s: float, completed: bool) -> StreamResult:
        stats = tuple(r.stats for r in self._runners)
        result = StreamResult(
            n_frames_in=self._frames_in,
            n_frames_out=self._frames_out,
            n_chunks=self._chunk_index,
            psi_no_preprocessing=(
                self._psi_nopre.value
                if self.measure and self._has_injector
                else None
            ),
            psi_algorithm=self._psi_algo.value if self.measure else None,
            elapsed_s=elapsed_s,
            frames_per_sec=(
                self._frames_in / elapsed_s if elapsed_s > 0 else 0.0
            ),
            stages=stats,
            high_water=self._inlet.stats.high_water,
            completed=completed,
        )
        if completed:
            self._emit(
                StreamCompleted(
                    n_frames_in=self._frames_in,
                    n_frames_out=self._frames_out,
                    n_chunks=self._chunk_index,
                    elapsed_s=elapsed_s,
                    frames_per_sec=result.frames_per_sec,
                    stages=stats,
                    high_water=self._inlet.stats.high_water,
                )
            )
        return result

    def finalize(self) -> StreamResult:
        """End an incrementally driven stream: flush stages, build result.

        The push-mode counterpart of :meth:`run`'s exhaustion path; the
        result's ``elapsed_s`` is the cumulative in-pipeline processing
        time (the incremental driver owns the wall clock).
        """
        self._flush_stages()
        return self._build_result(self._processing_s, completed=True)

    def run(self, limit_chunks: int | None = None) -> StreamResult:
        """Drive the stream to exhaustion (or for *limit_chunks* chunks).

        Returns the :class:`StreamResult`; when ``limit_chunks`` stops
        the run early the result has ``completed=False`` and — if a
        checkpoint store is configured — the state needed to resume is
        already on disk.
        """
        if limit_chunks is not None and limit_chunks < 1:
            raise ConfigurationError(
                f"limit_chunks must be >= 1, got {limit_chunks}"
            )
        self.resume()
        started_at = time.perf_counter()
        self.announce()
        chunks_this_call = 0
        exhausted = False
        while True:
            if limit_chunks is not None and chunks_this_call >= limit_chunks:
                break
            if self.step() == 0:
                exhausted = True
                break
            chunks_this_call += 1
        if exhausted:
            self._flush_stages()
        elapsed_total = time.perf_counter() - started_at
        return self._build_result(elapsed_total, completed=exhausted)


def run_stream(
    source: FrameSource,
    stages: Sequence[Stage] = (),
    chunk_frames: int = 64,
    policy: "str | BackpressurePolicy" = BackpressurePolicy.BLOCK,
    **kwargs,
) -> StreamResult:
    """One-shot convenience wrapper around :class:`StreamPipeline`."""
    return StreamPipeline(
        source, stages, chunk_frames=chunk_frames, policy=policy, **kwargs
    ).run()


@dataclass(frozen=True)
class BatchResult:
    """The batch comparator's outputs (the other side of the contract).

    Attributes:
        output: the final ``(T,) + coord_shape`` stack.
        psi_no_preprocessing: Ψ across the corrupting stage, or None.
        psi_algorithm: Ψ of output against the pristine reference.
        n_frames: T.
    """

    output: np.ndarray
    psi_no_preprocessing: float | None
    psi_algorithm: float | None
    n_frames: int


def run_batch(source: FrameSource, stages: Sequence[Stage] = ()) -> BatchResult:
    """The whole-stream batch pipeline the streaming engine must match.

    Materializes the (finite) source, applies each stage's ``batch()``
    semantics to the full stack, and accumulates Ψ with the same
    :class:`StreamingPsi` recursion in the same frame order.  Stages'
    ``batch()`` methods are pure, so instances may be shared with a
    streaming run.
    """
    stack = read_all(source)
    reference = stack
    psi_nopre: float | None = None
    data = stack
    for stage in stages:
        if stage.corrupts:
            reference = data
            corrupted = stage.batch(data)
            acc = StreamingPsi()
            acc.update(corrupted, reference)
            psi_nopre = acc.value
            data = corrupted
        else:
            data = stage.batch(data)
    acc = StreamingPsi()
    acc.update(data, reference)
    return BatchResult(
        output=data,
        psi_no_preprocessing=psi_nopre,
        psi_algorithm=acc.value,
        n_frames=stack.shape[0],
    )
