"""The named centred-window smoother kernels behind ``--smoother``.

One registry shared by every stage builder — the ``repro stream`` CLI
and the serve layer's per-tenant pipelines — so a tenant configured
with ``smoother="median"`` runs exactly the stage the CLI flag would,
and their checkpoint fingerprints agree.
"""

from __future__ import annotations

from functools import partial

from repro.baselines.majority import majority_vote_window
from repro.baselines.median import median_smooth_temporal
from repro.baselines.smoothing import (
    bisquare_smooth,
    inverse_square_smooth,
    mean_smooth,
    negative_exponential_smooth,
)
from repro.exceptions import ConfigurationError
from repro.stream.pipeline import WindowedStage

#: Kernel registry: CLI/tenant name -> batch smoothing kernel.
SMOOTHERS = {
    "median": median_smooth_temporal,
    "majority": majority_vote_window,
    "mean": mean_smooth,
    "negexp": negative_exponential_smooth,
    "invsq": inverse_square_smooth,
    "bisquare": bisquare_smooth,
}


def smoother_stage(name: str, window: int) -> WindowedStage:
    """A :class:`WindowedStage` over the named centred-window kernel.

    The stage's name is ``f"{name}{window}"`` — stable across CLI and
    serve so checkpoints written by one resume under the other.
    """
    if name not in SMOOTHERS:
        raise ConfigurationError(
            f"unknown smoother {name!r}; choose from {sorted(SMOOTHERS)}"
        )
    return WindowedStage(
        partial(SMOOTHERS[name], window=window), window, f"{name}{window}"
    )
